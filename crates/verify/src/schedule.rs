//! The static collective-schedule checker.
//!
//! A [`CommPlan`] is pure data, so every property the paper argues about a
//! training step's communication can be proven by arithmetic:
//!
//! * **Rank-symmetry / deadlock-freedom.** Every rank executes the same
//!   indexed op sequence. For each op index, any two ranks that appear in
//!   each other's resolved group must agree *exactly* on the group's
//!   member order and per-member counts. Groups at one index are then
//!   either identical or disjoint, so the schedule is a sequence of
//!   consistent collectives over a partition of the world — no rank can
//!   wait on a peer that is executing a different op, which is the only
//!   way this fabric deadlocks.
//! * **Membership consistency.** Each rank belongs to its own resolved
//!   group, and counts vectors match the group size.
//! * **Volume.** Per-rank bytes are compared against independently
//!   derived telescoping identities (exact, not bounds): one step of
//!   stage 1/2 reduce-scatters Ψ − |shard_i| elements and all-gathers
//!   Ψ − |shard_{i+1}|; stage 3 re-gathers each unit once per pass; the
//!   paper's 2Ψ·(N−1)/N and ≤ 3Ψ headline numbers follow and are asserted
//!   too.
//! * **Issue/complete ordering (overlap).** Overlapped plans list ops in
//!   *issue* order, and every rank's ops execute on one FIFO progress
//!   thread — so per-rank completion order equals issue order and the
//!   pairwise-agreement proof above covers the async schedule verbatim
//!   (the `nonblocking` flag must also agree between peers). On top,
//!   [`check_overlap_pair`]-style invariance is proven: an overlapped
//!   plan is a pure reordering of its synchronous twin's op multiset
//!   (identical per-rank bytes *and* messages per kind), fetches keep
//!   their relative issue order, and each fetch is issued no later than
//!   its synchronous position and no earlier than its *predecessor's*
//!   synchronous position — at most one unit ahead, which is exactly
//!   the double-buffered prefetch window.

use zero_comm::{CollectiveKind, Grid};
use zero_core::{CommPlan, Partitioner, StepShape, ZeroConfig, ZeroStage};
use zero_model::{Layout, ModelConfig};

/// Counters describing how much the checker covered.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScheduleReport {
    /// Distinct (stage, grid, flags) configurations checked.
    pub configs: usize,
    /// Plans resolved and checked (train prefix+suffix, eval, refresh…).
    pub plans: usize,
    /// Total resolved ops validated across all ranks.
    pub ops_checked: usize,
    /// (rank, peer) group agreements proven.
    pub pair_checks: usize,
}

const RS: usize = CollectiveKind::ReduceScatter as usize;
const AG: usize = CollectiveKind::AllGather as usize;
const AR: usize = CollectiveKind::AllReduce as usize;

fn test_model() -> ModelConfig {
    ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 }
}

/// Proves rank-symmetry and membership consistency for one plan.
///
/// Returns `(ops_checked, pair_checks)` on success.
#[allow(clippy::needless_range_loop)] // ranks cross-index each other's op lists
pub(crate) fn check_symmetry(plan: &CommPlan, what: &str) -> Result<(usize, usize), String> {
    let world = plan.grid().world_size();
    let resolved: Vec<_> = (0..world).map(|r| plan.resolve_for(r)).collect();
    let n_ops = plan.ops().len();
    for r in 0..world {
        if resolved[r].len() != n_ops {
            return Err(format!(
                "{what}: rank {r} resolved {} ops, plan has {n_ops}",
                resolved[r].len()
            ));
        }
    }
    let mut pairs = 0;
    for i in 0..n_ops {
        for r in 0..world {
            let op = &resolved[r][i];
            if !op.members.contains(&r) {
                return Err(format!(
                    "{what}: op {i} '{}' resolved for rank {r} to group {:?} \
                     that does not contain it",
                    op.label, op.members
                ));
            }
            if op.counts.len() != op.members.len() {
                return Err(format!(
                    "{what}: op {i} '{}' rank {r}: {} counts for {} members",
                    op.label,
                    op.counts.len(),
                    op.members.len()
                ));
            }
            // Every peer this rank expects to meet inside the collective
            // must resolve the *same* collective instance at this index.
            for &s in &op.members {
                let peer = &resolved[s][i];
                if peer.kind != op.kind
                    || peer.members != op.members
                    || peer.counts != op.counts
                    || peer.prec != op.prec
                    || peer.nonblocking != op.nonblocking
                    || peer.wire != op.wire
                {
                    return Err(format!(
                        "{what}: op {i} '{}': rank {r} sees {:?} over {:?} \
                         (counts {:?}) but member {s} sees {:?} over {:?} \
                         (counts {:?}) — asymmetric schedule would deadlock",
                        op.label,
                        op.kind,
                        op.members,
                        op.counts,
                        peer.kind,
                        peer.members,
                        peer.counts
                    ));
                }
                pairs += 1;
            }
        }
    }
    Ok((n_ops * world, pairs))
}

/// The overflow-flag (and grad-norm) contribution: a 1-element fp32
/// all-reduce over an `n`-rank group, derived from first principles.
fn one_elem_ar_bytes(n: usize, local_idx: usize) -> u64 {
    if n == 1 {
        return 0;
    }
    // Balanced split of 1 element over n: member 0 owns it, the ring
    // still circulates one (mostly empty) chunk per phase.
    let own = usize::from(local_idx == 0);
    let succ = usize::from((local_idx + 1).is_multiple_of(n));
    4 * (2 - own - succ) as u64
}

/// Per-rank ring volume of an even split of `total` over `n` members:
/// `(total − c_i) + (total − c_{i+1})` for all-reduce, single phases for
/// reduce-scatter / all-gather.
fn even_counts(total: usize, n: usize) -> Vec<usize> {
    (0..n).map(|i| zero_comm::chunk_range(total, n, i).len()).collect()
}

struct Expected {
    rs: u64,
    ag: u64,
    /// Exact all-reduce bytes, or a (center, slack) band for DDP's
    /// chunked ring where only the paper-level 2Ψ·(N−1)/N claim holds.
    ar: ArExpect,
}

enum ArExpect {
    Exact(u64),
    Band { center: f64, slack: f64 },
}

/// Independently derives one rank's per-kind byte volume for one training
/// step (micro_batches = 1) from layout + config + grid — the telescoping
/// identities of §7, *not* the plan-builder's op list.
fn expected_step(layout: &Layout, zcfg: &ZeroConfig, grid: Grid, rank: usize, skipped: bool) -> Expected {
    let psi = layout.total_params();
    let dp = grid.dp_degree();
    let mp = grid.mp_degree();
    let world = grid.world_size();
    let (dpr, mpr) = grid.coords(rank);
    let w: u64 = if zcfg.fp16 { 2 } else { 4 };
    let part = Partitioner::new(psi, dp);
    let shard = part.shard_range(dpr).len() as u64;
    let next = part.shard_range((dpr + 1) % dp).len() as u64;
    let layers = layout.unit_count() - 2;

    // --- MP traffic (identical for every stage) ---
    // Two all-reduces per block pass; passes per block: forward + backward
    // (+ one recompute pass per block under checkpointing).
    let act = {
        // act_elems is supplied via shape at plan build; re-derive it here
        // to stay independent: local_batch encoded by the caller in
        // `SHAPE_LOCAL_BATCH`.
        SHAPE_LOCAL_BATCH * test_model().seq * test_model().hidden
    };
    let block_passes: u64 = if zcfg.checkpoint_activations { 3 } else { 2 };
    let mut mp_ar = 0u64;
    let mut mp_ag = 0u64;
    if mp > 1 {
        let c = even_counts(act, mp);
        let ci = c[mpr];
        let cn = c[(mpr + 1) % mp];
        let per_hook = ((act - ci) + (act - cn)) as u64;
        mp_ar = w * 2 * block_passes * layers as u64 * per_hook;
        if zcfg.partition_activations {
            // One checkpoint gather per segment (interval 1 ⇒ per layer).
            let segments = layers.div_ceil(zcfg.checkpoint_interval.max(1)) as u64;
            mp_ag = w * segments * (act - cn) as u64;
        }
    }

    // --- overflow flag (+ grad-norm when clipping an unskipped step) ---
    let world_idx = rank; // world group is identity-ordered
    let mut flag_ar = one_elem_ar_bytes(world, world_idx);
    if zcfg.clip_grad_norm.is_some() && !skipped {
        flag_ar += if zcfg.stage.partitions_optimizer() {
            one_elem_ar_bytes(world, world_idx)
        } else {
            one_elem_ar_bytes(mp, mpr)
        };
    }

    match zcfg.stage {
        ZeroStage::One | ZeroStage::Two => Expected {
            // Reduce-scatter skips this rank's own shard; the publish
            // all-gather (absent when skipped) skips the successor's.
            rs: w * (psi as u64 - shard),
            ag: mp_ag + if skipped { 0 } else { w * (psi as u64 - next) },
            ar: ArExpect::Exact(mp_ar + flag_ar),
        },
        ZeroStage::Three => {
            // Each unit is re-gathered once per pass it participates in:
            // embed and head once (forward only — backward reuses nothing
            // and computes their grads without parameters re-fetched…
            // embed) — blocks are fetched in forward and again for
            // backward (or recompute, which subsumes the backward fetch).
            let mut ag = 0u64;
            let units = layout.units();
            for (ui, unit) in units.iter().enumerate() {
                let passes: u64 = if ui == 0 || ui + 1 == units.len() { 1 } else { 2 };
                let counts = part.intersect_counts(&unit.range);
                let cnext = counts[(dpr + 1) % dp] as u64;
                ag += passes * (unit.range.len() as u64 - cnext);
            }
            Expected {
                rs: w * (psi as u64 - shard),
                ag: mp_ag + w * ag,
                ar: ArExpect::Exact(mp_ar + flag_ar),
            }
        }
        ZeroStage::Ddp => {
            let chunks = psi.div_ceil(zcfg.bucket_elems) as u64;
            Expected {
                rs: 0,
                ag: mp_ag,
                ar: ArExpect::Band {
                    // The paper's 2Ψ·(N−1)/N, ±2 boundary elements per
                    // CB chunk for the balanced-uneven split.
                    center: (mp_ar + flag_ar) as f64
                        + w as f64 * 2.0 * psi as f64 * (dp as f64 - 1.0) / dp as f64,
                    slack: (w * 2 * chunks) as f64 + 1.0,
                },
            }
        }
    }
}

/// The local batch all shape-dependent checks assume.
const SHAPE_LOCAL_BATCH: usize = 2;

fn shape(skipped: bool) -> StepShape {
    let m = test_model();
    StepShape {
        micro_batches: 1,
        act_elems: SHAPE_LOCAL_BATCH * m.seq * m.hidden,
        skipped,
    }
}

/// Checks one configuration: symmetry of every plan the engine can
/// install, and exact volume agreement for the train step.
fn check_config(
    zcfg: &ZeroConfig,
    grid: Grid,
    report: &mut ScheduleReport,
) -> Result<(), String> {
    let model = test_model();
    let layout = Layout::build_mp(&model, grid.mp_degree());
    let what = format!(
        "{} dp={} mp={} fp16={} ckpt={} pa={} node={:?}",
        zcfg.stage.name(),
        grid.dp_degree(),
        grid.mp_degree(),
        zcfg.fp16,
        zcfg.checkpoint_activations,
        zcfg.partition_activations,
        zcfg.node_size
    );

    for skipped in [false, true] {
        let plan = CommPlan::train_step(&layout, zcfg, grid, &shape(skipped));
        let (ops, pairs) = check_symmetry(&plan, &what)?;
        report.ops_checked += ops;
        report.pair_checks += pairs;
        report.plans += 1;

        for rank in 0..grid.world_size() {
            let got = plan.rank_bytes(rank);
            let want = expected_step(&layout, zcfg, grid, rank, skipped);
            if got[RS] != want.rs {
                return Err(format!(
                    "{what} skipped={skipped}: rank {rank} reduce-scatter bytes {} ≠ \
                     telescoped identity {}",
                    got[RS], want.rs
                ));
            }
            if got[AG] != want.ag {
                return Err(format!(
                    "{what} skipped={skipped}: rank {rank} all-gather bytes {} ≠ \
                     telescoped identity {}",
                    got[AG], want.ag
                ));
            }
            match want.ar {
                ArExpect::Exact(b) => {
                    if got[AR] != b {
                        return Err(format!(
                            "{what} skipped={skipped}: rank {rank} all-reduce bytes {} ≠ {}",
                            got[AR], b
                        ));
                    }
                }
                ArExpect::Band { center, slack } => {
                    let d = (got[AR] as f64 - center).abs();
                    if d > slack {
                        return Err(format!(
                            "{what} skipped={skipped}: rank {rank} all-reduce bytes {} \
                             outside 2Ψ(N−1)/N band {center}±{slack}",
                            got[AR]
                        ));
                    }
                }
            }
            // Paper headline bounds (§7): stages 1/2 move < 2Ψ per rank
            // across DP; stage 3 at most 3Ψ.
            let w: u64 = if zcfg.fp16 { 2 } else { 4 };
            let psi = layout.total_params() as u64;
            let dp_total = want.rs + want.ag;
            match zcfg.stage {
                ZeroStage::One | ZeroStage::Two
                    if !skipped && grid.mp_degree() == 1 && dp_total > 2 * psi * w =>
                {
                    return Err(format!("{what}: rank {rank} exceeds the 2Ψ bound"));
                }
                ZeroStage::Three if grid.mp_degree() == 1 && dp_total > 3 * psi * w => {
                    return Err(format!("{what}: rank {rank} exceeds the 3Ψ bound"));
                }
                _ => {}
            }
        }
    }

    // The other installable plans must be symmetric too.
    for (plan, name) in [
        (CommPlan::eval_pass(&layout, zcfg, grid, shape(false).act_elems), "eval"),
        (CommPlan::publish_refresh(&layout, zcfg, grid), "refresh"),
    ] {
        let (ops, pairs) = check_symmetry(&plan, &format!("{what} [{name}]"))?;
        report.ops_checked += ops;
        report.pair_checks += pairs;
        report.plans += 1;
    }
    report.configs += 1;
    Ok(())
}

/// One plan's fetch issue trace: for every `fetch-unit` op in issue
/// order, its identity key plus the number of non-fetch ops issued
/// before it. The prefix count is the positional coordinate the
/// double-buffer proof runs on — moving a fetch across compute/comm
/// ops changes it, moving it across other fetches does not.
fn fetch_trace(plan: &CommPlan) -> Vec<(String, usize)> {
    let mut prefix = 0usize;
    let mut fetches = Vec::new();
    for op in plan.ops() {
        if op.label == "fetch-unit" {
            fetches.push((
                format!("{:?}|{:?}|{:?}|{:?}", op.kind, op.counts, op.prec, op.wire),
                prefix,
            ));
        } else {
            prefix += 1;
        }
    }
    fetches
}

/// The positional double-buffer proof over two fetch traces.
///
/// Three clauses: (1) both schedules fetch the same units in the same
/// relative order — prefetch moves waits, never reorders issues, which
/// (with FIFO completion) pins the async completion order to the sync
/// one; (2) no fetch is issued *later* than its synchronous position —
/// a parameter is always resident by the time compute needs it; (3) no
/// fetch is issued earlier than its predecessor's synchronous position
/// — at most one unit is in flight beyond the one being consumed,
/// i.e. exactly a double-buffered slot, never triple buffering.
fn check_fetch_window(
    sync: &[(String, usize)],
    over: &[(String, usize)],
) -> Result<(), String> {
    if sync.len() != over.len() {
        return Err(format!(
            "fetch count differs — sync {} vs overlapped {}",
            sync.len(),
            over.len()
        ));
    }
    for k in 0..sync.len() {
        if sync[k].0 != over[k].0 {
            return Err(format!("fetch {k} reordered between schedules"));
        }
        if over[k].1 > sync[k].1 {
            return Err(format!(
                "fetch {k} issued later than its synchronous position"
            ));
        }
        if k > 0 && over[k].1 < sync[k - 1].1 {
            return Err(format!(
                "fetch {k} issued more than one unit ahead — exceeds the \
                 double-buffered prefetch window"
            ));
        }
    }
    Ok(())
}

/// Proves overlap invariance for one configuration: the overlapped plan
/// must be a pure reordering of the synchronous plan's op multiset (same
/// per-rank bytes and messages per kind, same resolved ops up to order),
/// the synchronous plan must contain no non-blocking issues, and the
/// overlapped plan's fetch issue positions must respect the
/// double-buffered window ([`check_fetch_window`]).
pub(crate) fn check_overlap_pair(
    zcfg: &ZeroConfig,
    grid: Grid,
    report: &mut ScheduleReport,
) -> Result<(), String> {
    let model = test_model();
    let layout = Layout::build_mp(&model, grid.mp_degree());
    let sync_cfg = ZeroConfig { overlap: false, ..*zcfg };
    let over_cfg = ZeroConfig { overlap: true, ..*zcfg };
    let what = format!(
        "overlap-invariance {} dp={} mp={} ckpt={}",
        zcfg.stage.name(),
        grid.dp_degree(),
        grid.mp_degree(),
        zcfg.checkpoint_activations
    );
    for skipped in [false, true] {
        let sync = CommPlan::train_step(&layout, &sync_cfg, grid, &shape(skipped));
        let over = CommPlan::train_step(&layout, &over_cfg, grid, &shape(skipped));
        if sync.ops().len() != over.ops().len() {
            return Err(format!(
                "{what}: op count differs — sync {} vs overlapped {}",
                sync.ops().len(),
                over.ops().len()
            ));
        }
        if sync.ops().iter().any(|op| op.nonblocking) {
            return Err(format!("{what}: synchronous plan carries non-blocking ops"));
        }
        for rank in 0..grid.world_size() {
            if sync.rank_bytes(rank) != over.rank_bytes(rank) {
                return Err(format!("{what}: rank {rank} bytes differ between schedules"));
            }
            if sync.rank_messages(rank) != over.rank_messages(rank) {
                return Err(format!("{what}: rank {rank} messages differ between schedules"));
            }
            // Multiset equality of the resolved ops: the overlapped
            // schedule may only *move* fetches to their issue positions.
            let key = |ops: Vec<zero_core::ResolvedOp>| {
                let mut keys: Vec<String> = ops
                    .iter()
                    .map(|op| {
                        format!(
                            "{:?}|{:?}|{:?}|{:?}|{:?}|{}",
                            op.kind, op.members, op.counts, op.prec, op.wire, op.label
                        )
                    })
                    .collect();
                keys.sort();
                keys
            };
            if key(sync.resolve_for(rank)) != key(over.resolve_for(rank)) {
                return Err(format!(
                    "{what}: rank {rank}: overlapped plan is not a reordering of the \
                     synchronous op multiset"
                ));
            }
        }
        let sf = fetch_trace(&sync);
        let of = fetch_trace(&over);
        if zcfg.stage.partitions_params()
            && !of.is_empty()
            && !over.ops().iter().any(|op| op.nonblocking && op.label == "fetch-unit")
        {
            return Err(format!(
                "{what}: overlapped stage-3 plan carries no non-blocking fetches"
            ));
        }
        check_fetch_window(&sf, &of).map_err(|e| format!("{what}: {e}"))?;
        report.plans += 2;
    }
    report.configs += 1;
    Ok(())
}

/// Proves the serving gather schedule (`CommPlan::serve_step`): exactly
/// one all-gather per unit, world-scoped and rank-symmetric, with each
/// rank's step volume matching the telescoping identity
///
/// ```text
/// Σ_u (|u| − c_u[(i+1) mod N]) = Ψ − |shard_{(i+1) mod N}|
/// ```
///
/// (the unit intersections of a shard sum to the shard, since units tile
/// the flat space) — and *no* traffic of any other kind.
fn check_serve(n: usize, overlap: bool, report: &mut ScheduleReport) -> Result<(), String> {
    let layout = Layout::build(&test_model());
    let plan = CommPlan::serve_step(&layout, n, overlap);
    let what = format!("serve N={n} overlap={overlap}");
    let (ops, pairs) = check_symmetry(&plan, &what)?;
    report.ops_checked += ops;
    report.pair_checks += pairs;
    report.plans += 1;

    if plan.ops().len() != layout.units().len() {
        return Err(format!(
            "{what}: {} ops for {} units — the serving step must gather each unit exactly once",
            plan.ops().len(),
            layout.units().len()
        ));
    }
    for op in plan.ops() {
        if op.kind != CollectiveKind::AllGather
            || op.label != "serve-fetch-unit"
            || op.nonblocking != overlap
        {
            return Err(format!(
                "{what}: unexpected op {:?} '{}' (nonblocking={})",
                op.kind, op.label, op.nonblocking
            ));
        }
    }

    let psi = layout.total_params() as u64;
    let part = Partitioner::new(layout.total_params(), n);
    for rank in 0..n {
        let got = plan.rank_bytes(rank)[AG];
        let next = part.shard_range((rank + 1) % n).len() as u64;
        let want = 4 * (psi - next);
        if got != want {
            return Err(format!(
                "{what}: rank {rank} all-gathers {got} bytes, telescoped identity says {want}"
            ));
        }
        let total = plan.total_rank_bytes(rank);
        if total != got {
            return Err(format!(
                "{what}: rank {rank} sends {total} bytes total but {got} as all-gather — \
                 the serving step must carry no other traffic"
            ));
        }
    }
    Ok(())
}

/// Runs only the overlap-invariance battery: every overlapped plan is
/// proven a volume-preserving reordering of its synchronous twin with a
/// double-buffered prefetch window, across stages 1–3 × N ∈ {2..8},
/// checkpointed stage 3, and mixed DP×MP grids. This is the same sweep
/// [`check_all`] embeds, exposed as its own CLI pass so overlap
/// regressions are attributable at a glance.
pub fn check_overlap() -> Result<ScheduleReport, String> {
    let mut report = ScheduleReport::default();
    let base = |stage: ZeroStage| ZeroConfig {
        stage,
        fp16: true,
        checkpoint_activations: false,
        initial_loss_scale: 1.0,
        bucket_elems: 512,
        clip_grad_norm: None,
        ..ZeroConfig::default()
    };
    for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        for n in 2..=8 {
            check_overlap_pair(&base(stage), Grid::new(n, 1), &mut report)?;
        }
    }
    let ckpt3 = ZeroConfig { checkpoint_activations: true, ..base(ZeroStage::Three) };
    for n in [2usize, 4] {
        check_overlap_pair(&ckpt3, Grid::new(n, 1), &mut report)?;
    }
    for (dp, mp) in [(2usize, 2usize), (4, 2)] {
        check_overlap_pair(&base(ZeroStage::Three), Grid::new(dp, mp), &mut report)?;
    }
    Ok(report)
}

/// Runs the full static sweep: every stage × N ∈ {2..8} (plus MP grids,
/// checkpointing/P_a, clipping, hierarchical-all-reduce, overlapped
/// variants, and the serving gather schedule) — zero training steps
/// executed.
pub fn check_all() -> Result<ScheduleReport, String> {
    let mut report = ScheduleReport::default();

    let base = |stage: ZeroStage| ZeroConfig {
        stage,
        fp16: true,
        checkpoint_activations: false,
        initial_loss_scale: 1.0,
        bucket_elems: 512,
        clip_grad_norm: None,
        ..ZeroConfig::default()
    };

    // Stage × N sweep (the acceptance grid), pure data parallelism.
    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        for n in 2..=8 {
            check_config(&base(stage), Grid::new(n, 1), &mut report)?;
        }
    }

    // Mixed DP × MP grids (Megatron-style groups).
    for stage in [ZeroStage::Two, ZeroStage::Three] {
        for (dp, mp) in [(2, 2), (4, 2)] {
            check_config(&base(stage), Grid::new(dp, mp), &mut report)?;
        }
    }

    // ZeRO-R: checkpointing with partitioned activations (P_a).
    let pa = ZeroConfig {
        checkpoint_activations: true,
        partition_activations: true,
        ..base(ZeroStage::Two)
    };
    for (dp, mp) in [(2, 2), (4, 2)] {
        check_config(&pa, Grid::new(dp, mp), &mut report)?;
    }

    // Gradient clipping adds the grad-norm reduction.
    for stage in [ZeroStage::Ddp, ZeroStage::Three] {
        let clip = ZeroConfig { clip_grad_norm: Some(1.0), ..base(stage) };
        check_config(&clip, Grid::new(4, 1), &mut report)?;
    }

    // Overlap-centric execution: every stage × N runs the full symmetry +
    // volume battery on the *overlapped* plan (issue-ordered fetches,
    // non-blocking bucket reduce-scatters)…
    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        for n in 2..=8 {
            check_config(&base(stage).overlapped(), Grid::new(n, 1), &mut report)?;
        }
    }
    // …and the overlapped schedule is proven a volume-preserving
    // reordering of its synchronous twin, with bounded prefetch depth.
    for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        for n in 2..=8 {
            check_overlap_pair(&base(stage), Grid::new(n, 1), &mut report)?;
        }
    }
    let ckpt3 = ZeroConfig { checkpoint_activations: true, ..base(ZeroStage::Three) };
    for n in [2usize, 4] {
        check_config(&ckpt3.overlapped(), Grid::new(n, 1), &mut report)?;
        check_overlap_pair(&ckpt3, Grid::new(n, 1), &mut report)?;
    }
    for (dp, mp) in [(2usize, 2usize), (4, 2)] {
        check_config(&base(ZeroStage::Three).overlapped(), Grid::new(dp, mp), &mut report)?;
        check_overlap_pair(&base(ZeroStage::Three), Grid::new(dp, mp), &mut report)?;
    }

    // Shard-hosted serving: the stage-3 fetch schedule with no training
    // traffic, both synchronous and prefetched.
    for n in 1..=8 {
        for overlap in [false, true] {
            check_serve(n, overlap, &mut report)?;
        }
        report.configs += 1;
    }

    // Hierarchical (two-level) all-reduce under DDP: symmetry only — the
    // three-phase volume is covered empirically by the conformance tests.
    for (world, g) in [(4usize, 2usize), (8, 4)] {
        let hier = ZeroConfig { node_size: Some(g), ..base(ZeroStage::Ddp) };
        let grid = Grid::new(world, 1);
        let layout = Layout::build_mp(&test_model(), 1);
        for skipped in [false, true] {
            let plan = CommPlan::train_step(&layout, &hier, grid, &shape(skipped));
            let (ops, pairs) =
                check_symmetry(&plan, &format!("DDP hier world={world} g={g}"))?;
            report.ops_checked += ops;
            report.pair_checks += pairs;
            report.plans += 1;
        }
        report.configs += 1;
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sweep_passes() {
        let r = check_all().expect("static schedule check");
        // 36 synchronous configs + the overlapped sweep and the
        // overlap-invariance pairs.
        assert!(r.configs >= 90, "sweep covered {} configs", r.configs);
        assert!(r.ops_checked > 1000);
    }

    #[test]
    fn prefetch_moves_issues_within_double_buffer() {
        // Stage 3 on a DP×MP grid (MP hooks interleave with fetches, so
        // issue positions are observable): the overlapped plan must move
        // at least one fetch strictly earlier than its synchronous
        // position — the prefetch is real, not a relabeling — while
        // every fetch stays inside the double-buffered window.
        let grid = Grid::new(2, 2);
        let layout = Layout::build_mp(&test_model(), 2);
        let zcfg = ZeroConfig {
            stage: ZeroStage::Three,
            fp16: true,
            checkpoint_activations: false,
            ..ZeroConfig::default()
        };
        let sync = CommPlan::train_step(&layout, &zcfg, grid, &shape(false));
        let over = CommPlan::train_step(&layout, &zcfg.overlapped(), grid, &shape(false));
        let sf = fetch_trace(&sync);
        let of = fetch_trace(&over);
        assert!(!sf.is_empty(), "stage 3 must fetch units");
        check_fetch_window(&sf, &of).expect("double-buffer window");
        let moved = sf.iter().zip(&of).filter(|(s, o)| o.1 < s.1).count();
        assert!(moved > 0, "no fetch was issued ahead of its sync position");
        // And the engine's real plans do mark fetches non-blocking.
        assert!(over.ops().iter().any(|op| op.nonblocking && op.label == "fetch-unit"));
        assert!(sync.ops().iter().all(|op| !op.nonblocking));
    }

    #[test]
    fn overlap_depth_violation_is_caught() {
        // Synthetic traces guard the checker against regressing to a
        // rubber stamp: a fetch issued two units ahead (triple
        // buffering), a late fetch, and a reordered pair must all be
        // rejected by the positional window proof.
        let t = |v: &[(&str, usize)]| -> Vec<(String, usize)> {
            v.iter().map(|(k, p)| (k.to_string(), *p)).collect()
        };
        let sync = t(&[("a", 0), ("b", 3), ("c", 6)]);
        assert!(check_fetch_window(&sync, &t(&[("a", 0), ("b", 0), ("c", 3)])).is_ok());
        let triple = t(&[("a", 0), ("b", 0), ("c", 0)]); // "c" before "b"'s sync spot
        assert!(
            check_fetch_window(&sync, &triple)
                .unwrap_err()
                .contains("double-buffered"),
            "triple buffering must be rejected"
        );
        let late = t(&[("a", 0), ("b", 4), ("c", 6)]);
        assert!(check_fetch_window(&sync, &late).unwrap_err().contains("later"));
        let reordered = t(&[("b", 0), ("a", 3), ("c", 6)]);
        assert!(check_fetch_window(&sync, &reordered).unwrap_err().contains("reordered"));
    }

    #[test]
    fn flag_volume_formula_matches_ring() {
        // Cross-check the first-principles 1-element all-reduce bytes
        // against the plan machinery itself.
        let layout = Layout::build(&test_model());
        let zcfg = ZeroConfig {
            stage: ZeroStage::Two,
            fp16: true,
            checkpoint_activations: false,
            ..ZeroConfig::default()
        };
        for n in [1usize, 2, 5] {
            let plan = CommPlan::step_prefix(&layout, &zcfg, Grid::new(n, 1), 1, 16);
            for rank in 0..n {
                let flag: u64 = plan
                    .resolve_for(rank)
                    .iter()
                    .filter(|op| op.label == "overflow-flag")
                    .map(|op| op.sent_bytes(rank))
                    .sum();
                assert_eq!(flag, one_elem_ar_bytes(n, rank), "n={n} rank={rank}");
            }
        }
    }
}
