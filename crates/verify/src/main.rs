//! `zero-verify` — run the static verification passes from the command
//! line (CI runs this before the test suite).
//!
//! ```text
//! zero-verify [schedule|tiling|lint|all]
//! ```
//!
//! Exits non-zero if any pass fails, printing the first violated
//! invariant (schedule/tiling) or every lint hit.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn repo_root() -> PathBuf {
    // crates/verify -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has a grandparent")
        .to_path_buf()
}

fn run_schedule() -> bool {
    match zero_verify::check_schedules() {
        Ok(r) => {
            println!(
                "schedule: OK — {} configs, {} plans, {} resolved ops, \
                 {} rank-pair agreements",
                r.configs, r.plans, r.ops_checked, r.pair_checks
            );
            true
        }
        Err(e) => {
            eprintln!("schedule: FAIL — {e}");
            false
        }
    }
}

fn run_tiling() -> bool {
    match zero_verify::prove_tiling() {
        Ok(r) => {
            println!(
                "tiling:   OK — {} partitions ({} elements), {} layout units tiled",
                r.partitions, r.elements, r.units
            );
            true
        }
        Err(e) => {
            eprintln!("tiling:   FAIL — {e}");
            false
        }
    }
}

fn run_lint() -> bool {
    let root = repo_root();
    let comm = root.join("crates/comm/src");
    let core = root.join("crates/core/src");
    let report = zero_verify::lint_paths(&[comm.as_path(), core.as_path()]);
    if report.is_clean() {
        println!("lint:     OK — {} files scanned, 0 hits", report.files_scanned);
        true
    } else {
        eprintln!(
            "lint:     FAIL — {} hits in {} files:",
            report.hits.len(),
            report.files_scanned
        );
        for hit in &report.hits {
            eprintln!("  {hit}");
        }
        false
    }
}

fn main() -> ExitCode {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let ok = match mode.as_str() {
        "schedule" => run_schedule(),
        "tiling" => run_tiling(),
        "lint" => run_lint(),
        "all" => {
            // Run every pass even if an early one fails, so CI output
            // shows the full picture.
            let s = run_schedule();
            let t = run_tiling();
            let l = run_lint();
            s && t && l
        }
        other => {
            eprintln!("unknown mode '{other}'; expected schedule|tiling|lint|all");
            false
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
