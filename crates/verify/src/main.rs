//! `zero-verify` — run the static verification passes from the command
//! line (CI runs this before the test suite).
//!
//! ```text
//! zero-verify [--pass <name>[,<name>...]] [--budget <states>] [--list-passes]
//! ```
//!
//! Passes: `schedule`, `tiling`, `lint`, `overlap`, `tracecheck`,
//! `modelcheck`, `compression`, `offload` — run all of them when no
//! `--pass` is given. The legacy
//! positional forms (`zero-verify lint`, `zero-verify all`) keep
//! working. Exits non-zero if any selected pass fails; `--budget` caps
//! the model checker's per-scenario state count (exhausting it is a
//! failure, not a silent pass).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use zero_core::{
    run_training, CommPlan, CompressionConfig, StepShape, TrainSetup, ZeroConfig, ZeroStage,
};
use zero_model::ModelConfig;

/// Default per-scenario state budget for the modelcheck pass: an order
/// of magnitude above the largest scenario's measured state count, so
/// genuine blowups fail loudly while normal growth has headroom.
const DEFAULT_MODELCHECK_BUDGET: u64 = 500_000;

const PASSES: [&str; 8] = [
    "schedule",
    "tiling",
    "lint",
    "overlap",
    "tracecheck",
    "modelcheck",
    "compression",
    "offload",
];

fn repo_root() -> PathBuf {
    // crates/verify -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has a grandparent")
        .to_path_buf()
}

fn run_schedule() -> bool {
    match zero_verify::check_schedules() {
        Ok(r) => {
            println!(
                "schedule:   OK — {} configs, {} plans, {} resolved ops, \
                 {} rank-pair agreements",
                r.configs, r.plans, r.ops_checked, r.pair_checks
            );
            true
        }
        Err(e) => {
            eprintln!("schedule:   FAIL — {e}");
            false
        }
    }
}

fn run_tiling() -> bool {
    match zero_verify::prove_tiling() {
        Ok(r) => {
            println!(
                "tiling:     OK — {} partitions ({} elements), {} layout units tiled",
                r.partitions, r.elements, r.units
            );
            true
        }
        Err(e) => {
            eprintln!("tiling:     FAIL — {e}");
            false
        }
    }
}

fn run_lint() -> bool {
    let root = repo_root();
    let comm = root.join("crates/comm/src");
    let core = root.join("crates/core/src");
    let report = zero_verify::lint_paths(&[comm.as_path(), core.as_path()]);
    for warning in &report.warnings {
        println!("lint:       warning — {warning}");
    }
    if report.is_clean() {
        println!("lint:       OK — {} files scanned, 0 hits", report.files_scanned);
        true
    } else {
        eprintln!(
            "lint:       FAIL — {} hits in {} files:",
            report.hits.len(),
            report.files_scanned
        );
        for hit in &report.hits {
            eprintln!("  {hit}");
        }
        false
    }
}

fn run_overlap() -> bool {
    match zero_verify::schedule::check_overlap() {
        Ok(r) => {
            println!(
                "overlap:    OK — {} configs proven volume-preserving reorderings \
                 ({} plans compared)",
                r.configs, r.plans
            );
            true
        }
        Err(e) => {
            eprintln!("overlap:    FAIL — {e}");
            false
        }
    }
}

/// Runs tiny real training jobs (stage 3, raw N=2 and all-levers
/// compressed N=4/G=2, two steps, sync+overlap) and reconciles every
/// rank's recorded timeline byte-exactly against the analytic plan and
/// the metered traffic — the runtime face of the schedule pass. With
/// compression on, the plan's byte tags are compressed wire bytes, so
/// this also proves the runtime sends exactly the quantized volume the
/// plan promises.
fn run_tracecheck() -> bool {
    let model = ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 };
    let layout = zero_model::Layout::build(&model);
    let act_elems = model.seq * model.hidden;
    let raw = CompressionConfig::off();
    let squeezed =
        CompressionConfig { qwz: true, hpz: true, qgz: true, node_size: 2, block: 64 };
    let mut checked_ranks = 0usize;
    for (compression, dp) in [(raw, 2usize), (squeezed, 4)] {
        for overlap in [false, true] {
            let setup = TrainSetup {
                model,
                zero: ZeroConfig {
                    stage: ZeroStage::Three,
                    fp16: true,
                    initial_loss_scale: 1.0,
                    checkpoint_activations: false,
                    bucket_elems: 1000,
                    overlap,
                    compression,
                    ..ZeroConfig::default()
                },
                grid: zero_comm::Grid::new(dp, 1),
                global_batch: dp,
                seed: 5,
            };
            let report = run_training(&setup, 2, 0);
            for r in &report.ranks {
                let mut want = zero_verify::TraceExpectation::default();
                for &skipped in &report.skipped {
                    let plan = CommPlan::train_step(
                        &layout,
                        &setup.zero,
                        setup.grid,
                        &StepShape { micro_batches: 1, act_elems, skipped },
                    );
                    want.add_plan(&plan, r.rank, 1);
                }
                if let Err(e) =
                    zero_verify::check_timeline(&r.timeline, &want, Some(&r.traffic))
                {
                    eprintln!(
                        "tracecheck: FAIL — compression={} overlap={overlap} rank {}: {e}",
                        compression.any(),
                        r.rank
                    );
                    return false;
                }
                checked_ranks += 1;
            }
        }
    }
    println!(
        "tracecheck: OK — {checked_ranks} rank timelines reconciled against plan and \
         metered traffic (stage 3, raw N=2 + qwZ/hpZ/qgZ N=4 G=2, sync+overlap)"
    );
    true
}

fn run_modelcheck(budget: u64) -> bool {
    let report = zero_verify::run_modelcheck(budget);
    let mut ok = true;
    for sc in &report.scenarios {
        println!(
            "modelcheck:   {:<18} {:>8} states, {:>8} transitions, depth {}{}",
            sc.name,
            sc.states,
            sc.transitions,
            sc.max_depth,
            if sc.budget_exhausted { "  [BUDGET EXHAUSTED]" } else { "" }
        );
        if sc.budget_exhausted {
            eprintln!(
                "modelcheck: FAIL — {}: state budget ({budget}) exhausted; \
                 coverage incomplete",
                sc.name
            );
            ok = false;
        }
        if let Some(f) = &sc.failure {
            eprintln!("modelcheck: FAIL — {}: {f}", sc.name);
            ok = false;
        }
        for race in &sc.races {
            eprintln!("modelcheck: FAIL — {}: {race}", sc.name);
            ok = false;
        }
        if let Some(cycle) = &sc.lock_cycle {
            eprintln!(
                "modelcheck: FAIL — {}: cyclic lock order over mutexes {:?}",
                sc.name, cycle
            );
            ok = false;
        }
    }
    if ok {
        println!(
            "modelcheck: OK — {} scenarios exhaustively explored, {} states total \
             (budget {budget}/scenario)",
            report.scenarios.len(),
            report.total_states(),
        );
    }
    ok
}

fn run_compression() -> bool {
    match zero_verify::check_compression() {
        Ok(r) => {
            println!(
                "compression: OK — {} lever configurations proven, {} compressed ops \
                 recomputed; inter-node step volume (all levers on vs raw):",
                r.configs, r.ops_checked
            );
            for row in &r.rows {
                println!(
                    "compression:   {:<8} N={:<2} G={:<2} {:>10} -> {:>9} bytes  ({:.2}x)",
                    row.stage, row.n, row.g, row.raw_bytes, row.compressed_bytes, row.ratio
                );
            }
            true
        }
        Err(e) => {
            eprintln!("compression: FAIL — {e}");
            false
        }
    }
}

fn run_offload() -> bool {
    match zero_verify::check_offload() {
        Ok(r) => {
            println!(
                "offload:    OK — {} configurations proven ({} tier ops checked, \
                 {} paired with their anchor collective, {} prefetch windows open)",
                r.configs, r.tier_ops_checked, r.paired_ops, r.windows_proven
            );
            true
        }
        Err(e) => {
            eprintln!("offload:    FAIL — {e}");
            false
        }
    }
}

fn run_pass(name: &str, budget: u64) -> Option<bool> {
    Some(match name {
        "schedule" => run_schedule(),
        "tiling" => run_tiling(),
        "lint" => run_lint(),
        "overlap" => run_overlap(),
        "tracecheck" => run_tracecheck(),
        "modelcheck" => run_modelcheck(budget),
        "compression" => run_compression(),
        "offload" => run_offload(),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut selected: Vec<String> = Vec::new();
    let mut budget = DEFAULT_MODELCHECK_BUDGET;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list-passes" => {
                for p in PASSES {
                    println!("{p}");
                }
                return ExitCode::SUCCESS;
            }
            "--pass" => {
                i += 1;
                let Some(names) = args.get(i) else {
                    eprintln!("--pass needs a value (one of: {})", PASSES.join(", "));
                    return ExitCode::FAILURE;
                };
                selected.extend(names.split(',').map(|s| s.trim().to_string()));
            }
            "--budget" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(b) if b > 0 => budget = b,
                    _ => {
                        eprintln!("--budget needs a positive integer state count");
                        return ExitCode::FAILURE;
                    }
                }
            }
            // Legacy positional form.
            "all" => selected.extend(PASSES.iter().map(|s| s.to_string())),
            other if PASSES.contains(&other) => selected.push(other.to_string()),
            other => {
                eprintln!(
                    "unknown argument '{other}'; usage: zero-verify \
                     [--pass <name>[,<name>...]] [--budget <states>] [--list-passes]"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if selected.is_empty() {
        selected = PASSES.iter().map(|s| s.to_string()).collect();
    }

    // Run every selected pass even if an early one fails, so CI output
    // shows the full picture.
    let mut ok = true;
    for name in &selected {
        match run_pass(name, budget) {
            Some(passed) => ok &= passed,
            None => {
                eprintln!("unknown pass '{name}'; known passes: {}", PASSES.join(", "));
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
