//! # zero-comm
//!
//! In-process substitute for NCCL: each rank is an OS thread, the fabric is
//! a matrix of FIFO channels, and the collectives are the same pipelined
//! ring schedules NCCL uses — so per-rank communication *volume* matches
//! the algorithmic volumes the paper's §7 analysis is built on, and is
//! measured, not assumed, via [`stats::TrafficStats`].
//!
//! Failures are first-class: every receive is timeout-bounded, every payload
//! carries a CRC, and collectives return `Result<_, CommError>` so dead,
//! hung, or corrupting peers surface as typed errors rather than deadlocks
//! or aborts. [`FaultPlan`] injects such failures deterministically.
//!
//! ```
//! use zero_comm::{launch, ReduceOp, Precision};
//!
//! let sums = launch(4, |mut comm| {
//!     let mut buf = vec![comm.rank() as f32; 8];
//!     comm.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp32).unwrap();
//!     buf[0]
//! });
//! assert_eq!(sums, vec![6.0; 4]);
//! ```

pub mod collectives;
pub mod crc;
pub mod error;
pub mod fault;
pub mod group;
pub mod hierarchical;
pub mod nonblocking;
pub mod protocol;
pub mod quant;
pub mod stats;
pub mod process;
pub mod transport;
pub mod wire;
pub mod world;

pub use collectives::{chunk_range, Precision, ReduceOp};
pub use crc::{crc32, crc32_f32s, Crc32};
pub use error::CommError;
pub use fault::{FaultKind, FaultPlan, FaultSpec, FaultTrigger};
pub use group::{Grid, Group};
pub use hierarchical::NodeTopology;
pub use nonblocking::PendingOp;
pub use process::{connect_process_rank, ProcessWorldConfig, RankProcs};
pub use quant::{
    quant_wire_bytes, quantize, quantize_for_transport, BlockQuantized, QuantError,
    DEFAULT_QUANT_BLOCK,
};
pub use stats::{
    CollectiveKind, TimingSnapshot, TrafficSnapshot, TrafficStats, ALL_KINDS, KIND_COUNT,
};
pub use transport::{Msg, ShutdownLatch, TimeoutBarrier, Transport};
pub use wire::{Frame, WireError, MAX_FRAME_LEN};
pub use world::{
    launch, launch_with_config, launch_with_stats, try_launch, try_launch_with_config,
    Communicator, RankFailure, TierThrottle, TieredLink, World, WorldConfig,
};
