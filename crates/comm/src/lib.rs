//! # zero-comm
//!
//! In-process substitute for NCCL: each rank is an OS thread, the fabric is
//! a matrix of FIFO channels, and the collectives are the same pipelined
//! ring schedules NCCL uses — so per-rank communication *volume* matches
//! the algorithmic volumes the paper's §7 analysis is built on, and is
//! measured, not assumed, via [`stats::TrafficStats`].
//!
//! ```
//! use zero_comm::{launch, ReduceOp, Precision};
//!
//! let sums = launch(4, |mut comm| {
//!     let mut buf = vec![comm.rank() as f32; 8];
//!     comm.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp32);
//!     buf[0]
//! });
//! assert_eq!(sums, vec![6.0; 4]);
//! ```

pub mod collectives;
pub mod group;
pub mod hierarchical;
pub mod stats;
pub mod world;

pub use collectives::{chunk_range, Precision, ReduceOp};
pub use group::{Grid, Group};
pub use hierarchical::NodeTopology;
pub use stats::{CollectiveKind, TrafficSnapshot, TrafficStats};
pub use world::{launch, launch_with_stats, Communicator, World};
