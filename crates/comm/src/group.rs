//! Rank subgroups and the 2-D data-parallel × model-parallel grid.
//!
//! The paper combines ZeRO-DP with Megatron-style MP by running MP *within*
//! a node and DP *across* nodes ("1024 GPUs with 16-way model parallelism
//! within each DGX2 node and 64-way data parallelism across nodes", §1).
//! [`Grid`] encodes exactly that layout: global rank = dp_rank · mp + mp_rank,
//! so consecutive ranks form an MP group (one "node").

/// An ordered set of global ranks that perform collectives together.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    members: Vec<usize>,
}

impl Group {
    /// A group from explicit global ranks.
    ///
    /// # Panics
    /// Panics if `members` is empty or contains duplicates.
    pub fn new(members: Vec<usize>) -> Group {
        assert!(!members.is_empty(), "group must be non-empty");
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len(), "group has duplicate ranks");
        Group { members }
    }

    /// The trivial group of all `n` ranks in order.
    pub fn world(n: usize) -> Group {
        Group {
            members: (0..n).collect(),
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the group has exactly one member.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Members in collective order.
    #[inline]
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Position of `rank` within the group, if present.
    pub fn local_index(&self, rank: usize) -> Option<usize> {
        self.members.iter().position(|&m| m == rank)
    }

    /// True if `rank` belongs to this group.
    pub fn contains(&self, rank: usize) -> bool {
        self.local_index(rank).is_some()
    }
}

/// A 2-D process grid: `dp` data-parallel replicas × `mp` model-parallel
/// shards, with MP contiguous (mapping MP inside the fast intra-node fabric
/// as the paper prescribes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    dp: usize,
    mp: usize,
}

impl Grid {
    /// Creates a grid; total ranks = `dp · mp`.
    ///
    /// # Panics
    /// Panics if either degree is zero.
    pub fn new(dp: usize, mp: usize) -> Grid {
        assert!(dp > 0 && mp > 0, "grid degrees must be positive");
        Grid { dp, mp }
    }

    /// Data-parallel degree N_d.
    #[inline]
    pub fn dp_degree(&self) -> usize {
        self.dp
    }

    /// Model-parallel degree N_m.
    #[inline]
    pub fn mp_degree(&self) -> usize {
        self.mp
    }

    /// Total number of ranks.
    #[inline]
    pub fn world_size(&self) -> usize {
        self.dp * self.mp
    }

    /// The (dp_rank, mp_rank) coordinates of a global rank.
    #[inline]
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        debug_assert!(rank < self.world_size());
        (rank / self.mp, rank % self.mp)
    }

    /// The global rank at the given coordinates.
    #[inline]
    pub fn rank_at(&self, dp_rank: usize, mp_rank: usize) -> usize {
        debug_assert!(dp_rank < self.dp && mp_rank < self.mp);
        dp_rank * self.mp + mp_rank
    }

    /// The model-parallel group containing `rank`: all shards of the same
    /// replica (consecutive global ranks — "within the node").
    pub fn mp_group(&self, rank: usize) -> Group {
        let (dp_rank, _) = self.coords(rank);
        Group::new((0..self.mp).map(|m| self.rank_at(dp_rank, m)).collect())
    }

    /// The data-parallel group containing `rank`: the same shard index
    /// across all replicas ("across nodes").
    pub fn dp_group(&self, rank: usize) -> Group {
        let (_, mp_rank) = self.coords(rank);
        Group::new((0..self.dp).map(|d| self.rank_at(d, mp_rank)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_group_is_identity() {
        let g = Group::world(4);
        assert_eq!(g.members(), &[0, 1, 2, 3]);
        assert_eq!(g.local_index(2), Some(2));
        assert_eq!(g.local_index(9), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_members_rejected() {
        let _ = Group::new(vec![0, 1, 1]);
    }

    #[test]
    fn grid_coordinates_round_trip() {
        let g = Grid::new(4, 2); // 8 ranks, MP pairs (0,1), (2,3), ...
        for rank in 0..8 {
            let (d, m) = g.coords(rank);
            assert_eq!(g.rank_at(d, m), rank);
        }
        assert_eq!(g.coords(5), (2, 1));
    }

    #[test]
    fn mp_groups_are_contiguous_dp_groups_are_strided() {
        let g = Grid::new(2, 4); // ranks 0..8
        assert_eq!(g.mp_group(5).members(), &[4, 5, 6, 7]);
        assert_eq!(g.dp_group(5).members(), &[1, 5]);
        assert_eq!(g.mp_group(0).members(), &[0, 1, 2, 3]);
        assert_eq!(g.dp_group(2).members(), &[2, 6]);
    }

    #[test]
    fn degenerate_grids() {
        let g = Grid::new(1, 4);
        assert_eq!(g.dp_group(2).len(), 1);
        assert_eq!(g.mp_group(2).len(), 4);
        let g = Grid::new(4, 1);
        assert_eq!(g.dp_group(2).len(), 4);
        assert_eq!(g.mp_group(2).len(), 1);
    }
}
