//! Pure decision kernels of the hand-rolled concurrency protocols.
//!
//! The transport layer coordinates ranks with a handful of small
//! protocols — the [`ShutdownLatch`](crate::transport) counts live
//! handles, the [`TimeoutBarrier`](crate::transport) counts arrivals per
//! generation with withdraw-on-timeout, and the socket backend runs a
//! dissemination barrier over the mesh. Each of them is a *pure state
//! machine* wrapped in synchronization: every decision ("release the
//! waiters?", "which peer do I message in round r?") is a function of
//! plain counters, not of the mutex or socket carrying them.
//!
//! This module holds exactly those state machines, with no
//! synchronization of any kind, so two independent consumers can share
//! them verbatim:
//!
//! * the real primitives in [`transport`](crate::transport) and
//!   [`process`](crate::process), which run them under `Mutex`/`Condvar`
//!   or over sockets, and
//! * `zero-verify`'s `modelcheck` pass, which runs them under *modeled*
//!   mutexes and channels and exhaustively explores every interleaving.
//!
//! Keeping one copy is what makes the model checker honest: it verifies
//! the decision logic that actually ships, and only the (small, shim-
//! mediated) synchronization skeleton is re-expressed in the model.

/// Latch logic: a count of live communicator handles in one world.
///
/// `depart` is saturating so a double shutdown (a handle departing
/// twice, or more departs than the latch was built for) can never
/// underflow into a huge live count that strands the waiter forever —
/// the idempotence the deadline-edge tests pin down.
pub mod latch {
    /// Records one handle going away.
    pub fn depart(live: &mut usize) {
        *live = live.saturating_sub(1);
    }

    /// True once at most the caller's own handle remains: the hung
    /// rank's deadline wait may cancel because no peer can possibly
    /// still be blocked on it.
    pub fn sole_survivor(live: usize) -> bool {
        live <= 1
    }
}

/// Arrival bookkeeping of the reusable N-party timeout barrier.
///
/// The state is two counters; all subtlety is in *who* mutates them
/// when. The contract the model checker proves over every interleaving:
///
/// * a party that times out withdraws its arrival, so later generations
///   start from a clean count;
/// * a generation increments only when all `n` live arrivals are in, so
///   nobody observes a release before the wave is complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BarrierCore {
    /// Parties of the barrier.
    pub n: usize,
    /// Arrivals in the current generation (withdrawals subtracted).
    pub arrived: usize,
    /// Completed generations; waiters key their release off it.
    pub generation: u64,
}

/// What [`BarrierCore::arrive`] decided for the arriving party.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrival {
    /// This arrival completed the wave: the generation advanced and the
    /// arriver must wake everyone else.
    Released,
    /// The wave is short; wait until `generation` moves past `gen`.
    MustWait {
        /// Generation observed at arrival; the release predicate is
        /// `core.released(gen)`, re-checked after every wake.
        gen: u64,
    },
}

impl BarrierCore {
    /// A fresh barrier for `n` parties.
    pub fn new(n: usize) -> BarrierCore {
        BarrierCore { n, arrived: 0, generation: 0 }
    }

    /// Registers one arrival and decides whether it completed the wave.
    pub fn arrive(&mut self) -> Arrival {
        let gen = self.generation;
        self.arrived += 1;
        if self.arrived == self.n {
            self.arrived = 0;
            self.generation += 1;
            Arrival::Released
        } else {
            Arrival::MustWait { gen }
        }
    }

    /// Withdraws a timed-out arrival so a retry (or fresh parties in a
    /// later generation) starts from a clean count.
    pub fn withdraw(&mut self) {
        self.arrived = self.arrived.saturating_sub(1);
    }

    /// The release predicate a waiter re-checks after every wake: true
    /// once the generation it arrived in has completed.
    pub fn released(&self, gen: u64) -> bool {
        self.generation != gen
    }
}

/// One round of the dissemination barrier as seen by one rank: send a
/// token to `dst`, then wait for the matching token from `src`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DissemRound {
    /// Round index (also carried in the wire frame).
    pub round: u32,
    /// Peer this rank signals: `(rank + 2^round) % world`.
    pub dst: usize,
    /// Peer this rank awaits: `(rank - 2^round) mod world`.
    pub src: usize,
}

/// The full dissemination schedule for `rank` in a world of `world`
/// ranks: `ceil(log2(world))` rounds with doubling offsets. Offsets are
/// distinct per round, so within one generation each ordered pair
/// carries at most one token and per-link FIFO keeps rounds ordered.
///
/// Both the socket backend's barrier and the model checker's
/// dissemination model iterate exactly this schedule.
pub fn dissemination_schedule(rank: usize, world: usize) -> Vec<DissemRound> {
    let mut rounds = Vec::new();
    let mut offset = 1usize;
    let mut round = 0u32;
    while offset < world {
        rounds.push(DissemRound {
            round,
            dst: (rank + offset) % world,
            src: (rank + world - offset) % world,
        });
        offset *= 2;
        round += 1;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_depart_saturates() {
        let mut live = 2usize;
        latch::depart(&mut live);
        assert!(!latch::sole_survivor(2));
        assert!(latch::sole_survivor(live));
        latch::depart(&mut live);
        latch::depart(&mut live); // one more than the latch was built for
        assert_eq!(live, 0);
        assert!(latch::sole_survivor(live));
    }

    #[test]
    fn barrier_core_full_wave_releases_and_resets() {
        let mut b = BarrierCore::new(3);
        let g0 = match b.arrive() {
            Arrival::MustWait { gen } => gen,
            r => panic!("first arrival released: {r:?}"),
        };
        assert!(matches!(b.arrive(), Arrival::MustWait { .. }));
        assert_eq!(b.arrive(), Arrival::Released);
        assert!(b.released(g0));
        assert_eq!(b.arrived, 0, "release must reset the count");
    }

    #[test]
    fn barrier_core_withdraw_keeps_later_wave_clean() {
        let mut b = BarrierCore::new(2);
        assert!(matches!(b.arrive(), Arrival::MustWait { .. }));
        b.withdraw(); // timed out
        assert!(matches!(b.arrive(), Arrival::MustWait { .. }));
        assert_eq!(b.arrive(), Arrival::Released);
    }

    #[test]
    fn dissemination_schedule_covers_log_rounds_with_distinct_offsets() {
        for world in 1..=9 {
            let rounds = dissemination_schedule(0, world);
            let want = (usize::BITS - (world - 1).max(1).leading_zeros()) as usize;
            if world == 1 {
                assert!(rounds.is_empty());
                continue;
            }
            assert_eq!(rounds.len(), want, "world={world}");
            for (i, r) in rounds.iter().enumerate() {
                assert_eq!(r.round as usize, i);
                assert_eq!(r.dst, (1 << i) % world);
                assert_eq!(r.src, (world - (1 << i) % world) % world);
            }
            // Every rank's schedule is the same shape (SPMD symmetry).
            for rank in 1..world {
                let rs = dissemination_schedule(rank, world);
                assert_eq!(rs.len(), rounds.len());
                for (i, r) in rs.iter().enumerate() {
                    assert_eq!((r.dst + world - rank) % world, rounds[i].dst % world);
                }
            }
        }
    }
}
