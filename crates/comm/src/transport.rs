//! Pluggable rank-to-rank transport: the [`Transport`] trait and the
//! in-process channel backend.
//!
//! The [`Fabric`](crate::world::Fabric) owns everything that makes the
//! communicator *correct* — per-pair sequence numbers, payload CRCs, fault
//! injection, traffic accounting, spans — and delegates the actual byte
//! movement to a boxed `Transport`. Two backends implement it:
//!
//! * [`ChannelTransport`] (here): ranks are threads in one process and a
//!   message hop is an `mpsc` send. The fast path for tests and the
//!   default for `launch`/`World`.
//! * [`SocketTransport`](crate::process::SocketTransport): ranks are
//!   separate OS processes and a hop is a CRC-framed write on a Unix
//!   domain socket — the backend that makes `kill -9` a real experiment
//!   rather than a simulation.
//!
//! Both backends speak in whole [`Msg`]s and surface failures as the same
//! typed [`CommError`]s, so the ring collectives, the fault matrix, and
//! the volume accounting built above the fabric are backend-agnostic.

use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::error::CommError;
use crate::protocol::{latch, Arrival, BarrierCore};

/// A message between two ranks: an opaque f32 payload, a per-channel
/// sequence number used to detect mismatched collective schedules, and a
/// payload checksum used to detect in-flight corruption.
///
/// The checksum is computed by the *sender's* fabric before any injected
/// corruption is applied and verified by the *receiver's* fabric, so it
/// must travel with the payload on every backend (in-process it rides the
/// struct; on the socket backend it is a field of the `Data` frame).
pub struct Msg {
    /// Position in the sender→receiver FIFO (per ordered pair).
    pub seq: u64,
    /// CRC-32 of `data` as the sender intended it.
    pub crc: u32,
    /// The payload.
    pub data: Vec<f32>,
}

/// One rank's view of the byte-moving layer under the fabric.
///
/// Implementations move whole [`Msg`]s between ranks and provide a world
/// barrier; they do not interpret payloads, count traffic, or inject
/// faults — that is the fabric's job. Every blocking entry point is
/// deadline-bounded and returns typed [`CommError`]s; none may panic on
/// peer failure.
pub trait Transport: Send {
    /// Delivers `msg` to `dst`'s incoming queue for this rank.
    fn send_msg(&mut self, dst: usize, msg: Msg) -> Result<(), CommError>;

    /// Next message from `src`, waiting at most `timeout`. A peer that is
    /// provably gone surfaces as [`CommError::PeerLost`]; one that is
    /// merely silent surfaces as [`CommError::Timeout`] after the full
    /// wait.
    fn recv_msg(&mut self, src: usize, timeout: Duration) -> Result<Msg, CommError>;

    /// Blocks until every rank reaches the barrier or `timeout` elapses
    /// with ranks missing ([`CommError::BarrierTimeout`]).
    fn barrier(&mut self, timeout: Duration) -> Result<(), CommError>;

    /// Parks the calling (progress) thread until `deadline`, returning
    /// early — with `true` — once the transport can prove no peer is
    /// still waiting on this rank (their endpoints are gone). Used by the
    /// `Hang` fault: the stall must outlive every peer's receive timeout,
    /// but holding the thread hostage after the last peer has shut down
    /// buys nothing, so the world's shutdown path can cancel it.
    fn wait_shutdown(&mut self, deadline: Instant) -> bool;
}

/// Recovers a mutex guard even if a holder panicked: the latch and
/// barrier states below are plain counters whose invariants are restored
/// by the waiters themselves, so poisoning carries no information here.
pub(crate) fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Counts live communicator handles in one in-process world, so a hung
/// rank's deadline wait can be cancelled once everyone else has shut
/// down (dropped their [`Communicator`](crate::Communicator)s) and no
/// peer can possibly still be blocked on the hung rank.
///
/// Public (not `pub(crate)`) so `zero-verify`'s conformance tests can
/// drive the real latch through the critical schedules its model
/// checker enumerates.
pub struct ShutdownLatch {
    live: Mutex<usize>,
    cv: Condvar,
}

impl ShutdownLatch {
    pub fn new(n: usize) -> Arc<ShutdownLatch> {
        Arc::new(ShutdownLatch { live: Mutex::new(n), cv: Condvar::new() })
    }

    /// Records one communicator handle going away.
    pub fn depart(&self) {
        let mut live = lock_unpoisoned(&self.live);
        latch::depart(&mut live);
        self.cv.notify_all();
    }

    /// Waits until at most one handle (the caller's own rank) remains or
    /// `deadline` passes; `true` means the wait was cancelled early.
    pub fn wait_sole_survivor(&self, deadline: Instant) -> bool {
        let mut live = lock_unpoisoned(&self.live);
        while !latch::sole_survivor(*live) {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timed_out) = match self.cv.wait_timeout(live, deadline - now) {
                Ok(x) => x,
                Err(poisoned) => poisoned.into_inner(),
            };
            live = guard;
        }
        true
    }
}

/// A reusable N-party barrier whose wait is bounded by a timeout, so a dead
/// rank strands survivors with a typed error instead of a deadlock.
/// (`std::sync::Barrier` has no timed wait.)
///
/// Public (not `pub(crate)`) so `zero-verify`'s conformance tests can
/// drive the real barrier through the critical schedules its model
/// checker enumerates.
pub struct TimeoutBarrier {
    state: Mutex<BarrierCore>,
    cv: Condvar,
}

impl TimeoutBarrier {
    pub fn new(n: usize) -> TimeoutBarrier {
        TimeoutBarrier { state: Mutex::new(BarrierCore::new(n)), cv: Condvar::new() }
    }

    /// Returns `true` if all `n` parties arrived within `timeout`.
    ///
    /// A party that times out *withdraws* its arrival before returning,
    /// so a later retry (or a later generation joined by fresh parties)
    /// starts from a clean count — the property the proptest below
    /// hammers on and `zero-verify --pass modelcheck` proves over every
    /// interleaving (the counter logic is the shared
    /// [`BarrierCore`](crate::protocol::BarrierCore)).
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut s = lock_unpoisoned(&self.state);
        let gen = match s.arrive() {
            Arrival::Released => {
                self.cv.notify_all();
                return true;
            }
            Arrival::MustWait { gen } => gen,
        };
        let deadline = Instant::now() + timeout;
        while !s.released(gen) {
            let now = Instant::now();
            if now >= deadline {
                // Withdraw our arrival so a later retry starts clean.
                s.withdraw();
                return false;
            }
            let (guard, _timed_out) = match self.cv.wait_timeout(s, deadline - now) {
                Ok(x) => x,
                Err(poisoned) => poisoned.into_inner(),
            };
            s = guard;
        }
        true
    }
}

/// The in-process backend: one `mpsc` FIFO per ordered rank pair, a shared
/// [`TimeoutBarrier`], and the world's [`ShutdownLatch`] for cancellable
/// hang waits. This is exactly the fabric the crate has always had, now
/// behind the trait.
pub(crate) struct ChannelTransport {
    rank: usize,
    to_peer: Vec<Sender<Msg>>,
    from_peer: Vec<Receiver<Msg>>,
    barrier: Arc<TimeoutBarrier>,
    latch: Arc<ShutdownLatch>,
}

impl ChannelTransport {
    pub(crate) fn new(
        rank: usize,
        to_peer: Vec<Sender<Msg>>,
        from_peer: Vec<Receiver<Msg>>,
        barrier: Arc<TimeoutBarrier>,
        latch: Arc<ShutdownLatch>,
    ) -> ChannelTransport {
        ChannelTransport { rank, to_peer, from_peer, barrier, latch }
    }
}

impl Transport for ChannelTransport {
    fn send_msg(&mut self, dst: usize, msg: Msg) -> Result<(), CommError> {
        self.to_peer[dst]
            .send(msg)
            .map_err(|_| CommError::PeerLost { rank: self.rank, peer: dst })
    }

    fn recv_msg(&mut self, src: usize, timeout: Duration) -> Result<Msg, CommError> {
        match self.from_peer[src].recv_timeout(timeout) {
            Ok(msg) => Ok(msg),
            Err(RecvTimeoutError::Timeout) => {
                Err(CommError::Timeout { rank: self.rank, peer: src, waited: timeout })
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(CommError::PeerLost { rank: self.rank, peer: src })
            }
        }
    }

    fn barrier(&mut self, timeout: Duration) -> Result<(), CommError> {
        if self.barrier.wait_timeout(timeout) {
            Ok(())
        } else {
            Err(CommError::BarrierTimeout { rank: self.rank, waited: timeout })
        }
    }

    fn wait_shutdown(&mut self, deadline: Instant) -> bool {
        self.latch.wait_sole_survivor(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn latch_cancels_when_peers_depart() {
        let latch = ShutdownLatch::new(3);
        let l2 = latch.clone();
        let t = std::thread::spawn(move || {
            l2.wait_sole_survivor(Instant::now() + Duration::from_secs(30))
        });
        std::thread::sleep(Duration::from_millis(20));
        latch.depart();
        latch.depart();
        // Far before the 30 s deadline.
        assert!(t.join().unwrap(), "wait must cancel once only one handle is left");
    }

    #[test]
    fn latch_times_out_while_peers_live() {
        let latch = ShutdownLatch::new(2);
        let t0 = Instant::now();
        assert!(!latch.wait_sole_survivor(t0 + Duration::from_millis(30)));
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn latch_zero_duration_deadline_returns_immediately() {
        // An already-expired deadline must not block at all: false while
        // peers are live, true the instant the latch is already drained.
        let latch = ShutdownLatch::new(3);
        let t0 = Instant::now();
        assert!(!latch.wait_sole_survivor(t0), "peers live: expired wait must fail fast");
        assert!(t0.elapsed() < Duration::from_millis(100));
        latch.depart();
        latch.depart();
        let t1 = Instant::now();
        assert!(latch.wait_sole_survivor(t1), "sole survivor: even an expired wait succeeds");
        assert!(t1.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn latch_shutdown_racing_the_deadline_never_hangs() {
        // Departures land exactly around deadline expiry; either verdict
        // is legal, but the waiter must return promptly and a cancelled
        // wait must really mean the peers were gone.
        for spin in 0..20 {
            let latch = ShutdownLatch::new(2);
            let l2 = latch.clone();
            let deadline = Instant::now() + Duration::from_millis(5);
            let waiter = std::thread::spawn(move || l2.wait_sole_survivor(deadline));
            if spin % 2 == 0 {
                std::thread::sleep(Duration::from_millis(5));
            }
            latch.depart();
            let cancelled = waiter.join().unwrap();
            if cancelled {
                assert!(
                    latch::sole_survivor(*lock_unpoisoned(&latch.live)),
                    "cancelled wait with peers still live"
                );
            }
        }
    }

    #[test]
    fn latch_double_shutdown_is_idempotent() {
        // More departs than the latch was built for must saturate at
        // zero, not underflow into a live count that strands the waiter.
        let latch = ShutdownLatch::new(2);
        latch.depart();
        latch.depart();
        latch.depart(); // double shutdown of the last handle
        assert!(latch.wait_sole_survivor(Instant::now() + Duration::from_secs(5)));
        assert_eq!(*lock_unpoisoned(&latch.live), 0);
    }

    /// Deterministic core of the withdraw-on-timeout property: `k < n`
    /// parties arrive and time out (each withdrawing its arrival), in
    /// `rounds` successive waves; afterwards a full complement of `n`
    /// parties must still pass the barrier unanimously — no stale arrival
    /// count and no generation skew may leak across the failed attempts.
    fn withdraw_then_full_round(n: usize, k: usize, rounds: usize, stagger_us: u64) {
        let b = Arc::new(TimeoutBarrier::new(n));
        for _ in 0..rounds {
            let partial: Vec<_> = (0..k)
                .map(|i| {
                    let b = b.clone();
                    std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_micros(stagger_us * i as u64));
                        b.wait_timeout(Duration::from_millis(10))
                    })
                })
                .collect();
            for t in partial {
                assert!(!t.join().unwrap(), "a short-handed wave must time out");
            }
        }
        // The decisive wave: every party arrives, with generous timeout.
        let full: Vec<_> = (0..n)
            .map(|i| {
                let b = b.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_micros(stagger_us * i as u64));
                    b.wait_timeout(Duration::from_secs(10))
                })
            })
            .collect();
        for t in full {
            assert!(t.join().unwrap(), "a full wave after withdrawals must pass");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Satellite: a party that times out of the barrier and retries
        /// later must never corrupt a subsequent generation.
        #[test]
        fn timed_out_party_does_not_corrupt_later_generations(
            n in 2usize..6,
            k_frac in 1usize..100,
            rounds in 1usize..4,
            stagger_us in 0u64..300,
        ) {
            // Map k_frac onto 1..n so every (n, k<n) pair is reachable.
            let k = 1 + k_frac % (n - 1);
            withdraw_then_full_round(n, k, rounds, stagger_us);
        }
    }

    #[test]
    fn retrying_party_joins_next_generation_cleanly() {
        // One party times out of a generation, then retries while the
        // stragglers from that generation finally arrive: the retry plus
        // the stragglers form a complete wave and everyone passes.
        let n = 3;
        let b = Arc::new(TimeoutBarrier::new(n));
        let retrier = {
            let b = b.clone();
            std::thread::spawn(move || {
                let first = b.wait_timeout(Duration::from_millis(20));
                let second = b.wait_timeout(Duration::from_secs(10));
                (first, second)
            })
        };
        // Let the retrier's first attempt expire before anyone else shows.
        std::thread::sleep(Duration::from_millis(60));
        let late: Vec<_> = (0..n - 1)
            .map(|_| {
                let b = b.clone();
                std::thread::spawn(move || b.wait_timeout(Duration::from_secs(10)))
            })
            .collect();
        let (first, second) = retrier.join().unwrap();
        assert!(!first, "short-handed first attempt must time out");
        assert!(second, "retry must succeed once the wave completes");
        for t in late {
            assert!(t.join().unwrap());
        }
    }
}
