//! Processes-over-sockets transport: the "real cluster" backend.
//!
//! Where [`crate::world::World`] hosts every rank as a thread inside one
//! process, this backend gives each rank its own OS process and moves
//! payloads over Unix domain sockets using the length-prefixed, CRC-framed
//! protocol of [`crate::wire`]. A rank here can genuinely die — `kill -9`
//! severs its sockets mid-frame — so supervisor recovery is exercised
//! against real process death rather than a cooperative simulation.
//!
//! Hardening, in the shape a production fabric needs:
//!
//! - **Mesh handshake with capped exponential backoff.** Rank `r` binds
//!   `rank-r.sock` in the shared fabric directory, dials every lower rank
//!   (retrying while those peers are still being spawned), then accepts
//!   from every higher rank. Both directions exchange `Hello` frames
//!   carrying a per-run token, so a stale process left over from a
//!   previous incarnation of the job can never splice into the mesh.
//! - **Deadline-bounded reads** mapped onto the same typed [`CommError`]s
//!   the in-process backend returns: a missing message is
//!   [`CommError::Timeout`], a severed peer is [`CommError::PeerLost`].
//! - **Heartbeat liveness.** Every link is beaten at `heartbeat_interval`
//!   by a thread independent of the progress thread; a peer silent for
//!   `liveness_timeout` is declared lost without waiting out the full
//!   `recv_timeout`. A *hung* peer keeps heartbeating, so hangs still
//!   surface as `Timeout` — fault semantics stay backend-identical.
//! - **Orphan reaping.** [`RankProcs`] owns the spawned children and
//!   kills + reaps every survivor on drop, so no run leaks processes.
//!
//! Traffic accounting note: heartbeat and barrier frames are transport
//! chatter, not collective payload, and are deliberately *not* recorded
//! in [`TrafficStats`] — measured per-kind volumes therefore match the
//! channel backend (and the paper's §7 analysis) byte for byte.

use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use zero_trace::TraceRecorder;

use crate::error::CommError;
use crate::fault::FaultPlan;
use crate::protocol;
use crate::stats::TrafficStats;
use crate::transport::{lock_unpoisoned, Msg, ShutdownLatch, Transport};
use crate::wire::{self, Frame};
use crate::world::{Communicator, WorldConfig};

/// How often blocked receives wake to re-check liveness and deadlines.
const RECV_TICK: Duration = Duration::from_millis(20);

/// Read-timeout granularity of the per-peer reader threads; bounds how
/// long transport shutdown can take.
const READ_TICK: Duration = Duration::from_millis(25);

/// Everything a rank process needs to join (or host) a process world.
///
/// The same value — minus `dir`-relative concerns — must be given to every
/// rank: `world`, `token`, and the timing parameters are part of the mesh
/// contract, and the handshake rejects peers that disagree on them.
#[derive(Clone, Debug)]
pub struct ProcessWorldConfig {
    /// Directory holding the per-rank socket files (`rank-{r}.sock`).
    pub dir: PathBuf,
    /// Number of ranks in the mesh.
    pub world: usize,
    /// Per-run nonce; `Hello` frames carrying a different token are
    /// rejected, fencing off stale processes from earlier incarnations.
    pub token: u64,
    /// Upper bound on any single blocking receive (mirrors
    /// [`WorldConfig::recv_timeout`]).
    pub recv_timeout: Duration,
    /// Modeled per-hop latency (mirrors [`WorldConfig::link_latency`]).
    pub link_latency: Duration,
    /// Deterministic fault script, identical in meaning to the channel
    /// backend's: each rank consults only its own entries.
    pub faults: FaultPlan,
    /// Interval between heartbeat frames on every link.
    pub heartbeat_interval: Duration,
    /// A peer from which *nothing* (data, barrier, or heartbeat) has been
    /// heard for this long is declared [`CommError::PeerLost`].
    pub liveness_timeout: Duration,
    /// Wall-clock budget for the whole mesh handshake (bind + dial all
    /// lower ranks + accept all higher ranks).
    pub handshake_timeout: Duration,
    /// Initial retry delay when dialing a peer that has not bound its
    /// socket yet; doubles per attempt up to [`Self::connect_backoff_cap`].
    pub connect_backoff_start: Duration,
    /// Ceiling on the dial retry delay.
    pub connect_backoff_cap: Duration,
}

impl ProcessWorldConfig {
    /// Defaults tuned like [`WorldConfig::default`]: generous receive
    /// timeout, sub-second liveness, and a handshake budget long enough
    /// to ride out slow process spawns on a loaded CI machine.
    pub fn new(dir: impl Into<PathBuf>, world: usize) -> ProcessWorldConfig {
        ProcessWorldConfig {
            dir: dir.into(),
            world,
            token: 0,
            recv_timeout: Duration::from_secs(30),
            link_latency: Duration::ZERO,
            faults: FaultPlan::new(),
            heartbeat_interval: Duration::from_millis(25),
            liveness_timeout: Duration::from_secs(1),
            handshake_timeout: Duration::from_secs(20),
            connect_backoff_start: Duration::from_millis(1),
            connect_backoff_cap: Duration::from_millis(50),
        }
    }

    fn sock_path(&self, rank: usize) -> PathBuf {
        self.dir.join(format!("rank-{rank}.sock"))
    }
}

/// Returns a token suitable for [`ProcessWorldConfig::token`]: unique per
/// (process, call) with high probability, so two runs sharing a fabric
/// directory cannot cross-connect.
pub fn fresh_token() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    nanos ^ ((std::process::id() as u64) << 32) ^ COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed)
}

/// Joins the process mesh as `rank` and returns a fully wired
/// [`Communicator`] whose progress thread speaks the socket transport.
///
/// Blocks until the handshake with all `cfg.world - 1` peers completes or
/// `cfg.handshake_timeout` expires. The returned handle is
/// indistinguishable from a channel-backend one: same collectives, same
/// typed errors, same stats and trace surfaces.
pub fn connect_process_rank(
    rank: usize,
    cfg: &ProcessWorldConfig,
) -> Result<Communicator, CommError> {
    let link = SocketTransport::connect(rank, cfg)?;
    let stats = TrafficStats::new();
    let trace = Arc::new(TraceRecorder::new());
    let wcfg = WorldConfig {
        recv_timeout: cfg.recv_timeout,
        faults: cfg.faults.clone(),
        link_latency: cfg.link_latency,
        tiered_link: None,
        // Tier-move delays for process ranks are priced by the caller
        // (the engine models them from its own `TierConfig`).
        tier_throttle: None,
    };
    // The latch only matters to the channel backend (it counts sibling
    // threads in one process); a process rank has no in-process siblings,
    // so a singleton latch is correct and `wait_shutdown` relies on peer
    // liveness instead.
    let latch = ShutdownLatch::new(1);
    Ok(Communicator::spawn(
        rank,
        cfg.world,
        Box::new(link),
        stats,
        trace,
        &wcfg,
        latch,
    ))
}

/// Per-peer liveness ledger shared between the reader thread (which
/// stamps it) and the transport (which judges it).
struct PeerHealth {
    /// Milliseconds since the transport epoch of the last frame — of any
    /// kind — received from this peer.
    last_seen_ms: AtomicU64,
    /// Cleared by the reader on EOF / protocol error, and by writers on
    /// a severed socket.
    alive: AtomicBool,
}

impl PeerHealth {
    fn new() -> Arc<PeerHealth> {
        Arc::new(PeerHealth {
            last_seen_ms: AtomicU64::new(0),
            alive: AtomicBool::new(true),
        })
    }

    fn touch(&self, epoch: Instant) {
        let ms = epoch.elapsed().as_millis() as u64;
        self.last_seen_ms.store(ms, Ordering::Relaxed);
    }

    fn mark_dead(&self) {
        self.alive.store(false, Ordering::Relaxed);
    }

    /// True once the peer is known-dead or has been silent past the
    /// liveness window.
    fn lost(&self, epoch: Instant, liveness: Duration) -> bool {
        if !self.alive.load(Ordering::Relaxed) {
            return true;
        }
        let seen = Duration::from_millis(self.last_seen_ms.load(Ordering::Relaxed));
        epoch.elapsed().saturating_sub(seen) > liveness
    }
}

/// One fully-established link to a peer rank.
struct PeerLink {
    /// Write half, shared with the heartbeat thread.
    writer: Arc<Mutex<UnixStream>>,
    /// Data frames, demultiplexed by the reader thread.
    data_rx: Receiver<Msg>,
    /// Barrier frames `(generation, round)`, same reader.
    barrier_rx: Receiver<(u64, u32)>,
    health: Arc<PeerHealth>,
}

/// [`Transport`] implementation where every peer is another OS process on
/// the far side of a Unix domain socket.
pub struct SocketTransport {
    rank: usize,
    world: usize,
    epoch: Instant,
    liveness_timeout: Duration,
    /// `None` at `self.rank`.
    links: Vec<Option<PeerLink>>,
    barrier_generation: u64,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Raw socket handles kept so drop can `shutdown(2)` them and unblock
    /// reader threads immediately.
    sockets: Vec<UnixStream>,
    own_sock: PathBuf,
}

impl SocketTransport {
    /// Binds this rank's socket, dials lower ranks with capped exponential
    /// backoff, accepts higher ranks, and validates `Hello` tokens in both
    /// directions. See the module docs for the full protocol.
    pub fn connect(rank: usize, cfg: &ProcessWorldConfig) -> Result<SocketTransport, CommError> {
        assert!(
            rank < cfg.world && cfg.world >= 1,
            "rank {rank} outside world of {}",
            cfg.world
        );
        let deadline = Instant::now() + cfg.handshake_timeout;
        let own_sock = cfg.sock_path(rank);
        // A stale file from a previous incarnation would make bind fail;
        // the per-run token protects against the matching stale process.
        let _ = std::fs::remove_file(&own_sock);
        let listener = UnixListener::bind(&own_sock)
            .map_err(|_| CommError::PeerLost { rank, peer: rank })?;

        // Per-peer (stream, residue): bytes a handshake read past its
        // Hello frame — possibly a partial heartbeat or even a first data
        // frame from a peer whose mesh completed early — which must seed
        // the reader's accumulator or the stream desynchronizes.
        let mut streams: Vec<Option<(UnixStream, Vec<u8>)>> =
            (0..cfg.world).map(|_| None).collect();
        // Dial every lower rank; they bound their listeners before (or
        // while) we spawned, and a socket backlog absorbs our connect even
        // if they are still dialing their own lower peers.
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let stream = dial_with_backoff(&cfg.sock_path(peer), cfg, rank, peer, deadline)?;
            let residue = handshake(&stream, cfg, rank, peer, deadline)?;
            *slot = Some((stream, residue));
        }
        // Accept every higher rank; identity comes from its Hello frame.
        let mut expected = cfg.world - 1 - rank;
        listener
            .set_nonblocking(true)
            .map_err(|_| CommError::PeerLost { rank, peer: rank })?;
        while expected > 0 {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let _ = stream.set_nonblocking(false);
                    if let Some((peer, residue)) = accept_handshake(&stream, cfg, rank, deadline) {
                        if peer > rank && peer < cfg.world && streams[peer].is_none() {
                            streams[peer] = Some((stream, residue));
                            expected -= 1;
                        }
                        // A duplicate or out-of-range claim is dropped on
                        // the floor; the real peer can still arrive.
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        let peer = (rank + 1..cfg.world)
                            .find(|p| streams[*p].is_none())
                            .unwrap_or(rank);
                        return Err(CommError::Timeout {
                            rank,
                            peer,
                            waited: cfg.handshake_timeout,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => return Err(CommError::PeerLost { rank, peer: rank }),
            }
        }

        let epoch = Instant::now();
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut links: Vec<Option<PeerLink>> = Vec::with_capacity(cfg.world);
        let mut threads = Vec::new();
        let mut sockets = Vec::new();
        let mut beat_targets: Vec<(Arc<Mutex<UnixStream>>, Arc<PeerHealth>)> = Vec::new();
        for (peer, slot) in streams.into_iter().enumerate() {
            let Some((stream, residue)) = slot else {
                links.push(None);
                continue;
            };
            let reader = stream
                .try_clone()
                .map_err(|_| CommError::PeerLost { rank, peer })?;
            let _ = reader.set_read_timeout(Some(READ_TICK));
            let _ = stream.set_write_timeout(Some(cfg.liveness_timeout));
            sockets.push(
                stream
                    .try_clone()
                    .map_err(|_| CommError::PeerLost { rank, peer })?,
            );
            let health = PeerHealth::new();
            health.touch(epoch);
            let (data_tx, data_rx) = channel();
            let (barrier_tx, barrier_rx) = channel();
            let writer = Arc::new(Mutex::new(stream));
            beat_targets.push((writer.clone(), health.clone()));
            let reader_health = health.clone();
            let reader_stop = shutdown.clone();
            threads.push(std::thread::spawn(move || {
                reader_loop(
                    reader,
                    residue,
                    data_tx,
                    barrier_tx,
                    reader_health,
                    reader_stop,
                    epoch,
                );
            }));
            links.push(Some(PeerLink {
                writer,
                data_rx,
                barrier_rx,
                health,
            }));
        }
        debug_assert_eq!(links.len(), cfg.world);

        let beat_stop = shutdown.clone();
        let beat_interval = cfg.heartbeat_interval;
        threads.push(std::thread::spawn(move || {
            heartbeat_loop(beat_targets, beat_interval, beat_stop);
        }));

        Ok(SocketTransport {
            rank,
            world: cfg.world,
            epoch,
            liveness_timeout: cfg.liveness_timeout,
            links,
            barrier_generation: 0,
            shutdown,
            threads,
            sockets,
            own_sock,
        })
    }

    fn link(&self, peer: usize) -> Result<&PeerLink, CommError> {
        match self.links.get(peer).and_then(|l| l.as_ref()) {
            Some(link) => Ok(link),
            None => Err(CommError::PeerLost {
                rank: self.rank,
                peer,
            }),
        }
    }

    /// Writes one pre-encoded frame to `peer`, holding the writer lock for
    /// the duration so heartbeat and data frames never interleave bytes.
    fn write_frame(&self, peer: usize, frame: &[u8]) -> Result<(), CommError> {
        let link = self.link(peer)?;
        let mut stream = lock_unpoisoned(&link.writer);
        match stream.write_all(frame).and_then(|()| stream.flush()) {
            Ok(()) => Ok(()),
            Err(_) => {
                link.health.mark_dead();
                Err(CommError::PeerLost {
                    rank: self.rank,
                    peer,
                })
            }
        }
    }
}

impl Transport for SocketTransport {
    fn send_msg(&mut self, dst: usize, msg: Msg) -> Result<(), CommError> {
        let frame = wire::encode_data(msg.seq, msg.crc, &msg.data);
        self.write_frame(dst, &frame)
    }

    fn recv_msg(&mut self, src: usize, timeout: Duration) -> Result<Msg, CommError> {
        let deadline = Instant::now() + timeout;
        let link = self.link(src)?;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout {
                    rank: self.rank,
                    peer: src,
                    waited: timeout,
                });
            }
            let tick = RECV_TICK.min(deadline - now);
            match link.data_rx.recv_timeout(tick) {
                Ok(msg) => return Ok(msg),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::PeerLost {
                        rank: self.rank,
                        peer: src,
                    });
                }
                Err(RecvTimeoutError::Timeout) => {
                    // Heartbeats keep `last_seen` fresh for a peer that is
                    // alive but slow; only a genuinely silent peer trips
                    // this before the full receive timeout elapses.
                    if link.health.lost(self.epoch, self.liveness_timeout) {
                        return Err(CommError::PeerLost {
                            rank: self.rank,
                            peer: src,
                        });
                    }
                }
            }
        }
    }

    fn barrier(&mut self, timeout: Duration) -> Result<(), CommError> {
        let generation = self.barrier_generation;
        self.barrier_generation += 1;
        if self.world == 1 {
            return Ok(());
        }
        let start = Instant::now();
        let deadline = start + timeout;
        let timed_out = |rank: usize| CommError::BarrierTimeout {
            rank,
            waited: timeout,
        };
        // Dissemination barrier: round r sends to rank + 2^r and waits on
        // rank - 2^r, completing in ceil(log2(world)) rounds. The peer
        // schedule is the shared pure kernel the model checker explores
        // (`protocol::dissemination_schedule`); offsets are distinct per
        // round, so within one generation each ordered pair carries at
        // most one frame and per-link FIFO keeps rounds in order. Frames
        // are transport chatter and skip TrafficStats.
        for step in protocol::dissemination_schedule(self.rank, self.world) {
            let (dst, src, round) = (step.dst, step.src, step.round);
            let frame = wire::encode_barrier(generation, round);
            // A severed peer means the barrier can never complete; report
            // it the way the channel backend reports an unfilled barrier.
            if self.write_frame(dst, &frame).is_err() {
                return Err(timed_out(self.rank));
            }
            let link = self.link(src)?;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    return Err(timed_out(self.rank));
                }
                let tick = RECV_TICK.min(deadline - now);
                match link.barrier_rx.recv_timeout(tick) {
                    Ok((gen, r)) if gen == generation && r == round => break,
                    Ok((gen, _r)) => {
                        // Per-link FIFO makes a mismatch a schedule
                        // divergence (SPMD bug), exactly what OutOfOrder
                        // means on the data path.
                        return Err(CommError::OutOfOrder {
                            rank: self.rank,
                            peer: src,
                            got: gen,
                            expected: generation,
                        });
                    }
                    Err(RecvTimeoutError::Disconnected) => return Err(timed_out(self.rank)),
                    Err(RecvTimeoutError::Timeout) => {
                        if link.health.lost(self.epoch, self.liveness_timeout) {
                            return Err(timed_out(self.rank));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn wait_shutdown(&mut self, deadline: Instant) -> bool {
        // A hung process rank is released once every peer has given up on
        // it (timed out, errored, exited): their exits sever the sockets,
        // the readers mark the links dead, and this wait completes well
        // before the worst-case deadline.
        loop {
            let all_gone = self
                .links
                .iter()
                .flatten()
                .all(|l| l.health.lost(self.epoch, self.liveness_timeout));
            if all_gone {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(RECV_TICK);
        }
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        // Severing the sockets unblocks reader threads immediately and
        // tells every peer — via EOF — that this rank is gone, the same
        // signal a killed process would have produced.
        for sock in &self.sockets {
            let _ = sock.shutdown(std::net::Shutdown::Both);
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.own_sock);
    }
}

/// Dials `path` until it connects, the deadline passes, or the world ends;
/// sleeps with exponential backoff capped at `connect_backoff_cap`.
fn dial_with_backoff(
    path: &Path,
    cfg: &ProcessWorldConfig,
    rank: usize,
    peer: usize,
    deadline: Instant,
) -> Result<UnixStream, CommError> {
    let mut backoff = cfg.connect_backoff_start.max(Duration::from_micros(100));
    loop {
        match UnixStream::connect(path) {
            Ok(stream) => return Ok(stream),
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(backoff.min(deadline.saturating_duration_since(Instant::now())));
                backoff = (backoff * 2).min(cfg.connect_backoff_cap);
            }
            Err(_) => {
                return Err(CommError::Timeout {
                    rank,
                    peer,
                    waited: cfg.handshake_timeout,
                });
            }
        }
    }
}

/// Connector-side handshake: send our `Hello`, then require the peer's
/// matching `Hello` back before the link counts as established.
fn handshake(
    stream: &UnixStream,
    cfg: &ProcessWorldConfig,
    rank: usize,
    peer: usize,
    deadline: Instant,
) -> Result<Vec<u8>, CommError> {
    let hello = wire::encode_hello(cfg.world as u32, rank as u32, cfg.token);
    let mut w = stream;
    if w.write_all(&hello).is_err() {
        return Err(CommError::PeerLost { rank, peer });
    }
    match read_hello(stream, deadline) {
        Some(((world, claimed, token), residue))
            if world as usize == cfg.world && token == cfg.token && claimed as usize == peer =>
        {
            Ok(residue)
        }
        _ => Err(CommError::PeerLost { rank, peer }),
    }
}

/// Acceptor-side handshake: read the connector's `Hello`, validate it, and
/// answer with our own. Returns the claimed peer rank, or `None` to reject.
fn accept_handshake(
    stream: &UnixStream,
    cfg: &ProcessWorldConfig,
    rank: usize,
    deadline: Instant,
) -> Option<(usize, Vec<u8>)> {
    let ((world, claimed, token), residue) = read_hello(stream, deadline)?;
    if world as usize != cfg.world || token != cfg.token {
        return None;
    }
    let reply = wire::encode_hello(cfg.world as u32, rank as u32, cfg.token);
    let mut w = stream;
    w.write_all(&reply).ok()?;
    Some((claimed as usize, residue))
}

/// Reads exactly one `Hello` frame off `stream` before `deadline`.
///
/// Returns the decoded fields **and any bytes read past the frame's end**:
/// a peer whose mesh completed early may already be heartbeating — or even
/// sending data — on this link, and a `read` can return its Hello plus the
/// head of the next frame in one chunk. Discarding that residue would
/// desynchronize the stream for the reader thread (observed in the kill -9
/// smoke as every surviving rank reporting a spurious `PeerLost`).
fn read_hello(stream: &UnixStream, deadline: Instant) -> Option<((u32, u32, u64), Vec<u8>)> {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 256];
    let mut r = stream;
    loop {
        match wire::decode_frame(&acc) {
            Ok(Some((Frame::Hello { world, rank, token }, used))) => {
                acc.drain(..used);
                return Some(((world, rank, token), acc));
            }
            Ok(Some(_)) | Err(_) => return None,
            Ok(None) => {}
        }
        if Instant::now() >= deadline {
            return None;
        }
        match r.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => acc.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => return None,
        }
    }
}

/// Per-peer reader: drains the socket into the frame decoder, stamps
/// liveness on every frame, and demultiplexes data vs barrier traffic.
/// Exits — dropping its channel senders, which peers observe as
/// `PeerLost` — on EOF, protocol error, or transport shutdown.
fn reader_loop(
    mut stream: UnixStream,
    residue: Vec<u8>,
    data_tx: Sender<Msg>,
    barrier_tx: Sender<(u64, u32)>,
    health: Arc<PeerHealth>,
    stop: Arc<AtomicBool>,
    epoch: Instant,
) {
    // Seed the decoder with bytes the handshake read past its Hello frame.
    let mut acc: Vec<u8> = residue;
    let mut chunk = [0u8; 64 * 1024];
    'outer: while !stop.load(Ordering::Relaxed) {
        loop {
            match wire::decode_frame(&acc) {
                Ok(Some((frame, used))) => {
                    acc.drain(..used);
                    health.touch(epoch);
                    let delivered = match frame {
                        Frame::Data {
                            seq,
                            payload_crc,
                            payload,
                        } => data_tx
                            .send(Msg {
                                seq,
                                crc: payload_crc,
                                data: payload,
                            })
                            .is_ok(),
                        Frame::Barrier { generation, round } => {
                            barrier_tx.send((generation, round)).is_ok()
                        }
                        Frame::Heartbeat => true,
                        // A Hello after the handshake is a protocol
                        // violation; treat the link as gone.
                        Frame::Hello { .. } => break 'outer,
                    };
                    if !delivered {
                        // The transport dropped its receivers: shutdown.
                        break 'outer;
                    }
                }
                Ok(None) => break,
                // Framing damage is unrecoverable on a byte stream — a
                // bad length prefix desynchronizes everything after it.
                Err(_) => break 'outer,
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => acc.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    health.mark_dead();
}

/// Beats every link at `interval` until shutdown. Runs on its own thread
/// so a hung progress thread keeps proving the process is alive — hangs
/// must surface as `Timeout`, not `PeerLost`, on both backends.
fn heartbeat_loop(
    targets: Vec<(Arc<Mutex<UnixStream>>, Arc<PeerHealth>)>,
    interval: Duration,
    stop: Arc<AtomicBool>,
) {
    let beat = wire::encode_heartbeat();
    while !stop.load(Ordering::Relaxed) {
        for (writer, health) in &targets {
            if !health.alive.load(Ordering::Relaxed) {
                continue;
            }
            let mut stream = lock_unpoisoned(writer);
            if stream.write_all(&beat).is_err() {
                health.mark_dead();
            }
        }
        // Sleep in short slices so transport drop never waits a full
        // (possibly test-inflated) interval to join this thread.
        let wake = Instant::now() + interval;
        while Instant::now() < wake && !stop.load(Ordering::Relaxed) {
            std::thread::sleep(READ_TICK.min(interval));
        }
    }
}

/// Child-process guard for a spawned rank fleet: owns every [`Child`],
/// offers targeted `SIGKILL` for fault injection, and — the part that
/// keeps CI honest — kills and reaps every survivor on drop, so no code
/// path (including panics) can leak orphan rank processes.
pub struct RankProcs {
    slots: Vec<Slot>,
}

enum Slot {
    Running(Child),
    Done(ExitStatus),
}

impl RankProcs {
    /// Spawns one child per command, rank r taking `cmds[r]`. If any spawn
    /// fails, the already-started children are killed and reaped before
    /// the error is returned.
    pub fn spawn(cmds: Vec<Command>) -> std::io::Result<RankProcs> {
        let mut slots = Vec::with_capacity(cmds.len());
        for mut cmd in cmds {
            match cmd.spawn() {
                Ok(child) => slots.push(Slot::Running(child)),
                Err(e) => {
                    for slot in &mut slots {
                        if let Slot::Running(child) = slot {
                            let _ = child.kill();
                            let _ = child.wait();
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(RankProcs { slots })
    }

    /// Number of ranks (running or exited) under guard.
    pub fn world(&self) -> usize {
        self.slots.len()
    }

    /// OS pid of `rank`, or `None` once it has been reaped.
    pub fn pid(&self, rank: usize) -> Option<u32> {
        match self.slots.get(rank) {
            Some(Slot::Running(child)) => Some(child.id()),
            _ => None,
        }
    }

    /// Sends `SIGKILL` to `rank` (best effort; false if already reaped).
    /// The corpse is reaped by the next [`Self::poll`] / [`Self::wait_all`].
    pub fn kill(&mut self, rank: usize) -> bool {
        match self.slots.get_mut(rank) {
            Some(Slot::Running(child)) => child.kill().is_ok(),
            _ => false,
        }
    }

    /// Reaps every exited child without blocking; returns how many are
    /// still running.
    pub fn poll(&mut self) -> usize {
        let mut running = 0;
        for slot in &mut self.slots {
            if let Slot::Running(child) = slot {
                match child.try_wait() {
                    Ok(Some(status)) => *slot = Slot::Done(status),
                    Ok(None) => running += 1,
                    // An errored wait means the child is unreapable by us;
                    // count it running so wait_all keeps trying.
                    Err(_) => running += 1,
                }
            }
        }
        running
    }

    /// Exit status of `rank`, once reaped.
    pub fn status(&self, rank: usize) -> Option<ExitStatus> {
        match self.slots.get(rank) {
            Some(Slot::Done(status)) => Some(*status),
            _ => None,
        }
    }

    /// Waits (polling) for every child to exit on its own. Children still
    /// running at `deadline` are killed and reaped; returns true iff none
    /// needed killing.
    pub fn wait_all(&mut self, deadline: Instant) -> bool {
        loop {
            if self.poll() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for slot in &mut self.slots {
            if let Slot::Running(child) = slot {
                let _ = child.kill();
                if let Ok(status) = child.wait() {
                    *slot = Slot::Done(status);
                }
            }
        }
        false
    }

    /// True if `rank` was reaped after dying to a signal (e.g. `SIGKILL`).
    pub fn died_of_signal(&self, rank: usize) -> bool {
        #[cfg(unix)]
        {
            use std::os::unix::process::ExitStatusExt;
            matches!(
                self.slots.get(rank),
                Some(Slot::Done(status)) if status.signal().is_some()
            )
        }
        #[cfg(not(unix))]
        {
            let _ = rank;
            false
        }
    }
}

impl Drop for RankProcs {
    fn drop(&mut self) {
        for slot in &mut self.slots {
            if let Slot::Running(child) = slot {
                let _ = child.kill();
                if let Ok(status) = child.wait() {
                    *slot = Slot::Done(status);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Precision, ReduceOp};
    use std::sync::atomic::AtomicUsize;

    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "zero-fabric-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create fabric scratch dir");
        dir
    }

    fn quick_cfg(dir: &Path, world: usize) -> ProcessWorldConfig {
        let mut cfg = ProcessWorldConfig::new(dir, world);
        cfg.token = fresh_token();
        cfg.recv_timeout = Duration::from_secs(5);
        cfg.handshake_timeout = Duration::from_secs(5);
        cfg
    }

    /// Hosts each rank of a socket mesh on a thread of this process —
    /// the transport neither knows nor cares that the "processes" share
    /// an address space, and tests get cheap full-mesh coverage.
    fn run_mesh<T, F>(world: usize, cfg: &ProcessWorldConfig, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Communicator) -> T + Clone + Send + 'static,
    {
        let handles: Vec<_> = (0..world)
            .map(|rank| {
                let cfg = cfg.clone();
                let f = f.clone();
                std::thread::spawn(move || {
                    let comm = connect_process_rank(rank, &cfg).expect("handshake");
                    f(comm)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("mesh rank panicked"))
            .collect()
    }

    #[test]
    fn socket_mesh_all_reduce_matches_expected_sum() {
        let dir = scratch_dir("allreduce");
        let cfg = quick_cfg(&dir, 3);
        let outs = run_mesh(3, &cfg, |mut comm| {
            let mut buf = vec![comm.rank() as f32 + 1.0; 8];
            comm.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp32)
                .expect("all_reduce over sockets");
            buf[0]
        });
        assert_eq!(outs, vec![6.0; 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn socket_barrier_and_p2p_round_trip() {
        let dir = scratch_dir("p2p");
        let cfg = quick_cfg(&dir, 2);
        let outs = run_mesh(2, &cfg, |mut comm| {
            comm.barrier().expect("barrier");
            if comm.rank() == 0 {
                comm.send(1, &[1.5, -2.5]).expect("send");
                0.0
            } else {
                let mut buf = [0.0f32; 2];
                comm.recv(0, &mut buf).expect("recv");
                buf[0] + buf[1]
            }
        });
        assert_eq!(outs[1], -1.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handshake_times_out_when_peer_never_arrives() {
        let dir = scratch_dir("lonely");
        let mut cfg = quick_cfg(&dir, 2);
        cfg.handshake_timeout = Duration::from_millis(200);
        let err = match connect_process_rank(0, &cfg) {
            Err(e) => e,
            Ok(_) => panic!("handshake should not complete without rank 1"),
        };
        assert!(
            matches!(err, CommError::Timeout { rank: 0, peer: 1, .. }),
            "got {err:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn handshake_rejects_wrong_token() {
        let dir = scratch_dir("token");
        let mut cfg = quick_cfg(&dir, 2);
        cfg.handshake_timeout = Duration::from_millis(400);
        let acceptor_cfg = cfg.clone();
        let acceptor =
            std::thread::spawn(move || connect_process_rank(0, &acceptor_cfg).map(|_| ()));
        // Dial rank 0 claiming to be rank 1, but with the wrong token: the
        // acceptor must hold out for a legitimate peer and time out.
        let path = cfg.sock_path(0);
        let deadline = Instant::now() + cfg.handshake_timeout;
        let stream = dial_with_backoff(&path, &cfg, 1, 0, deadline).expect("dial acceptor");
        let mut w = &stream;
        w.write_all(&wire::encode_hello(2, 1, cfg.token ^ 0xBAD))
            .expect("send forged hello");
        let joined = acceptor.join().expect("acceptor thread");
        assert!(
            matches!(joined, Err(CommError::Timeout { .. })),
            "forged hello must not complete the mesh: {joined:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn severed_peer_surfaces_as_peer_lost_long_before_recv_timeout() {
        let dir = scratch_dir("severed");
        let mut cfg = quick_cfg(&dir, 2);
        cfg.recv_timeout = Duration::from_secs(30);
        let outs = run_mesh(2, &cfg, |mut comm| {
            if comm.rank() == 1 {
                // Rank 1 exits immediately; its transport drop severs the
                // socket exactly as a killed process would.
                return Ok(());
            }
            let started = Instant::now();
            let mut buf = [0.0f32; 4];
            let res = comm.recv(1, &mut buf);
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "severed peer took the full recv_timeout to surface"
            );
            res
        });
        assert!(
            matches!(outs[0], Err(CommError::PeerLost { rank: 0, peer: 1 })),
            "got {:?}",
            outs[0]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mute_but_connected_peer_trips_heartbeat_liveness() {
        let dir = scratch_dir("mute");
        let mut cfg = quick_cfg(&dir, 2);
        cfg.recv_timeout = Duration::from_secs(30);
        cfg.liveness_timeout = Duration::from_millis(250);
        // Rank 1 beats so rarely it is indistinguishable from a stopped
        // process; rank 0's liveness window must declare it lost without
        // waiting out the 30s receive timeout.
        let mute = {
            let mut c = cfg.clone();
            c.heartbeat_interval = Duration::from_secs(3600);
            c
        };
        let cfg0 = cfg.clone();
        let r0 = std::thread::spawn(move || {
            let mut comm = connect_process_rank(0, &cfg0).expect("rank 0 handshake");
            let started = Instant::now();
            let mut buf = [0.0f32; 4];
            let res = comm.recv(1, &mut buf);
            (res, started.elapsed())
        });
        let r1 = std::thread::spawn(move || {
            let comm = connect_process_rank(1, &mute).expect("rank 1 handshake");
            // Hold the transport open, silently, past rank 0's verdict.
            std::thread::sleep(Duration::from_secs(2));
            drop(comm);
        });
        let (res, elapsed) = r0.join().expect("rank 0 thread");
        r1.join().expect("rank 1 thread");
        assert!(
            matches!(res, Err(CommError::PeerLost { rank: 0, peer: 1 })),
            "got {res:?}"
        );
        assert!(
            elapsed < Duration::from_secs(5),
            "liveness took {elapsed:?}, should beat recv_timeout by a wide margin"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rank_procs_reaps_on_drop() {
        let mut cmds = Vec::new();
        for _ in 0..2 {
            let mut cmd = Command::new("sleep");
            cmd.arg("600");
            cmds.push(cmd);
        }
        let procs = RankProcs::spawn(cmds).expect("spawn sleepers");
        let pids: Vec<u32> = (0..2).map(|r| procs.pid(r).expect("pid")).collect();
        drop(procs);
        for pid in pids {
            // After kill + wait the pid must be gone (or at worst a zombie
            // owned by init, which /proc no longer shows as ours).
            let alive = std::fs::read_to_string(format!("/proc/{pid}/stat"))
                .map(|s| !s.contains(" Z "))
                .unwrap_or(false);
            assert!(!alive, "child {pid} outlived its RankProcs guard");
        }
    }

    #[test]
    fn rank_procs_kill_reports_signal_death() {
        let mut cmd = Command::new("sleep");
        cmd.arg("600");
        let mut procs = RankProcs::spawn(vec![cmd]).expect("spawn sleeper");
        assert!(procs.kill(0));
        procs.wait_all(Instant::now() + Duration::from_secs(5));
        assert_eq!(procs.poll(), 0, "killed child must be reaped");
        assert!(procs.died_of_signal(0), "SIGKILL death must be visible");
    }
}
