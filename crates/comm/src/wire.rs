//! The socket backend's wire protocol: length-prefixed, CRC-framed.
//!
//! Every frame on a rank-to-rank Unix socket is
//!
//! ```text
//! [len: u32 LE] [body: len bytes] [frame_crc: u32 LE]
//! ```
//!
//! where `frame_crc` is the CRC-32 of `body` and `body[0]` is a frame
//! type tag:
//!
//! | tag | frame     | body after the tag                                  |
//! |-----|-----------|-----------------------------------------------------|
//! | 0   | Hello     | `world: u32`, `rank: u32`, `token: u64`             |
//! | 1   | Data      | `seq: u64`, `payload_crc: u32`, `count: u32`, then `count` f32 LE |
//! | 2   | Barrier   | `generation: u64`, `round: u32`                     |
//! | 3   | Heartbeat | (empty)                                             |
//!
//! Two CRCs travel on a `Data` frame on purpose: `frame_crc` protects the
//! *transport* hop (a damaged socket read must be detected here, at the
//! framing layer), while `payload_crc` is the fabric-level checksum the
//! sender computed before any injected corruption — it crosses the wire
//! untouched so the receiving fabric performs exactly the same
//! end-to-end CRC check the in-process backend does, and the fault
//! matrix's corruption semantics are identical on both backends.
//!
//! The decoder is a total function over byte strings: truncated input
//! asks for more bytes, everything else is a typed [`WireError`]. It
//! never panics and never allocates more than the declared (bounded)
//! frame length — the fuzz test feeds it truncations and bit flips to
//! hold it to that.

use crate::crc::crc32;

/// Hard ceiling on one frame's body length. Far above anything the
/// engine sends (payloads are bucket-sized), far below anything that
/// could let a corrupted length field drive an allocation bomb.
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// Frame type tags (`body[0]`).
const TAG_HELLO: u8 = 0;
const TAG_DATA: u8 = 1;
const TAG_BARRIER: u8 = 2;
const TAG_HEARTBEAT: u8 = 3;

/// One decoded frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Connection handshake: who is calling, into which world, for which
    /// run (the token is a per-world nonce so a stale process from an
    /// earlier run cannot splice into a new mesh on a reused socket dir).
    Hello {
        /// World size the sender was launched with.
        world: u32,
        /// Sender's rank.
        rank: u32,
        /// Per-run nonce; both sides must agree.
        token: u64,
    },
    /// One fabric message (the socket form of [`crate::transport::Msg`]).
    Data {
        /// Per-pair FIFO sequence number.
        seq: u64,
        /// Fabric-level payload checksum, computed by the sender before
        /// any injected corruption — carried verbatim.
        payload_crc: u32,
        /// The f32 payload.
        payload: Vec<f32>,
    },
    /// One round of the dissemination barrier.
    Barrier {
        /// Barrier generation (how many barriers completed before).
        generation: u64,
        /// Round within the generation (0..⌈log₂ n⌉).
        round: u32,
    },
    /// Peer-liveness beacon; carries no payload.
    Heartbeat,
}

/// Why a byte string is not a frame. Every variant is a protocol error
/// on that connection — the peer is gone, damaged, or not speaking this
/// protocol — and maps to a typed [`crate::CommError`] at the fabric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The declared body length.
        declared: u64,
    },
    /// The frame CRC does not match the received body.
    BadFrameCrc {
        /// CRC the sender declared.
        declared: u32,
        /// CRC of what actually arrived.
        actual: u32,
    },
    /// The body's leading tag names no known frame type.
    UnknownFrameType(u8),
    /// The body length is impossible for its frame type.
    BadBody(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::FrameTooLarge { declared } => {
                write!(f, "frame body of {declared} bytes exceeds the {MAX_FRAME_LEN} cap")
            }
            WireError::BadFrameCrc { declared, actual } => write!(
                f,
                "frame crc mismatch: declared {declared:#010x}, got {actual:#010x}"
            ),
            WireError::UnknownFrameType(tag) => write!(f, "unknown frame type tag {tag}"),
            WireError::BadBody(what) => write!(f, "malformed frame body: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

fn frame_with_body(body: &[u8]) -> Vec<u8> {
    // A body past the cap is unrepresentable on the wire (peers reject it
    // as `FrameTooLarge`), so fail at the producer, where the bug is.
    assert!(body.len() <= MAX_FRAME_LEN, "frame body exceeds MAX_FRAME_LEN");
    let len = u32::try_from(body.len()).expect("length checked against MAX_FRAME_LEN");
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out
}

/// Encodes a handshake frame.
pub fn encode_hello(world: u32, rank: u32, token: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(17);
    body.push(TAG_HELLO);
    body.extend_from_slice(&world.to_le_bytes());
    body.extend_from_slice(&rank.to_le_bytes());
    body.extend_from_slice(&token.to_le_bytes());
    frame_with_body(&body)
}

/// Encodes one fabric message.
pub fn encode_data(seq: u64, payload_crc: u32, payload: &[f32]) -> Vec<u8> {
    let count = u32::try_from(payload.len()).expect("payload count fits the wire field");
    let mut body = Vec::with_capacity(17 + 4 * payload.len());
    body.push(TAG_DATA);
    body.extend_from_slice(&seq.to_le_bytes());
    body.extend_from_slice(&payload_crc.to_le_bytes());
    body.extend_from_slice(&count.to_le_bytes());
    for v in payload {
        body.extend_from_slice(&v.to_le_bytes());
    }
    frame_with_body(&body)
}

/// Encodes one dissemination-barrier round.
pub fn encode_barrier(generation: u64, round: u32) -> Vec<u8> {
    let mut body = Vec::with_capacity(13);
    body.push(TAG_BARRIER);
    body.extend_from_slice(&generation.to_le_bytes());
    body.extend_from_slice(&round.to_le_bytes());
    frame_with_body(&body)
}

/// Encodes a liveness beacon.
pub fn encode_heartbeat() -> Vec<u8> {
    frame_with_body(&[TAG_HEARTBEAT])
}

fn take_u32(b: &[u8]) -> Option<(u32, &[u8])> {
    let (head, rest) = b.split_first_chunk::<4>()?;
    Some((u32::from_le_bytes(*head), rest))
}

fn take_u64(b: &[u8]) -> Option<(u64, &[u8])> {
    let (head, rest) = b.split_first_chunk::<8>()?;
    Some((u64::from_le_bytes(*head), rest))
}

/// Decodes the body of one length/CRC-verified frame.
fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
    let (&tag, rest) = body.split_first().ok_or(WireError::BadBody("empty body"))?;
    match tag {
        TAG_HELLO => {
            let (world, rest) = take_u32(rest).ok_or(WireError::BadBody("hello too short"))?;
            let (rank, rest) = take_u32(rest).ok_or(WireError::BadBody("hello too short"))?;
            let (token, rest) = take_u64(rest).ok_or(WireError::BadBody("hello too short"))?;
            if !rest.is_empty() {
                return Err(WireError::BadBody("hello has trailing garbage"));
            }
            Ok(Frame::Hello { world, rank, token })
        }
        TAG_DATA => {
            let (seq, rest) = take_u64(rest).ok_or(WireError::BadBody("data too short"))?;
            let (payload_crc, rest) =
                take_u32(rest).ok_or(WireError::BadBody("data too short"))?;
            let (count, rest) = take_u32(rest).ok_or(WireError::BadBody("data too short"))?;
            if rest.len() != 4 * count as usize {
                return Err(WireError::BadBody("data payload length mismatch"));
            }
            let payload = rest
                .chunks_exact(4)
                .map(|c| {
                    let mut w = [0u8; 4];
                    w.copy_from_slice(c);
                    f32::from_le_bytes(w)
                })
                .collect();
            Ok(Frame::Data { seq, payload_crc, payload })
        }
        TAG_BARRIER => {
            let (generation, rest) =
                take_u64(rest).ok_or(WireError::BadBody("barrier too short"))?;
            let (round, rest) = take_u32(rest).ok_or(WireError::BadBody("barrier too short"))?;
            if !rest.is_empty() {
                return Err(WireError::BadBody("barrier has trailing garbage"));
            }
            Ok(Frame::Barrier { generation, round })
        }
        TAG_HEARTBEAT => {
            if !rest.is_empty() {
                return Err(WireError::BadBody("heartbeat has trailing garbage"));
            }
            Ok(Frame::Heartbeat)
        }
        other => Err(WireError::UnknownFrameType(other)),
    }
}

/// Tries to decode one frame from the front of `buf`.
///
/// * `Ok(Some((frame, consumed)))` — a complete, CRC-clean frame;
///   `consumed` is how many bytes it occupied.
/// * `Ok(None)` — `buf` is a (possibly empty) prefix of a frame; read
///   more bytes and retry.
/// * `Err(_)` — the connection is not carrying this protocol (or the
///   bytes were damaged in a way the frame CRC caught); the stream
///   cannot be resynchronized and must be treated as lost.
///
/// Total over arbitrary input: never panics, and allocation is bounded
/// by the [`MAX_FRAME_LEN`]-checked declared length.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
    let Some((len_field, after_len)) = take_u32(buf) else {
        return Ok(None);
    };
    let declared = len_field as usize;
    if declared > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { declared: len_field as u64 });
    }
    if after_len.len() < declared + 4 {
        return Ok(None);
    }
    let body = &after_len[..declared];
    let (declared_crc, _) =
        take_u32(&after_len[declared..]).ok_or(WireError::BadBody("missing frame crc"))?;
    let actual = crc32(body);
    if actual != declared_crc {
        return Err(WireError::BadFrameCrc { declared: declared_crc, actual });
    }
    decode_body(body).map(|f| Some((f, 8 + declared)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<(Vec<u8>, Frame)> {
        vec![
            (
                encode_hello(4, 2, 0xDEAD_BEEF_CAFE_F00D),
                Frame::Hello { world: 4, rank: 2, token: 0xDEAD_BEEF_CAFE_F00D },
            ),
            (
                encode_data(7, 0x1234_5678, &[1.0, -2.5, f32::NAN, 0.0]),
                Frame::Data {
                    seq: 7,
                    payload_crc: 0x1234_5678,
                    payload: vec![1.0, -2.5, f32::NAN, 0.0],
                },
            ),
            (encode_data(0, 0, &[]), Frame::Data { seq: 0, payload_crc: 0, payload: vec![] }),
            (encode_barrier(3, 1), Frame::Barrier { generation: 3, round: 1 }),
            (encode_heartbeat(), Frame::Heartbeat),
        ]
    }

    fn frames_equal(a: &Frame, b: &Frame) -> bool {
        // NaN payloads must round-trip bit-exactly; PartialEq would call
        // NaN != NaN, so compare Data payloads through their bits.
        match (a, b) {
            (
                Frame::Data { seq: s1, payload_crc: c1, payload: p1 },
                Frame::Data { seq: s2, payload_crc: c2, payload: p2 },
            ) => {
                s1 == s2
                    && c1 == c2
                    && p1.len() == p2.len()
                    && p1.iter().zip(p2).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            _ => a == b,
        }
    }

    #[test]
    fn every_frame_type_round_trips() {
        for (encoded, frame) in all_frames() {
            let (decoded, consumed) = decode_frame(&encoded)
                .expect("valid frame must decode")
                .expect("complete frame must not ask for more");
            assert_eq!(consumed, encoded.len());
            assert!(frames_equal(&decoded, &frame), "{frame:?} mangled to {decoded:?}");
        }
    }

    #[test]
    fn consumed_length_delimits_back_to_back_frames() {
        let mut stream = encode_heartbeat();
        stream.extend_from_slice(&encode_barrier(9, 0));
        let (f1, used) = decode_frame(&stream).unwrap().unwrap();
        assert_eq!(f1, Frame::Heartbeat);
        let (f2, _) = decode_frame(&stream[used..]).unwrap().unwrap();
        assert_eq!(f2, Frame::Barrier { generation: 9, round: 0 });
    }

    #[test]
    fn every_truncation_asks_for_more_or_errors_cleanly() {
        for (encoded, _) in all_frames() {
            for cut in 0..encoded.len() {
                match decode_frame(&encoded[..cut]) {
                    Ok(None) => {}
                    other => panic!("prefix of {cut} bytes gave {other:?}, want Ok(None)"),
                }
            }
        }
    }

    #[test]
    fn flipped_body_bit_is_caught_by_frame_crc() {
        let mut enc = encode_data(1, 42, &[3.0; 8]);
        let mid = enc.len() / 2;
        enc[mid] ^= 0x10;
        match decode_frame(&enc) {
            Err(WireError::BadFrameCrc { .. }) => {}
            other => panic!("expected BadFrameCrc, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut enc = Vec::new();
        enc.extend_from_slice(&u32::MAX.to_le_bytes());
        enc.extend_from_slice(&[0u8; 64]);
        match decode_frame(&enc) {
            Err(WireError::FrameTooLarge { declared }) => {
                assert_eq!(declared, u64::from(u32::MAX));
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn unknown_tag_is_typed() {
        let body = [200u8, 1, 2, 3];
        let enc = frame_with_body(&body);
        assert_eq!(decode_frame(&enc), Err(WireError::UnknownFrameType(200)));
    }

    #[test]
    fn wrong_body_length_for_type_is_typed() {
        // A Data frame whose declared element count disagrees with the
        // body length, but whose frame CRC is honest about those bytes.
        let mut body = vec![1u8]; // TAG_DATA
        body.extend_from_slice(&0u64.to_le_bytes());
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&100u32.to_le_bytes()); // claims 100 floats
        body.extend_from_slice(&[0u8; 8]); // delivers 2
        let enc = frame_with_body(&body);
        assert_eq!(decode_frame(&enc), Err(WireError::BadBody("data payload length mismatch")));
    }
}
