//! Ring collectives.
//!
//! These are the same pipelined ring schedules NCCL uses, which is what
//! makes the paper's volume arithmetic hold: a ring all-reduce of Ψ
//! elements moves 2Ψ·(N−1)/N per rank (reduce-scatter Ψ·(N−1)/N plus
//! all-gather Ψ·(N−1)/N), which §7.1 rounds to 2Ψ.
//!
//! All collectives run over an explicit member list so the same code serves
//! the full world and DP/MP subgroups (§ "ZeRO and MP"). Chunking is
//! balanced-uneven (no padding): chunk `i` of `total` over `n` ranks has
//! `total/n + (i < total%n)` elements, and member `i` owns chunk `i`.

use crate::error::CommError;
use crate::group::Group;
use crate::nonblocking::{PendingOp, Request};
use crate::quant::{quant_wire_bytes, quantize_for_transport, BlockQuantized};
use crate::stats::CollectiveKind;
use crate::world::{Communicator, Fabric};

/// Reduction operator for reduce-style collectives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise sum divided by the group size.
    Mean,
    /// Elementwise maximum.
    Max,
}

/// Logical element width for traffic accounting.
///
/// In-process payloads always travel widened to `f32`, but fp16 tensors
/// must be *accounted* at 2 bytes/element for the paper's arithmetic
/// (gradients and parameters are fp16 in mixed-precision training).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Precision {
    /// 4 bytes per element.
    Fp32,
    /// 2 bytes per element.
    Fp16,
}

impl Precision {
    /// Bytes per element.
    #[inline]
    pub fn bytes(self) -> u64 {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp16 => 2,
        }
    }
}

/// The element range of chunk `i` when `total` elements are split over `n`
/// owners: sizes differ by at most one, larger chunks first.
pub fn chunk_range(total: usize, n: usize, i: usize) -> std::ops::Range<usize> {
    debug_assert!(i < n);
    let base = total / n;
    let rem = total % n;
    let start = i * base + i.min(rem);
    let len = base + usize::from(i < rem);
    start..start + len
}

/// Converts explicit per-member chunk lengths into contiguous ranges.
fn ranges_from_counts(counts: &[usize]) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::with_capacity(counts.len());
    let mut cursor = 0;
    for &c in counts {
        out.push(cursor..cursor + c);
        cursor += c;
    }
    out
}

/// Resolves `rank`'s position within `group`, surfacing a missing
/// membership as [`CommError::NotInGroup`] instead of a panic, so a
/// mis-grouped collective call leaves the rank recoverable (peers time out
/// cleanly rather than observing a poisoned thread).
pub(crate) fn member_index(group: &Group, rank: usize) -> Result<usize, CommError> {
    group.local_index(rank).ok_or_else(|| CommError::NotInGroup {
        rank,
        group: group.members().to_vec(),
    })
}

#[inline]
fn apply(op: ReduceOp, dst: &mut [f32], src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    match op {
        ReduceOp::Sum | ReduceOp::Mean => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        ReduceOp::Max => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = d.max(s);
            }
        }
    }
}

#[inline]
fn finalize(op: ReduceOp, buf: &mut [f32], n: usize) {
    if op == ReduceOp::Mean {
        let inv = 1.0 / n as f32;
        for v in buf {
            *v *= inv;
        }
    }
}

impl Communicator {
    // ----- world-wide convenience wrappers -----

    /// Ring all-reduce over the whole world, in place.
    pub fn all_reduce(
        &mut self,
        buf: &mut [f32],
        op: ReduceOp,
        prec: Precision,
    ) -> Result<(), CommError> {
        let g = Group::world(self.world_size());
        self.all_reduce_in(&g, buf, op, prec)
    }

    /// Ring reduce-scatter over the whole world. `input` has the full
    /// length; this rank's reduced chunk is written to `out`, which must
    /// have exactly `chunk_range(len, n, rank).len()` elements.
    pub fn reduce_scatter(
        &mut self,
        input: &[f32],
        out: &mut [f32],
        op: ReduceOp,
        prec: Precision,
    ) -> Result<(), CommError> {
        let g = Group::world(self.world_size());
        self.reduce_scatter_in(&g, input, out, op, prec)
    }

    /// Ring all-gather over the whole world: this rank contributes `shard`
    /// (its chunk of `out`), and `out` receives every rank's chunk.
    pub fn all_gather(
        &mut self,
        shard: &[f32],
        out: &mut [f32],
        prec: Precision,
    ) -> Result<(), CommError> {
        let g = Group::world(self.world_size());
        self.all_gather_in(&g, shard, out, prec)
    }

    /// Pipelined broadcast from `root` (a global rank) over the whole world.
    pub fn broadcast(
        &mut self,
        root: usize,
        buf: &mut [f32],
        prec: Precision,
    ) -> Result<(), CommError> {
        let g = Group::world(self.world_size());
        self.broadcast_in(&g, root, buf, prec)
    }

    /// Chain reduce to `root` (a global rank); only the root's `buf` holds
    /// the result afterwards.
    pub fn reduce(
        &mut self,
        root: usize,
        buf: &mut [f32],
        op: ReduceOp,
        prec: Precision,
    ) -> Result<(), CommError> {
        let g = Group::world(self.world_size());
        self.reduce_in(&g, root, buf, op, prec)
    }
}

// ----- fabric-side ring schedules (run on the progress thread) -----
//
// These bodies are the original synchronous implementations, verbatim:
// every membership check, fault trigger (`begin_op`), send, and receive
// happens in the same order it always did. The public `Communicator`
// methods below submit these as queue jobs.

impl Fabric {
    /// Ring all-reduce within `group`, in place.
    ///
    /// # Errors
    /// Returns [`CommError::NotInGroup`] if this rank is not a member of
    /// `group`.
    pub(crate) fn all_reduce_in(
        &mut self,
        group: &Group,
        buf: &mut [f32],
        op: ReduceOp,
        prec: Precision,
    ) -> Result<(), CommError> {
        let n = group.len();
        if n == 1 {
            // A single-member group exchanges nothing: no fabric op is
            // counted, so injected faults cannot target it.
            finalize(op, buf, 1);
            return Ok(());
        }
        self.begin_op(CollectiveKind::AllReduce)?;
        let idx = member_index(group, self.rank)?;
        let total = buf.len();
        let next = group.members()[(idx + 1) % n];
        let prev = group.members()[(idx + n - 1) % n];

        // Phase 1: reduce-scatter. After n−1 steps this rank holds the
        // fully reduced chunk `idx`.
        for step in 0..n - 1 {
            let send_c = (idx + 2 * n - 1 - step) % n;
            let recv_c = (idx + 2 * n - 2 - step) % n;
            let payload = buf[chunk_range(total, n, send_c)].to_vec();
            let bytes = prec.bytes() * payload.len() as u64;
            self.send_raw(next, payload, CollectiveKind::AllReduce, bytes)?;
            let incoming = self.recv_raw(prev)?;
            apply(op, &mut buf[chunk_range(total, n, recv_c)], &incoming);
        }
        // Phase 2: all-gather the reduced chunks around the ring.
        for step in 0..n - 1 {
            let send_c = (idx + n - step) % n;
            let recv_c = (idx + 2 * n - 1 - step) % n;
            let payload = buf[chunk_range(total, n, send_c)].to_vec();
            let bytes = prec.bytes() * payload.len() as u64;
            self.send_raw(next, payload, CollectiveKind::AllReduce, bytes)?;
            let incoming = self.recv_raw(prev)?;
            buf[chunk_range(total, n, recv_c)].copy_from_slice(&incoming);
        }
        finalize(op, buf, n);
        Ok(())
    }

    /// Ring reduce-scatter with explicit per-member chunk lengths
    /// (`counts[i]` elements go to group member `i`; `Σ counts` must equal
    /// `input.len()`). Zero counts are allowed — ZeRO's flat-space
    /// partitioning produces uneven and sometimes empty intersections
    /// between a layer's parameter range and a rank's shard.
    ///
    /// # Panics
    /// Panics on length inconsistencies; membership violations surface as
    /// [`CommError::NotInGroup`].
    pub(crate) fn reduce_scatter_var_in(
        &mut self,
        group: &Group,
        input: &[f32],
        out: &mut [f32],
        op: ReduceOp,
        counts: &[usize],
        prec: Precision,
    ) -> Result<(), CommError> {
        let n = group.len();
        assert_eq!(counts.len(), n, "reduce_scatter: counts length");
        assert_eq!(counts.iter().sum::<usize>(), input.len(), "reduce_scatter: counts sum");
        let idx = member_index(group, self.rank)?;
        let ranges = ranges_from_counts(counts);
        assert_eq!(out.len(), counts[idx], "reduce_scatter: bad out length");
        if n == 1 {
            // No peers, no fabric op (see `all_reduce_in`).
            out.copy_from_slice(input);
            finalize(op, out, 1);
            return Ok(());
        }
        self.begin_op(CollectiveKind::ReduceScatter)?;
        let next = group.members()[(idx + 1) % n];
        let prev = group.members()[(idx + n - 1) % n];

        // Working copy: the ring mutates chunks as partial sums flow.
        let mut work = input.to_vec();
        for step in 0..n - 1 {
            let send_c = (idx + 2 * n - 1 - step) % n;
            let recv_c = (idx + 2 * n - 2 - step) % n;
            let payload = work[ranges[send_c].clone()].to_vec();
            let bytes = prec.bytes() * payload.len() as u64;
            self.send_raw(next, payload, CollectiveKind::ReduceScatter, bytes)?;
            let incoming = self.recv_raw(prev)?;
            apply(op, &mut work[ranges[recv_c].clone()], &incoming);
        }
        out.copy_from_slice(&work[ranges[idx].clone()]);
        finalize(op, out, n);
        Ok(())
    }

    /// Ring all-gather with explicit per-member chunk lengths (`counts[i]`
    /// elements contributed by member `i`; `Σ counts` = `out.len()`).
    /// Zero counts are allowed.
    ///
    /// # Panics
    /// Panics on length inconsistencies; membership violations surface as
    /// [`CommError::NotInGroup`].
    pub(crate) fn all_gather_var_in(
        &mut self,
        group: &Group,
        shard: &[f32],
        out: &mut [f32],
        counts: &[usize],
        prec: Precision,
    ) -> Result<(), CommError> {
        let n = group.len();
        assert_eq!(counts.len(), n, "all_gather: counts length");
        assert_eq!(counts.iter().sum::<usize>(), out.len(), "all_gather: counts sum");
        let idx = member_index(group, self.rank)?;
        let ranges = ranges_from_counts(counts);
        assert_eq!(shard.len(), counts[idx], "all_gather: bad shard length");
        out[ranges[idx].clone()].copy_from_slice(shard);
        if n == 1 {
            // No peers, no fabric op (see `all_reduce_in`).
            return Ok(());
        }
        self.begin_op(CollectiveKind::AllGather)?;
        let next = group.members()[(idx + 1) % n];
        let prev = group.members()[(idx + n - 1) % n];
        for step in 0..n - 1 {
            let send_c = (idx + n - step) % n;
            let recv_c = (idx + 2 * n - 1 - step) % n;
            let payload = out[ranges[send_c].clone()].to_vec();
            let bytes = prec.bytes() * payload.len() as u64;
            self.send_raw(next, payload, CollectiveKind::AllGather, bytes)?;
            let incoming = self.recv_raw(prev)?;
            out[ranges[recv_c].clone()].copy_from_slice(&incoming);
        }
        Ok(())
    }

    /// Pipelined broadcast within `group` from global rank `root`.
    ///
    /// # Errors
    /// Returns [`CommError::NotInGroup`] if this rank or `root` is not in
    /// `group`.
    pub(crate) fn broadcast_in(
        &mut self,
        group: &Group,
        root: usize,
        buf: &mut [f32],
        prec: Precision,
    ) -> Result<(), CommError> {
        self.begin_op(CollectiveKind::Broadcast)?;
        let n = group.len();
        if n == 1 {
            return Ok(());
        }
        let idx = member_index(group, self.rank)?;
        let root_idx = member_index(group, root)?;
        // Position along the chain starting at the root.
        let pos = (idx + n - root_idx) % n;
        let bytes = prec.bytes() * buf.len() as u64;
        if pos > 0 {
            let prev = group.members()[(idx + n - 1) % n];
            let incoming = self.recv_raw(prev)?;
            buf.copy_from_slice(&incoming);
        }
        if pos < n - 1 {
            let next = group.members()[(idx + 1) % n];
            self.send_raw(next, buf.to_vec(), CollectiveKind::Broadcast, bytes)?;
        }
        Ok(())
    }

    /// Chain reduce within `group` to global rank `root`. Afterwards only
    /// the root's `buf` holds the reduced result; other members' buffers
    /// are unchanged.
    ///
    /// # Errors
    /// Returns [`CommError::NotInGroup`] if this rank or `root` is not in
    /// `group`.
    pub(crate) fn reduce_in(
        &mut self,
        group: &Group,
        root: usize,
        buf: &mut [f32],
        op: ReduceOp,
        prec: Precision,
    ) -> Result<(), CommError> {
        self.begin_op(CollectiveKind::Reduce)?;
        let n = group.len();
        if n == 1 {
            finalize(op, buf, 1);
            return Ok(());
        }
        let idx = member_index(group, self.rank)?;
        let root_idx = member_index(group, root)?;
        // Chain: the member farthest *after* the root sends first; partial
        // sums flow backwards around the ring into the root.
        let pos = (idx + n - root_idx) % n; // root has pos 0
        let bytes = prec.bytes() * buf.len() as u64;
        if pos == 0 {
            // Root: receive one partial-sum message from its successor.
            let next = group.members()[(idx + 1) % n];
            let incoming = self.recv_raw(next)?;
            apply(op, buf, &incoming);
            finalize(op, buf, n);
        } else {
            let mut work = buf.to_vec();
            if pos < n - 1 {
                let next = group.members()[(idx + 1) % n];
                let incoming = self.recv_raw(next)?;
                apply(op, &mut work, &incoming);
            }
            let prev = group.members()[(idx + n - 1) % n];
            self.send_raw(prev, work, CollectiveKind::Reduce, bytes)?;
        }
        Ok(())
    }
}

// ----- public group collectives: submit to the progress thread -----

impl Communicator {
    /// Ring all-reduce within `group`, in place.
    ///
    /// # Errors
    /// Returns [`CommError::NotInGroup`] if this rank is not a member of
    /// `group`.
    pub fn all_reduce_in(
        &mut self,
        group: &Group,
        buf: &mut [f32],
        op: ReduceOp,
        prec: Precision,
    ) -> Result<(), CommError> {
        let req = Request::AllReduce { group: group.clone(), data: buf.to_vec(), op, prec };
        let out = self.submit(Some(CollectiveKind::AllReduce), req).wait()?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    /// Ring reduce-scatter within `group`: member `i` receives reduced
    /// chunk `i` of `input` into `out`, with balanced chunk sizes.
    ///
    /// # Panics
    /// Panics if `out` has the wrong length. A non-member caller gets
    /// [`CommError::NotInGroup`].
    pub fn reduce_scatter_in(
        &mut self,
        group: &Group,
        input: &[f32],
        out: &mut [f32],
        op: ReduceOp,
        prec: Precision,
    ) -> Result<(), CommError> {
        let n = group.len();
        let counts: Vec<usize> = (0..n).map(|i| chunk_range(input.len(), n, i).len()).collect();
        self.reduce_scatter_var_in(group, input, out, op, &counts, prec)
    }

    /// Ring reduce-scatter with explicit per-member chunk lengths
    /// (`counts[i]` elements go to group member `i`; `Σ counts` must equal
    /// `input.len()`). Zero counts are allowed — ZeRO's flat-space
    /// partitioning produces uneven and sometimes empty intersections
    /// between a layer's parameter range and a rank's shard.
    ///
    /// # Panics
    /// Panics on length inconsistencies; membership violations surface as
    /// [`CommError::NotInGroup`].
    pub fn reduce_scatter_var_in(
        &mut self,
        group: &Group,
        input: &[f32],
        out: &mut [f32],
        op: ReduceOp,
        counts: &[usize],
        prec: Precision,
    ) -> Result<(), CommError> {
        if let Some(idx) = group.local_index(self.rank()) {
            assert_eq!(out.len(), counts[idx], "reduce_scatter: bad out length");
        }
        let chunk = self.start_reduce_scatter_var(group, input, op, counts, prec).wait()?;
        out.copy_from_slice(&chunk);
        Ok(())
    }

    /// Ring all-gather within `group`: member `i` contributes chunk `i`,
    /// with balanced chunk sizes.
    ///
    /// # Panics
    /// Panics if the lengths are inconsistent. A non-member caller gets
    /// [`CommError::NotInGroup`].
    pub fn all_gather_in(
        &mut self,
        group: &Group,
        shard: &[f32],
        out: &mut [f32],
        prec: Precision,
    ) -> Result<(), CommError> {
        let n = group.len();
        let counts: Vec<usize> = (0..n).map(|i| chunk_range(out.len(), n, i).len()).collect();
        self.all_gather_var_in(group, shard, out, &counts, prec)
    }

    /// Ring all-gather with explicit per-member chunk lengths (`counts[i]`
    /// elements contributed by member `i`; `Σ counts` = `out.len()`).
    /// Zero counts are allowed.
    ///
    /// # Panics
    /// Panics on length inconsistencies; membership violations surface as
    /// [`CommError::NotInGroup`].
    pub fn all_gather_var_in(
        &mut self,
        group: &Group,
        shard: &[f32],
        out: &mut [f32],
        counts: &[usize],
        prec: Precision,
    ) -> Result<(), CommError> {
        assert_eq!(counts.iter().sum::<usize>(), out.len(), "all_gather: counts sum");
        let full = self.start_all_gather_var(group, shard, counts, prec).wait()?;
        out.copy_from_slice(&full);
        Ok(())
    }

    /// Pipelined broadcast within `group` from global rank `root`.
    ///
    /// # Errors
    /// Returns [`CommError::NotInGroup`] if this rank or `root` is not in
    /// `group`.
    pub fn broadcast_in(
        &mut self,
        group: &Group,
        root: usize,
        buf: &mut [f32],
        prec: Precision,
    ) -> Result<(), CommError> {
        let req =
            Request::Broadcast { group: group.clone(), root, data: buf.to_vec(), prec };
        let out = self.submit(Some(CollectiveKind::Broadcast), req).wait()?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    /// Chain reduce within `group` to global rank `root`. Afterwards only
    /// the root's `buf` holds the reduced result; other members' buffers
    /// are unchanged.
    ///
    /// # Errors
    /// Returns [`CommError::NotInGroup`] if this rank or `root` is not in
    /// `group`.
    pub fn reduce_in(
        &mut self,
        group: &Group,
        root: usize,
        buf: &mut [f32],
        op: ReduceOp,
        prec: Precision,
    ) -> Result<(), CommError> {
        let req =
            Request::Reduce { group: group.clone(), root, data: buf.to_vec(), op, prec };
        let out = self.submit(Some(CollectiveKind::Reduce), req).wait()?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    // ----- non-blocking starts -----

    /// Starts a ring reduce-scatter (balanced chunks) without blocking;
    /// [`PendingOp::wait`] yields this rank's reduced chunk.
    pub fn start_reduce_scatter(
        &mut self,
        group: &Group,
        input: &[f32],
        op: ReduceOp,
        prec: Precision,
    ) -> PendingOp {
        let n = group.len();
        let counts: Vec<usize> = (0..n).map(|i| chunk_range(input.len(), n, i).len()).collect();
        self.start_reduce_scatter_var(group, input, op, &counts, prec)
    }

    /// Starts a ring reduce-scatter with explicit per-member counts
    /// without blocking; [`PendingOp::wait`] yields this rank's reduced
    /// chunk (`counts[idx]` elements). The op advances on the progress
    /// thread while the caller computes.
    ///
    /// # Panics
    /// Panics if `counts` is inconsistent with `group` and `input`.
    pub fn start_reduce_scatter_var(
        &mut self,
        group: &Group,
        input: &[f32],
        op: ReduceOp,
        counts: &[usize],
        prec: Precision,
    ) -> PendingOp {
        assert_eq!(counts.len(), group.len(), "reduce_scatter: counts length");
        assert_eq!(counts.iter().sum::<usize>(), input.len(), "reduce_scatter: counts sum");
        let req = Request::ReduceScatter {
            group: group.clone(),
            input: input.to_vec(),
            op,
            counts: counts.to_vec(),
            prec,
        };
        self.submit(Some(CollectiveKind::ReduceScatter), req)
    }

    /// Starts a ring all-gather (balanced chunks over `total` elements)
    /// without blocking; [`PendingOp::wait`] yields the full buffer.
    pub fn start_all_gather(
        &mut self,
        group: &Group,
        shard: &[f32],
        total: usize,
        prec: Precision,
    ) -> PendingOp {
        let n = group.len();
        let counts: Vec<usize> = (0..n).map(|i| chunk_range(total, n, i).len()).collect();
        self.start_all_gather_var(group, shard, &counts, prec)
    }

    /// Starts a ring all-gather with explicit per-member counts without
    /// blocking; [`PendingOp::wait`] yields the full `Σ counts` buffer.
    /// The op advances on the progress thread while the caller computes.
    ///
    /// # Panics
    /// Panics if `counts` is inconsistent with `group` and `shard`.
    pub fn start_all_gather_var(
        &mut self,
        group: &Group,
        shard: &[f32],
        counts: &[usize],
        prec: Precision,
    ) -> PendingOp {
        assert_eq!(counts.len(), group.len(), "all_gather: counts length");
        if let Some(idx) = group.local_index(self.rank()) {
            assert_eq!(shard.len(), counts[idx], "all_gather: bad shard length");
        }
        let req = Request::AllGather {
            group: group.clone(),
            shard: shard.to_vec(),
            counts: counts.to_vec(),
            prec,
        };
        self.submit(Some(CollectiveKind::AllGather), req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{launch, launch_with_stats};

    #[test]
    fn chunk_ranges_cover_and_are_balanced() {
        for total in [0usize, 1, 7, 64, 65] {
            for n in [1usize, 2, 3, 5, 8] {
                let mut covered = 0;
                let mut sizes = Vec::new();
                for i in 0..n {
                    let r = chunk_range(total, n, i);
                    assert_eq!(r.start, covered, "chunks must be contiguous");
                    covered = r.end;
                    sizes.push(r.len());
                }
                assert_eq!(covered, total, "chunks must cover the buffer");
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced within one element");
            }
        }
    }

    #[test]
    fn all_reduce_sums_across_ranks() {
        for n in [1usize, 2, 3, 4, 7] {
            for len in [1usize, 5, 16, 33] {
                let results = launch(n, |mut c| {
                    let mut buf: Vec<f32> =
                        (0..len).map(|i| (c.rank() * 100 + i) as f32).collect();
                    c.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp32).unwrap();
                    buf
                });
                let want: Vec<f32> = (0..len)
                    .map(|i| (0..n).map(|r| (r * 100 + i) as f32).sum())
                    .collect();
                for (rank, got) in results.iter().enumerate() {
                    for (g, w) in got.iter().zip(&want) {
                        assert!((g - w).abs() < 1e-3, "n={n} len={len} rank={rank}");
                    }
                }
            }
        }
    }

    #[test]
    fn all_reduce_mean_divides() {
        let results = launch(4, |mut c| {
            let mut buf = vec![(c.rank() + 1) as f32; 8];
            c.all_reduce(&mut buf, ReduceOp::Mean, Precision::Fp32).unwrap();
            buf
        });
        for got in &results {
            for &v in got {
                assert!((v - 2.5).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn all_reduce_max() {
        let results = launch(3, |mut c| {
            let mut buf = vec![c.rank() as f32, -(c.rank() as f32)];
            c.all_reduce(&mut buf, ReduceOp::Max, Precision::Fp32).unwrap();
            buf
        });
        for got in &results {
            assert_eq!(got[0], 2.0);
            assert_eq!(got[1], 0.0);
        }
    }

    #[test]
    fn reduce_scatter_gives_each_rank_its_chunk() {
        let n = 4;
        let len = 10; // uneven: chunks of 3,3,2,2
        let results = launch(n, |mut c| {
            let input: Vec<f32> = (0..len).map(|i| (i + c.rank()) as f32).collect();
            let my_len = chunk_range(len, n, c.rank()).len();
            let mut out = vec![0.0; my_len];
            c.reduce_scatter(&input, &mut out, ReduceOp::Sum, Precision::Fp32).unwrap();
            out
        });
        for (rank, got) in results.iter().enumerate() {
            let r = chunk_range(len, n, rank);
            for (j, &v) in got.iter().enumerate() {
                let i = r.start + j;
                let want: f32 = (0..n).map(|rr| (i + rr) as f32).sum();
                assert_eq!(v, want, "rank {rank} element {i}");
            }
        }
    }

    #[test]
    fn all_gather_reassembles() {
        let n = 3;
        let len = 8; // chunks 3,3,2
        let results = launch(n, |mut c| {
            let r = chunk_range(len, n, c.rank());
            let shard: Vec<f32> = r.clone().map(|i| i as f32 * 2.0).collect();
            let mut out = vec![0.0; len];
            c.all_gather(&shard, &mut out, Precision::Fp32).unwrap();
            out
        });
        let want: Vec<f32> = (0..len).map(|i| i as f32 * 2.0).collect();
        for got in &results {
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn broadcast_from_each_root() {
        for root in 0..4 {
            let results = launch(4, move |mut c| {
                let mut buf = if c.rank() == root {
                    vec![42.0, root as f32]
                } else {
                    vec![0.0, 0.0]
                };
                c.broadcast(root, &mut buf, Precision::Fp32).unwrap();
                buf
            });
            for got in &results {
                assert_eq!(got, &vec![42.0, root as f32]);
            }
        }
    }

    #[test]
    fn reduce_to_root_only() {
        let results = launch(5, |mut c| {
            let mut buf = vec![1.0_f32; 4];
            c.reduce(2, &mut buf, ReduceOp::Sum, Precision::Fp32).unwrap();
            buf
        });
        assert_eq!(results[2], vec![5.0; 4]);
        for (rank, got) in results.iter().enumerate() {
            if rank != 2 {
                assert_eq!(got, &vec![1.0; 4], "non-roots unchanged");
            }
        }
    }

    #[test]
    fn all_reduce_volume_matches_ring_formula() {
        // A ring all-reduce of `len` f32 elements sends 2·len·(n−1)/n
        // elements per rank — the 2Ψ of §7.1.
        let n = 4;
        let len = 1024; // divisible by n so the formula is exact
        let (_, snaps) = launch_with_stats(n, |mut c| {
            let mut buf = vec![1.0_f32; len];
            c.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp32).unwrap();
        });
        let want = (2 * len * (n - 1) / n * 4) as u64;
        for s in &snaps {
            assert_eq!(s.bytes(CollectiveKind::AllReduce), want);
        }
    }

    #[test]
    fn fp16_accounting_halves_bytes() {
        let n = 2;
        let len = 100;
        let (_, snaps) = launch_with_stats(n, |mut c| {
            let mut buf = vec![1.0_f32; len];
            c.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp16).unwrap();
        });
        let want = (2 * len * (n - 1) / n * 2) as u64;
        assert_eq!(snaps[0].bytes(CollectiveKind::AllReduce), want);
    }

    #[test]
    fn single_rank_collectives_are_local() {
        let (_, snaps) = launch_with_stats(1, |mut c| {
            let mut buf = vec![3.0_f32; 7];
            c.all_reduce(&mut buf, ReduceOp::Mean, Precision::Fp32).unwrap();
            assert_eq!(buf, vec![3.0; 7]);
            let mut out = vec![0.0; 7];
            c.reduce_scatter(&buf, &mut out, ReduceOp::Sum, Precision::Fp32).unwrap();
            assert_eq!(out, vec![3.0; 7]);
            let mut gathered = vec![0.0; 7];
            c.all_gather(&out, &mut gathered, Precision::Fp32).unwrap();
            assert_eq!(gathered, vec![3.0; 7]);
        });
        assert_eq!(snaps[0].total_bytes(), 0, "no traffic for world of 1");
    }
}

#[cfg(test)]
mod var_tests {
    use super::*;
    use crate::world::launch;

    #[test]
    fn var_reduce_scatter_with_uneven_and_zero_counts() {
        let n = 4;
        let counts = [5usize, 0, 2, 3];
        let total: usize = counts.iter().sum();
        let results = launch(n, move |mut c| {
            let input: Vec<f32> = (0..total).map(|i| (i * (c.rank() + 1)) as f32).collect();
            let mut out = vec![0.0; counts[c.rank()]];
            let g = Group::world(n);
            c.reduce_scatter_var_in(&g, &input, &mut out, ReduceOp::Sum, &counts, Precision::Fp32).unwrap();
            out
        });
        // Element i of the reduced buffer is i * (1+2+3+4) = 10i.
        let mut offset = 0;
        for (rank, cnt) in counts.iter().enumerate() {
            assert_eq!(results[rank].len(), *cnt, "rank {rank}");
            for (j, &got) in results[rank].iter().enumerate() {
                assert_eq!(got, (10 * (offset + j)) as f32, "rank {rank}");
            }
            offset += cnt;
        }
        assert!(results[1].is_empty());
    }

    #[test]
    fn var_all_gather_with_uneven_and_zero_counts() {
        let n = 3;
        let counts = [4usize, 0, 3];
        let total: usize = counts.iter().sum();
        let results = launch(n, move |mut c| {
            let offset: usize = counts[..c.rank()].iter().sum();
            let shard: Vec<f32> = (0..counts[c.rank()]).map(|j| (offset + j) as f32).collect();
            let mut out = vec![-1.0; total];
            let g = Group::world(n);
            c.all_gather_var_in(&g, &shard, &mut out, &counts, Precision::Fp32).unwrap();
            out
        });
        let want: Vec<f32> = (0..total).map(|i| i as f32).collect();
        for got in &results {
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn var_versions_match_equal_versions() {
        let n = 4;
        let len = 12;
        let results = launch(n, move |mut c| {
            let input: Vec<f32> = (0..len).map(|i| (i + c.rank() * 3) as f32).collect();
            let g = Group::world(n);
            let mut out_a = vec![0.0; chunk_range(len, n, c.rank()).len()];
            c.reduce_scatter_in(&g, &input, &mut out_a, ReduceOp::Mean, Precision::Fp32).unwrap();
            let counts: Vec<usize> = (0..n).map(|i| chunk_range(len, n, i).len()).collect();
            let mut out_b = vec![0.0; counts[c.rank()]];
            c.reduce_scatter_var_in(&g, &input, &mut out_b, ReduceOp::Mean, &counts, Precision::Fp32).unwrap();
            (out_a, out_b)
        });
        for (a, b) in &results {
            assert_eq!(a, b);
        }
    }
}

impl Fabric {
    /// All-to-all within `group` (fabric side): member `i` sends
    /// `chunks[j]` of its input to member `j` and receives everyone's
    /// `i`-th chunk, in member order. Equal chunking of `input.len()` over
    /// the group (balanced like [`chunk_range`]); `out` must match `input`
    /// length.
    ///
    /// # Panics
    /// Panics on length inconsistencies; membership violations surface as
    /// [`CommError::NotInGroup`].
    pub(crate) fn all_to_all_in(
        &mut self,
        group: &Group,
        input: &[f32],
        out: &mut [f32],
        prec: Precision,
    ) -> Result<(), CommError> {
        self.begin_op(CollectiveKind::P2p)?;
        let n = group.len();
        assert_eq!(input.len(), out.len(), "all_to_all: length mismatch");
        let idx = member_index(group, self.rank)?;
        let total = input.len();
        // Keep own chunk.
        let own = chunk_range(total, n, idx);
        out[own.clone()].copy_from_slice(&input[own]);
        if n == 1 {
            return Ok(());
        }
        // Pairwise exchange, ordered by offset to avoid deadlock: at each
        // step s, exchange with partner (idx ^ does not work for non-power
        // of two), so use send-to-(idx+s), recv-from-(idx-s) rounds.
        for s in 1..n {
            let to = group.members()[(idx + s) % n];
            let from = group.members()[(idx + n - s) % n];
            let send_chunk = chunk_range(total, n, (idx + s) % n);
            let bytes = prec.bytes() * send_chunk.len() as u64;
            self.send_raw(to, input[send_chunk].to_vec(), CollectiveKind::P2p, bytes)?;
            let incoming = self.recv_raw(from)?;
            let recv_chunk = chunk_range(total, n, (idx + n - s) % n);
            assert_eq!(incoming.len(), recv_chunk.len(), "all_to_all: chunk mismatch");
            out[recv_chunk].copy_from_slice(&incoming);
        }
        Ok(())
    }

    /// Gather within `group` (fabric side): every member's `shard` arrives
    /// at `root`'s `out` (chunked in member order); non-roots may pass an
    /// empty `out`.
    ///
    /// # Panics
    /// Panics on length inconsistencies; membership violations surface as
    /// [`CommError::NotInGroup`].
    pub(crate) fn gather_in(
        &mut self,
        group: &Group,
        root: usize,
        shard: &[f32],
        out: &mut [f32],
        prec: Precision,
    ) -> Result<(), CommError> {
        self.begin_op(CollectiveKind::P2p)?;
        let n = group.len();
        let idx = member_index(group, self.rank)?;
        let root_idx = member_index(group, root)?;
        if idx == root_idx {
            let total = out.len();
            let own = chunk_range(total, n, idx);
            assert_eq!(shard.len(), own.len(), "gather: bad root shard");
            out[own].copy_from_slice(shard);
            for j in 0..n {
                if j == idx {
                    continue;
                }
                let incoming = self.recv_raw(group.members()[j])?;
                let r = chunk_range(total, n, j);
                assert_eq!(incoming.len(), r.len(), "gather: bad chunk from {j}");
                out[r].copy_from_slice(&incoming);
            }
        } else {
            let bytes = prec.bytes() * shard.len() as u64;
            self.send_raw(root, shard.to_vec(), CollectiveKind::P2p, bytes)?;
        }
        Ok(())
    }

    /// Scatter within `group` (fabric side): `root`'s `input` is chunked
    /// in member order; member `i` receives chunk `i` into `shard`.
    ///
    /// # Panics
    /// Panics on length inconsistencies; membership violations surface as
    /// [`CommError::NotInGroup`].
    pub(crate) fn scatter_in(
        &mut self,
        group: &Group,
        root: usize,
        input: &[f32],
        shard: &mut [f32],
        prec: Precision,
    ) -> Result<(), CommError> {
        self.begin_op(CollectiveKind::P2p)?;
        let n = group.len();
        let idx = member_index(group, self.rank)?;
        let root_idx = member_index(group, root)?;
        if idx == root_idx {
            let total = input.len();
            for j in 0..n {
                let r = chunk_range(total, n, j);
                if j == idx {
                    assert_eq!(shard.len(), r.len(), "scatter: bad root shard");
                    shard.copy_from_slice(&input[r]);
                } else {
                    let bytes = prec.bytes() * r.len() as u64;
                    self.send_raw(
                        group.members()[j],
                        input[r].to_vec(),
                        CollectiveKind::P2p,
                        bytes,
                    )?;
                }
            }
        } else {
            let incoming = self.recv_raw(root)?;
            assert_eq!(incoming.len(), shard.len(), "scatter: bad chunk length");
            shard.copy_from_slice(&incoming);
        }
        Ok(())
    }
}

// ----- compressed collectives (ZeRO++ qwZ / qgZ) -----

impl Fabric {
    /// Ring all-gather with block-quantized chunks (ZeRO++ qwZ): the wire
    /// carries int8 codes plus per-block fp32 scale/zero-points, so each
    /// forwarded chunk costs `quant_wire_bytes(len, block)` logical bytes
    /// instead of `prec·len`. Each rank quantizes its own chunk exactly
    /// once, the *encoded* stream circulates the ring verbatim, and every
    /// rank — owner included — dequantizes from that stream, so the
    /// gathered buffer is bitwise identical across the group and
    /// requantization error never compounds across hops.
    ///
    /// # Panics
    /// Panics on length inconsistencies; membership violations surface as
    /// [`CommError::NotInGroup`].
    pub(crate) fn all_gather_quant_in(
        &mut self,
        group: &Group,
        shard: &[f32],
        out: &mut [f32],
        counts: &[usize],
        block: usize,
    ) -> Result<(), CommError> {
        let n = group.len();
        assert_eq!(counts.len(), n, "all_gather_quant: counts length");
        assert_eq!(counts.iter().sum::<usize>(), out.len(), "all_gather_quant: counts sum");
        let idx = member_index(group, self.rank)?;
        let ranges = ranges_from_counts(counts);
        assert_eq!(shard.len(), counts[idx], "all_gather_quant: bad shard length");
        let own = quantize_for_transport(shard, block);
        out[ranges[idx].clone()].copy_from_slice(&own.dequantize());
        if n == 1 {
            // No peers, no fabric op (see `all_reduce_in`).
            return Ok(());
        }
        self.begin_op(CollectiveKind::AllGather)?;
        let next = group.members()[(idx + 1) % n];
        let prev = group.members()[(idx + n - 1) % n];
        let mut streams: Vec<Option<Vec<f32>>> = vec![None; n];
        streams[idx] = Some(own.encode());
        for step in 0..n - 1 {
            let send_c = (idx + n - step) % n;
            let recv_c = (idx + 2 * n - 1 - step) % n;
            let Some(payload) = streams[send_c].take() else {
                unreachable!("ring all-gather forwards each chunk exactly once")
            };
            let logical = quant_wire_bytes(counts[send_c], block);
            self.send_raw(next, payload, CollectiveKind::AllGather, logical)?;
            let incoming = self.recv_raw(prev)?;
            let decoded = BlockQuantized::decode(&incoming, counts[recv_c], block);
            out[ranges[recv_c].clone()].copy_from_slice(&decoded.dequantize());
            streams[recv_c] = Some(incoming);
        }
        Ok(())
    }

    /// Two-phase quantized reduce-scatter (ZeRO++ qgZ) over a group whose
    /// ranks are laid out node-major (`node_size` consecutive members per
    /// node):
    ///
    /// 1. **raw intra-node all-to-all** — node-mate at slot `s` collects,
    ///    at full precision, every chunk destined to a slot-`s` rank on
    ///    any node, then reduces the node's contributions locally in slot
    ///    order;
    /// 2. **quantized inter-node all-to-all** — each rank sends its local
    ///    partial for node `m`'s same-slot owner as int8 codes, and sums
    ///    the dequantized partials in node order.
    ///
    /// Only the slow inter-node hop is quantized; the rank's own partial
    /// stays full precision. Accumulation order (slots, then nodes) is
    /// fixed, so results are bit-deterministic across runs.
    ///
    /// # Panics
    /// Panics on length inconsistencies; membership violations surface as
    /// [`CommError::NotInGroup`], and a `node_size` that does not divide
    /// the group as [`CommError::InvalidTopology`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn reduce_scatter_qgz_in(
        &mut self,
        group: &Group,
        input: &[f32],
        out: &mut [f32],
        op: ReduceOp,
        counts: &[usize],
        node_size: usize,
        block: usize,
        prec: Precision,
    ) -> Result<(), CommError> {
        let n = group.len();
        assert_eq!(counts.len(), n, "reduce_scatter_qgz: counts length");
        assert_eq!(counts.iter().sum::<usize>(), input.len(), "reduce_scatter_qgz: counts sum");
        let idx = member_index(group, self.rank)?;
        assert_eq!(out.len(), counts[idx], "reduce_scatter_qgz: bad out length");
        if n == 1 {
            // No peers, no fabric op (see `all_reduce_in`).
            out.copy_from_slice(input);
            finalize(op, out, 1);
            return Ok(());
        }
        let g = node_size;
        if g == 0 || !n.is_multiple_of(g) {
            return Err(CommError::InvalidTopology { rank: self.rank, world: n, node_size: g });
        }
        self.begin_op(CollectiveKind::ReduceScatter)?;
        let nodes = n / g;
        let slot = idx % g;
        let node = idx / g;
        let ranges = ranges_from_counts(counts);
        // Mean sums through both phases and divides once at the end.
        let inner = if op == ReduceOp::Mean { ReduceOp::Sum } else { op };

        // Phase 1 — raw intra-node all-to-all, pairwise-ordered to match
        // `all_to_all_in`. The payload to slot `s` concatenates the chunks
        // of every slot-`s` owner in node order.
        let col_len: usize = (0..nodes).map(|m| counts[m * g + slot]).sum();
        let mut from_mates: Vec<Option<Vec<f32>>> = vec![None; g];
        for d in 1..g {
            let to_slot = (slot + d) % g;
            let from_slot = (slot + g - d) % g;
            let to = group.members()[node * g + to_slot];
            let from = group.members()[node * g + from_slot];
            let mut payload = Vec::new();
            for m in 0..nodes {
                payload.extend_from_slice(&input[ranges[m * g + to_slot].clone()]);
            }
            let bytes = prec.bytes() * payload.len() as u64;
            self.send_raw(to, payload, CollectiveKind::ReduceScatter, bytes)?;
            let incoming = self.recv_raw(from)?;
            assert_eq!(incoming.len(), col_len, "reduce_scatter_qgz: phase-1 chunk mismatch");
            from_mates[from_slot] = Some(incoming);
        }
        // Node-local partials for this rank's slot column, accumulated in
        // slot order so every rank reduces identically.
        let mut partial: Vec<Vec<f32>> = Vec::with_capacity(nodes);
        for m in 0..nodes {
            partial.push(vec![0.0; counts[m * g + slot]]);
        }
        for (s, mate) in from_mates.iter().enumerate() {
            let mut off = 0usize;
            for (m, dst) in partial.iter_mut().enumerate() {
                let len = counts[m * g + slot];
                let src: &[f32] = if s == slot {
                    &input[ranges[m * g + slot].clone()]
                } else {
                    let Some(buf) = mate else {
                        unreachable!("phase 1 received from every node-mate")
                    };
                    &buf[off..off + len]
                };
                if s == 0 {
                    dst.copy_from_slice(src);
                } else {
                    apply(inner, dst, src);
                }
                off += len;
            }
        }

        // Phase 2 — quantized inter-node all-to-all: node `m`'s same-slot
        // owner receives this node's partial for its chunk as int8 codes.
        let mut from_nodes: Vec<Option<Vec<f32>>> = vec![None; nodes];
        for d in 1..nodes {
            let to_node = (node + d) % nodes;
            let from_node = (node + nodes - d) % nodes;
            let to = group.members()[to_node * g + slot];
            let from = group.members()[from_node * g + slot];
            let q = quantize_for_transport(&partial[to_node], block);
            let logical = quant_wire_bytes(counts[to_node * g + slot], block);
            self.send_raw(to, q.encode(), CollectiveKind::ReduceScatter, logical)?;
            from_nodes[from_node] = Some(self.recv_raw(from)?);
        }
        // Final reduction in node order; the local partial stays full
        // precision — only the slow hop was quantized.
        for (m, incoming) in from_nodes.iter().enumerate() {
            let src: Vec<f32> = if m == node {
                partial[node].clone()
            } else {
                let Some(stream) = incoming else {
                    unreachable!("phase 2 received from every peer node")
                };
                BlockQuantized::decode(stream, counts[idx], block).dequantize()
            };
            if m == 0 {
                out.copy_from_slice(&src);
            } else {
                apply(inner, out, &src);
            }
        }
        finalize(op, out, n);
        Ok(())
    }
}

impl Communicator {
    /// Starts a block-quantized ring all-gather (ZeRO++ qwZ) without
    /// blocking; [`PendingOp::wait`] yields the full `Σ counts` buffer,
    /// dequantized identically on every member.
    ///
    /// # Panics
    /// Panics if `counts` is inconsistent with `group` and `shard`, or if
    /// `block` is zero.
    pub fn start_all_gather_quant(
        &mut self,
        group: &Group,
        shard: &[f32],
        counts: &[usize],
        block: usize,
    ) -> PendingOp {
        assert!(block > 0, "all_gather_quant: block size must be positive");
        assert_eq!(counts.len(), group.len(), "all_gather_quant: counts length");
        if let Some(idx) = group.local_index(self.rank()) {
            assert_eq!(shard.len(), counts[idx], "all_gather_quant: bad shard length");
        }
        let req = Request::AllGatherQuant {
            group: group.clone(),
            shard: shard.to_vec(),
            counts: counts.to_vec(),
            block,
        };
        self.submit(Some(CollectiveKind::AllGather), req)
    }

    /// Blocking block-quantized ring all-gather (ZeRO++ qwZ); see
    /// [`Communicator::start_all_gather_quant`].
    ///
    /// # Panics
    /// Panics on length inconsistencies; membership violations surface as
    /// [`CommError::NotInGroup`].
    pub fn all_gather_quant_in(
        &mut self,
        group: &Group,
        shard: &[f32],
        out: &mut [f32],
        counts: &[usize],
        block: usize,
    ) -> Result<(), CommError> {
        assert_eq!(counts.iter().sum::<usize>(), out.len(), "all_gather_quant: counts sum");
        let full = self.start_all_gather_quant(group, shard, counts, block).wait()?;
        out.copy_from_slice(&full);
        Ok(())
    }

    /// Starts a two-phase quantized reduce-scatter (ZeRO++ qgZ) without
    /// blocking; [`PendingOp::wait`] yields this rank's reduced chunk
    /// (`counts[idx]` elements). `prec` prices the raw intra-node phase;
    /// the inter-node phase is accounted at int8 wire cost.
    ///
    /// # Panics
    /// Panics if `counts` is inconsistent with `group` and `input`, or if
    /// `block` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn start_reduce_scatter_qgz(
        &mut self,
        group: &Group,
        input: &[f32],
        op: ReduceOp,
        counts: &[usize],
        node_size: usize,
        block: usize,
        prec: Precision,
    ) -> PendingOp {
        assert!(block > 0, "reduce_scatter_qgz: block size must be positive");
        assert_eq!(counts.len(), group.len(), "reduce_scatter_qgz: counts length");
        assert_eq!(counts.iter().sum::<usize>(), input.len(), "reduce_scatter_qgz: counts sum");
        let req = Request::ReduceScatterQgz {
            group: group.clone(),
            input: input.to_vec(),
            op,
            counts: counts.to_vec(),
            node_size,
            block,
            prec,
        };
        self.submit(Some(CollectiveKind::ReduceScatter), req)
    }

    /// Blocking two-phase quantized reduce-scatter (ZeRO++ qgZ); see
    /// [`Communicator::start_reduce_scatter_qgz`].
    ///
    /// # Errors
    /// [`CommError::NotInGroup`] for a non-member caller and
    /// [`CommError::InvalidTopology`] if `node_size` does not divide the
    /// group size.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce_scatter_qgz_in(
        &mut self,
        group: &Group,
        input: &[f32],
        out: &mut [f32],
        op: ReduceOp,
        counts: &[usize],
        node_size: usize,
        block: usize,
        prec: Precision,
    ) -> Result<(), CommError> {
        if let Some(idx) = group.local_index(self.rank()) {
            assert_eq!(out.len(), counts[idx], "reduce_scatter_qgz: bad out length");
        }
        let chunk = self
            .start_reduce_scatter_qgz(group, input, op, counts, node_size, block, prec)
            .wait()?;
        out.copy_from_slice(&chunk);
        Ok(())
    }
}

impl Communicator {
    /// All-to-all within `group`: member `i` sends `chunks[j]` of its
    /// input to member `j` and receives everyone's `i`-th chunk, in
    /// member order. Equal chunking of `input.len()` over the group
    /// (balanced like [`chunk_range`]); `out` must match `input` length.
    ///
    /// Used by expert-parallel (MoE) layouts; included for completeness
    /// of the NCCL-substitute surface.
    ///
    /// # Panics
    /// Panics on length inconsistencies; membership violations surface as
    /// [`CommError::NotInGroup`].
    pub fn all_to_all_in(
        &mut self,
        group: &Group,
        input: &[f32],
        out: &mut [f32],
        prec: Precision,
    ) -> Result<(), CommError> {
        assert_eq!(input.len(), out.len(), "all_to_all: length mismatch");
        let req = Request::AllToAll { group: group.clone(), input: input.to_vec(), prec };
        let data = self.submit(Some(CollectiveKind::P2p), req).wait()?;
        out.copy_from_slice(&data);
        Ok(())
    }

    /// Gather within `group`: every member's `shard` arrives at `root`'s
    /// `out` (chunked in member order); non-roots may pass an empty `out`.
    ///
    /// # Panics
    /// Panics on length inconsistencies; membership violations surface as
    /// [`CommError::NotInGroup`].
    pub fn gather_in(
        &mut self,
        group: &Group,
        root: usize,
        shard: &[f32],
        out: &mut [f32],
        prec: Precision,
    ) -> Result<(), CommError> {
        let req = Request::Gather {
            group: group.clone(),
            root,
            shard: shard.to_vec(),
            out_len: out.len(),
            prec,
        };
        let data = self.submit(Some(CollectiveKind::P2p), req).wait()?;
        out.copy_from_slice(&data);
        Ok(())
    }

    /// Scatter within `group`: `root`'s `input` is chunked in member
    /// order; member `i` receives chunk `i` into `shard`.
    ///
    /// # Panics
    /// Panics on length inconsistencies; membership violations surface as
    /// [`CommError::NotInGroup`].
    pub fn scatter_in(
        &mut self,
        group: &Group,
        root: usize,
        input: &[f32],
        shard: &mut [f32],
        prec: Precision,
    ) -> Result<(), CommError> {
        let req = Request::Scatter {
            group: group.clone(),
            root,
            input: input.to_vec(),
            shard_len: shard.len(),
            prec,
        };
        let data = self.submit(Some(CollectiveKind::P2p), req).wait()?;
        shard.copy_from_slice(&data);
        Ok(())
    }
}

#[cfg(test)]
mod extra_collective_tests {
    use super::*;
    use crate::world::launch;

    #[test]
    fn all_to_all_transposes_chunks() {
        for n in [1usize, 2, 3, 4] {
            let len = 12;
            let results = launch(n, move |mut c| {
                // Rank r's chunk j holds value 100·r + j.
                let input: Vec<f32> = (0..len)
                    .map(|i| {
                        let j = (0..n).position(|k| chunk_range(len, n, k).contains(&i)).unwrap();
                        (100 * c.rank() + j) as f32
                    })
                    .collect();
                let mut out = vec![-1.0; len];
                let g = Group::world(n);
                c.all_to_all_in(&g, &input, &mut out, Precision::Fp32).unwrap();
                out
            });
            for (r, got) in results.iter().enumerate() {
                for j in 0..n {
                    for i in chunk_range(len, n, j) {
                        assert_eq!(
                            got[i],
                            (100 * j + r) as f32,
                            "n={n}: rank {r} chunk {j} element {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gather_collects_at_root_only() {
        let n = 4;
        let len = 10;
        let results = launch(n, move |mut c| {
            let shard: Vec<f32> = chunk_range(len, n, c.rank()).map(|i| i as f32).collect();
            let mut out = if c.rank() == 2 { vec![0.0; len] } else { Vec::new() };
            let g = Group::world(n);
            c.gather_in(&g, 2, &shard, &mut out, Precision::Fp32).unwrap();
            out
        });
        let want: Vec<f32> = (0..len).map(|i| i as f32).collect();
        assert_eq!(results[2], want);
        assert!(results[0].is_empty() && results[3].is_empty());
    }

    #[test]
    fn scatter_distributes_from_root() {
        let n = 3;
        let len = 8;
        let results = launch(n, move |mut c| {
            let input: Vec<f32> = if c.rank() == 1 {
                (0..len).map(|i| i as f32 * 3.0).collect()
            } else {
                Vec::new()
            };
            let my_len = chunk_range(len, n, c.rank()).len();
            let mut shard = vec![0.0; my_len];
            let g = Group::world(n);
            c.scatter_in(&g, 1, &input, &mut shard, Precision::Fp32).unwrap();
            shard
        });
        for (r, got) in results.iter().enumerate() {
            let want: Vec<f32> = chunk_range(len, n, r).map(|i| i as f32 * 3.0).collect();
            assert_eq!(got, &want, "rank {r}");
        }
    }

    #[test]
    fn scatter_then_gather_round_trips() {
        let n = 4;
        let len = 13; // uneven
        let results = launch(n, move |mut c| {
            let g = Group::world(n);
            let input: Vec<f32> = if c.rank() == 0 {
                (0..len).map(|i| (i * i) as f32).collect()
            } else {
                Vec::new()
            };
            let my_len = chunk_range(len, n, c.rank()).len();
            let mut shard = vec![0.0; my_len];
            c.scatter_in(&g, 0, &input, &mut shard, Precision::Fp32).unwrap();
            let mut out = if c.rank() == 0 { vec![0.0; len] } else { Vec::new() };
            c.gather_in(&g, 0, &shard, &mut out, Precision::Fp32).unwrap();
            out
        });
        let want: Vec<f32> = (0..13).map(|i| (i * i) as f32).collect();
        assert_eq!(results[0], want);
    }
}

#[cfg(test)]
mod compressed_tests {
    use super::*;
    use crate::world::{launch, launch_with_stats};

    /// Shared helper: rank r's shard values for uneven counts.
    fn shard_of(counts: &[usize], rank: usize) -> Vec<f32> {
        let offset: usize = counts[..rank].iter().sum();
        (0..counts[rank]).map(|j| ((offset + j) as f32 * 0.13).sin() * 3.0).collect()
    }

    #[test]
    fn quant_all_gather_matches_raw_within_block_error() {
        let n = 4;
        let counts = [9usize, 0, 17, 5];
        let total: usize = counts.iter().sum();
        let block = 4;
        let results = launch(n, move |mut c| {
            let g = Group::world(n);
            let shard = shard_of(&counts, c.rank());
            let mut raw = vec![0.0; total];
            c.all_gather_var_in(&g, &shard, &mut raw, &counts, Precision::Fp16).unwrap();
            let mut q = vec![0.0; total];
            c.all_gather_quant_in(&g, &shard, &mut q, &counts, block).unwrap();
            (raw, q)
        });
        // All ranks see bitwise-identical gathered buffers...
        for w in results.windows(2) {
            assert_eq!(w[0].1, w[1].1, "quantized gather must agree across ranks");
        }
        // ...and each element is within the per-block error bound of raw.
        let (raw, q) = &results[0];
        let mut offset = 0;
        for (rank, &cnt) in counts.iter().enumerate() {
            let quantized = crate::quant::quantize(&raw[offset..offset + cnt], block)
                .unwrap_or_else(|e| panic!("rank {rank}: {e}"));
            for (b, chunk) in raw[offset..offset + cnt].chunks(block).enumerate() {
                let bound = 0.5 * quantized.scales[b] * (1.0 + 1e-4) + 1e-30;
                for (j, &v) in chunk.iter().enumerate() {
                    let got = q[offset + b * block + j];
                    assert!(
                        (v - got).abs() <= bound,
                        "rank {rank} block {b} elem {j}: {v} vs {got}"
                    );
                }
            }
            offset += cnt;
        }
    }

    #[test]
    fn quant_all_gather_wire_volume_matches_formula() {
        let n = 4;
        let counts = [100usize, 37, 64, 9];
        let total: usize = counts.iter().sum();
        let block = 16;
        let (_, snaps) = launch_with_stats(n, move |mut c| {
            let g = Group::world(n);
            let shard = shard_of(&counts, c.rank());
            let mut out = vec![0.0; total];
            c.all_gather_quant_in(&g, &shard, &mut out, &counts, block).unwrap();
        });
        // Rank i forwards every chunk except its successor's.
        for (i, s) in snaps.iter().enumerate() {
            let want: u64 = (0..n)
                .filter(|&j| j != (i + 1) % n)
                .map(|j| quant_wire_bytes(counts[j], block))
                .sum();
            assert_eq!(s.bytes(CollectiveKind::AllGather), want, "rank {i}");
        }
    }

    #[test]
    fn qgz_reduce_scatter_matches_raw_within_tolerance() {
        // 4 ranks on 2 "nodes" of 2; Mean semantics like the grad path.
        let n = 4;
        let node_size = 2;
        let counts = [11usize, 6, 0, 13];
        let total: usize = counts.iter().sum();
        let block = 4;
        let results = launch(n, move |mut c| {
            let g = Group::world(n);
            let input: Vec<f32> =
                (0..total).map(|i| ((i + 3 * c.rank()) as f32 * 0.21).cos() * 2.0).collect();
            let mut raw = vec![0.0; counts[c.rank()]];
            c.reduce_scatter_var_in(&g, &input, &mut raw, ReduceOp::Mean, &counts, Precision::Fp16)
                .unwrap();
            let mut q = vec![0.0; counts[c.rank()]];
            c.reduce_scatter_qgz_in(
                &g, &input, &mut q, ReduceOp::Mean, &counts, node_size, block, Precision::Fp16,
            )
            .unwrap();
            (raw, q)
        });
        for (rank, (raw, q)) in results.iter().enumerate() {
            assert_eq!(raw.len(), q.len());
            for (j, (&a, &b)) in raw.iter().zip(q).enumerate() {
                // One quantized hop of partials in ±(n/node_size)·range;
                // a loose absolute bound suffices here (tight per-block
                // bounds are covered in quant.rs).
                assert!((a - b).abs() < 0.05, "rank {rank} elem {j}: raw {a} vs qgz {b}");
            }
        }
    }

    #[test]
    fn qgz_is_bit_deterministic_across_runs() {
        let n = 4;
        let counts = [7usize, 7, 7, 7];
        let run = || {
            launch(n, move |mut c| {
                let g = Group::world(n);
                let input: Vec<f32> =
                    (0..28).map(|i| ((i * (c.rank() + 2)) as f32 * 0.11).sin()).collect();
                let mut out = vec![0.0; counts[c.rank()]];
                c.reduce_scatter_qgz_in(
                    &g, &input, &mut out, ReduceOp::Mean, &counts, 2, 4, Precision::Fp16,
                )
                .unwrap();
                out
            })
        };
        let a = run();
        let b = run();
        for (x, y) in a.iter().zip(&b) {
            assert!(x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits()));
        }
    }

    #[test]
    fn qgz_wire_volume_matches_two_phase_formula() {
        let n = 4;
        let node_size = 2;
        let counts = [40usize, 23, 31, 10];
        let total: usize = counts.iter().sum();
        let block = 8;
        let (_, snaps) = launch_with_stats(n, move |mut c| {
            let g = Group::world(n);
            let input = vec![1.0_f32; total];
            let mut out = vec![0.0; counts[c.rank()]];
            c.reduce_scatter_qgz_in(
                &g, &input, &mut out, ReduceOp::Sum, &counts, node_size, block, Precision::Fp16,
            )
            .unwrap();
        });
        let g = node_size;
        let nodes = n / g;
        for (i, s) in snaps.iter().enumerate() {
            let (slot, node) = (i % g, i / g);
            // Phase 1: to each node-mate s', the full column of slot s'.
            let phase1: u64 = (0..g)
                .filter(|&sp| sp != slot)
                .map(|sp| {
                    let col: usize = (0..nodes).map(|m| counts[m * g + sp]).sum();
                    Precision::Fp16.bytes() * col as u64
                })
                .sum();
            // Phase 2: to each other node, the quantized same-slot chunk.
            let phase2: u64 = (0..nodes)
                .filter(|&m| m != node)
                .map(|m| quant_wire_bytes(counts[m * g + slot], block))
                .sum();
            assert_eq!(s.bytes(CollectiveKind::ReduceScatter), phase1 + phase2, "rank {i}");
        }
    }

    #[test]
    fn qgz_rejects_indivisible_node_size() {
        let errs = launch(4, move |mut c| {
            let g = Group::world(4);
            let input = vec![0.0_f32; 8];
            let mut out = vec![0.0; 2];
            c.reduce_scatter_qgz_in(
                &g, &input, &mut out, ReduceOp::Sum, &[2, 2, 2, 2], 3, 4, Precision::Fp32,
            )
            .unwrap_err()
        });
        for (rank, e) in errs.iter().enumerate() {
            assert_eq!(*e, CommError::InvalidTopology { rank, world: 4, node_size: 3 });
        }
    }

    #[test]
    fn qgz_single_node_group_stays_raw() {
        // node_size == group size: phase 2 degenerates, no quantization of
        // anything this rank keeps — result matches the raw reduce-scatter
        // bit for bit (phase-1 ordering equals slot order on one node).
        let n = 3;
        let counts = [5usize, 4, 3];
        let total: usize = counts.iter().sum();
        let results = launch(n, move |mut c| {
            let g = Group::world(n);
            let input: Vec<f32> = (0..total).map(|i| (i + c.rank() * 7) as f32).collect();
            let mut out = vec![0.0; counts[c.rank()]];
            c.reduce_scatter_qgz_in(
                &g, &input, &mut out, ReduceOp::Sum, &counts, n, 4, Precision::Fp32,
            )
            .unwrap();
            out
        });
        // Integers sum exactly: compare against the analytic reduction.
        let mut offset = 0;
        for (rank, &cnt) in counts.iter().enumerate() {
            for (j, &got) in results[rank].iter().enumerate().take(cnt) {
                let want: f32 = (0..n).map(|r| (offset + j + r * 7) as f32).sum();
                assert_eq!(got, want, "rank {rank} elem {j}");
            }
            offset += cnt;
        }
    }
}
