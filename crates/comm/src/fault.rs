//! Deterministic fault injection for the channel fabric.
//!
//! A [`FaultPlan`] scripts failures against specific ranks at specific
//! points in their communication schedule: crash outright, hang until peers
//! time out, corrupt a payload bit, or delay an op. Because ranks run an
//! SPMD schedule, "the Nth communication op on rank R" is a precise,
//! reproducible coordinate — the same plan plus the same seed always fails
//! the same message, which is what makes recovery testable (a recovered run
//! can be compared bitwise against an unfailed control run).

use std::time::Duration;

use crate::stats::{CollectiveKind, KIND_COUNT};

/// What to do to the victim rank when a trigger fires.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// The rank dies instantly: its op returns [`crate::CommError::InjectedCrash`]
    /// and its endpoints drop, so blocked peers observe `PeerLost`.
    Crash,
    /// The rank stalls long enough for every peer's receive timeout to
    /// expire (so peers observe `Timeout`), then reports itself dead with
    /// [`crate::CommError::InjectedHang`].
    Hang,
    /// The next payload this rank sends has one bit flipped *after* its
    /// checksum is computed; the receiver observes `Corrupt`. The sender
    /// proceeds normally — silent data corruption is silent at the source.
    CorruptNextSend,
    /// The op is delayed by the given duration, then proceeds normally
    /// (models stragglers / transient network congestion).
    Delay(Duration),
}

/// When a fault fires, in the victim rank's own op stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// The `n`-th communication op of any kind (0-based).
    AtOp(u64),
    /// The `n`-th op of one specific kind (0-based) — e.g. "the second
    /// reduce-scatter", to place a crash inside a particular phase of the
    /// training step.
    AtKindOp(CollectiveKind, u64),
}

/// One scripted fault: which rank, when, what.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// The victim rank.
    pub rank: usize,
    /// When the fault fires.
    pub trigger: FaultTrigger,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic script of faults for one world.
///
/// The `seed` feeds the corruption bit chooser (and any future randomized
/// placement), so two runs of the same plan damage the same bit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// An empty plan with a seed for deterministic corruption placement.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { seed, specs: Vec::new() }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scripted faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// True if no faults are scripted.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Adds an arbitrary fault spec.
    pub fn with(mut self, spec: FaultSpec) -> FaultPlan {
        self.specs.push(spec);
        self
    }

    /// Crashes `rank` at its `nth` communication op.
    pub fn with_crash(self, rank: usize, nth: u64) -> FaultPlan {
        self.with(FaultSpec { rank, trigger: FaultTrigger::AtOp(nth), kind: FaultKind::Crash })
    }

    /// Crashes `rank` at its `nth` op of `kind` (e.g. mid-reduce-scatter).
    pub fn with_crash_at_kind(self, rank: usize, kind: CollectiveKind, nth: u64) -> FaultPlan {
        self.with(FaultSpec {
            rank,
            trigger: FaultTrigger::AtKindOp(kind, nth),
            kind: FaultKind::Crash,
        })
    }

    /// Hangs `rank` at its `nth` communication op.
    pub fn with_hang(self, rank: usize, nth: u64) -> FaultPlan {
        self.with(FaultSpec { rank, trigger: FaultTrigger::AtOp(nth), kind: FaultKind::Hang })
    }

    /// Flips one bit in the payload `rank` sends at its `nth` op.
    pub fn with_corruption(self, rank: usize, nth: u64) -> FaultPlan {
        self.with(FaultSpec {
            rank,
            trigger: FaultTrigger::AtOp(nth),
            kind: FaultKind::CorruptNextSend,
        })
    }

    /// Delays `rank`'s `nth` op by `delay`.
    pub fn with_delay(self, rank: usize, nth: u64, delay: Duration) -> FaultPlan {
        self.with(FaultSpec {
            rank,
            trigger: FaultTrigger::AtOp(nth),
            kind: FaultKind::Delay(delay),
        })
    }

    /// Builds the per-rank runtime state that the communicator consults.
    pub(crate) fn for_rank(&self, rank: usize) -> FaultState {
        FaultState {
            specs: self
                .specs
                .iter()
                .filter(|s| s.rank == rank)
                .map(|s| (s.trigger, s.kind.clone(), false))
                .collect(),
            op_count: 0,
            kind_counts: [0; KIND_COUNT],
            // splitmix64 of (seed, rank): distinct deterministic stream per rank.
            rng: splitmix64(self.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            corrupt_pending: false,
        }
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One rank's live fault-injection state, owned by its `Communicator`.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    /// (trigger, kind, fired) for every spec targeting this rank.
    specs: Vec<(FaultTrigger, FaultKind, bool)>,
    op_count: u64,
    kind_counts: [u64; KIND_COUNT],
    rng: u64,
    corrupt_pending: bool,
}

impl FaultState {
    /// Registers the start of one communication op of `kind` and returns
    /// the fault to apply, if any trigger matches. Ops are counted whether
    /// or not a fault fires, so triggers stay aligned with the schedule.
    /// Returns the op index alongside the fault for error reporting.
    pub(crate) fn begin_op(&mut self, kind: CollectiveKind) -> (u64, Option<FaultKind>) {
        let op = self.op_count;
        let kind_op = self.kind_counts[kind as usize];
        self.op_count += 1;
        self.kind_counts[kind as usize] += 1;

        let mut hit = None;
        for (trigger, fault, fired) in self.specs.iter_mut() {
            if *fired {
                continue;
            }
            let matches = match *trigger {
                FaultTrigger::AtOp(n) => n == op,
                FaultTrigger::AtKindOp(k, n) => k == kind && n == kind_op,
            };
            if matches {
                *fired = true;
                hit = Some(fault.clone());
                break;
            }
        }
        (op, hit)
    }

    /// Arms one-shot corruption of the next outgoing payload.
    pub(crate) fn arm_corruption(&mut self) {
        self.corrupt_pending = true;
    }

    /// If corruption is armed, picks a deterministic (element, bit) position
    /// for a payload of `len` elements and disarms. `None` otherwise.
    pub(crate) fn take_corruption(&mut self, len: usize) -> Option<(usize, u32)> {
        if !self.corrupt_pending || len == 0 {
            return None;
        }
        self.corrupt_pending = false;
        let r = self.rng;
        self.rng = splitmix64(self.rng);
        Some(((r as usize) % len, (r >> 32) as u32 % 32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triggers_fire_once_at_the_right_op() {
        let plan = FaultPlan::new()
            .with_crash(1, 2)
            .with_crash_at_kind(1, CollectiveKind::AllGather, 0);
        let mut state = plan.for_rank(1);

        // Op 0 (AllReduce): no trigger.
        assert_eq!(state.begin_op(CollectiveKind::AllReduce), (0, None));
        // Op 1 (AllGather): kind trigger fires.
        let (op, hit) = state.begin_op(CollectiveKind::AllGather);
        assert_eq!((op, hit), (1, Some(FaultKind::Crash)));
        // Op 2: AtOp(2) fires.
        let (op, hit) = state.begin_op(CollectiveKind::Broadcast);
        assert_eq!((op, hit), (2, Some(FaultKind::Crash)));
        // Later AllGathers do not re-fire the kind trigger.
        assert_eq!(state.begin_op(CollectiveKind::AllGather).1, None);
    }

    #[test]
    fn other_ranks_see_no_faults() {
        let plan = FaultPlan::new().with_crash(1, 0);
        let mut state = plan.for_rank(0);
        for _ in 0..10 {
            assert_eq!(state.begin_op(CollectiveKind::P2p).1, None);
        }
    }

    #[test]
    fn corruption_position_is_deterministic() {
        let plan = FaultPlan::seeded(7).with_corruption(0, 0);
        let mut a = plan.for_rank(0);
        let mut b = plan.for_rank(0);
        a.arm_corruption();
        b.arm_corruption();
        let pa = a.take_corruption(100).unwrap();
        let pb = b.take_corruption(100).unwrap();
        assert_eq!(pa, pb);
        assert!(pa.0 < 100 && pa.1 < 32);
        // Disarmed after one use.
        assert_eq!(a.take_corruption(100), None);
    }
}
