//! Typed communication failures.
//!
//! The original fabric panicked on any irregularity — acceptable when every
//! failure is a bug, fatal for elastic training where rank loss is an
//! *expected* event the survivors must recover from. Every failure mode a
//! peer can observe (or a fault plan can inject) maps to one variant here,
//! so recovery code can classify without string-matching panic payloads.

use std::time::Duration;

/// A communication failure observed by one rank.
///
/// `Clone + PartialEq` so supervisors can collect, compare, and re-report
/// failures from several ranks; `Send + Sync + 'static` so it can cross
/// thread boundaries as an error value or a panic payload.
#[derive(Clone, Debug, PartialEq)]
pub enum CommError {
    /// The channel to/from `peer` disconnected: the peer dropped its
    /// communicator (crashed or exited) while this rank still needed it.
    PeerLost {
        /// The observing rank.
        rank: usize,
        /// The rank whose endpoint went away.
        peer: usize,
    },
    /// No message arrived from `peer` within the configured receive
    /// timeout. The peer is alive enough to hold its endpoint open but is
    /// not making progress (hung, or wedged on a different collective).
    Timeout {
        /// The observing rank.
        rank: usize,
        /// The rank that failed to send in time.
        peer: usize,
        /// How long the receiver waited.
        waited: Duration,
    },
    /// Not every rank reached the barrier within the receive timeout.
    BarrierTimeout {
        /// The observing rank.
        rank: usize,
        /// How long the rank waited at the barrier.
        waited: Duration,
    },
    /// A message arrived whose payload checksum does not match: the bytes
    /// were damaged in flight (or a fault plan flipped a bit).
    Corrupt {
        /// The observing rank.
        rank: usize,
        /// The sender of the damaged message.
        peer: usize,
        /// Checksum carried by the message.
        declared_crc: u32,
        /// Checksum recomputed over the received payload.
        actual_crc: u32,
    },
    /// A message arrived with an unexpected sequence number: the two ranks
    /// disagree about the collective schedule (an SPMD bug, not a fault).
    OutOfOrder {
        /// The observing rank.
        rank: usize,
        /// The sender.
        peer: usize,
        /// Sequence number carried by the message.
        got: u64,
        /// Sequence number the receiver expected.
        expected: u64,
    },
    /// This rank's fault plan killed it at communication op `op`.
    InjectedCrash {
        /// The crashed rank.
        rank: usize,
        /// Index of the op (collective or p2p call) at which it died.
        op: u64,
    },
    /// This rank's fault plan hung it at op `op`; after stalling long
    /// enough for every peer to time out, the rank reports itself dead.
    InjectedHang {
        /// The hung rank.
        rank: usize,
        /// Index of the op at which it hung.
        op: u64,
    },
    /// A collective was invoked with a group that does not contain the
    /// required rank (the caller, or the designated root). This is a
    /// schedule bug on the *calling* rank, surfaced as a typed error so a
    /// supervisor can fence the rank instead of unwinding its thread while
    /// peers block inside the ring.
    NotInGroup {
        /// The rank missing from the group (caller or root).
        rank: usize,
        /// The offending group's members.
        group: Vec<usize>,
    },
    /// A hierarchical collective was invoked with a node size that does
    /// not evenly divide the group: the ranks of a partial node would be
    /// silently mis-grouped (some "node" groups would straddle physical
    /// nodes), so the topology is rejected up front.
    InvalidTopology {
        /// The calling rank.
        rank: usize,
        /// Size of the group being split into nodes.
        world: usize,
        /// The ranks-per-node value that does not divide `world`.
        node_size: usize,
    },
    /// This rank's communication progress thread is gone: its job queue
    /// disconnected before (or while) a pending op awaited its result.
    /// The fabric endpoints died with it, so peers observe `PeerLost`.
    ProgressLost {
        /// The rank whose progress thread died.
        rank: usize,
    },
    /// A pending op's result did not arrive within its wait budget even
    /// though the progress thread still holds the queue open. The budget
    /// covers every fabric timeout the op could legally consume, so this
    /// means the progress engine itself is wedged.
    ProgressStalled {
        /// The rank whose progress thread stalled.
        rank: usize,
        /// How long the caller waited before giving up.
        waited: Duration,
    },
}

impl CommError {
    /// The rank that observed (or suffered) the failure.
    pub fn rank(&self) -> usize {
        match *self {
            CommError::PeerLost { rank, .. }
            | CommError::Timeout { rank, .. }
            | CommError::BarrierTimeout { rank, .. }
            | CommError::Corrupt { rank, .. }
            | CommError::OutOfOrder { rank, .. }
            | CommError::InjectedCrash { rank, .. }
            | CommError::InjectedHang { rank, .. } => rank,
            CommError::NotInGroup { rank, .. } => rank,
            CommError::InvalidTopology { rank, .. } => rank,
            CommError::ProgressLost { rank } => rank,
            CommError::ProgressStalled { rank, .. } => rank,
        }
    }

    /// True if this error means the *observing* rank itself is dead
    /// (injected faults), as opposed to having witnessed a peer's failure.
    pub fn is_self_fault(&self) -> bool {
        matches!(
            self,
            CommError::InjectedCrash { .. } | CommError::InjectedHang { .. }
        )
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerLost { rank, peer } => {
                write!(f, "rank {rank}: peer {peer} disconnected mid-collective")
            }
            CommError::Timeout { rank, peer, waited } => {
                write!(f, "rank {rank}: timed out after {waited:?} waiting on peer {peer}")
            }
            CommError::BarrierTimeout { rank, waited } => {
                write!(f, "rank {rank}: barrier incomplete after {waited:?}")
            }
            CommError::Corrupt { rank, peer, declared_crc, actual_crc } => write!(
                f,
                "rank {rank}: corrupt payload from peer {peer} \
                 (declared crc {declared_crc:#010x}, actual {actual_crc:#010x})"
            ),
            CommError::OutOfOrder { rank, peer, got, expected } => write!(
                f,
                "rank {rank}: out-of-order message from peer {peer} \
                 (seq {got}, expected {expected})"
            ),
            CommError::InjectedCrash { rank, op } => {
                write!(f, "rank {rank}: fault plan crashed this rank at comm op {op}")
            }
            CommError::InjectedHang { rank, op } => {
                write!(f, "rank {rank}: fault plan hung this rank at comm op {op}")
            }
            CommError::NotInGroup { rank, group } => {
                write!(f, "rank {rank} is not a member of collective group {group:?}")
            }
            CommError::InvalidTopology { rank, world, node_size } => write!(
                f,
                "rank {rank}: node size {node_size} does not divide group size {world}"
            ),
            CommError::ProgressLost { rank } => {
                write!(f, "rank {rank}: communication progress thread is gone")
            }
            CommError::ProgressStalled { rank, waited } => {
                write!(
                    f,
                    "rank {rank}: pending op unanswered after {waited:?} \
                     (progress thread wedged)"
                )
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        let crash = CommError::InjectedCrash { rank: 2, op: 7 };
        assert!(crash.is_self_fault());
        assert_eq!(crash.rank(), 2);

        let lost = CommError::PeerLost { rank: 1, peer: 2 };
        assert!(!lost.is_self_fault());
        assert_eq!(lost.rank(), 1);
    }

    #[test]
    fn displays_are_informative() {
        let e = CommError::Corrupt { rank: 0, peer: 3, declared_crc: 1, actual_crc: 2 };
        let s = e.to_string();
        assert!(s.contains("rank 0") && s.contains("peer 3") && s.contains("corrupt"));
    }
}
