//! Non-blocking collective machinery: the progress thread, its job queue,
//! and the [`PendingOp`] completion handle.
//!
//! Every communication op a rank issues — blocking or not — is a
//! [`Request`] enqueued on the rank's progress thread. The thread drains
//! the queue in FIFO order and runs each op against the rank's private
//! [`Fabric`](crate::world::Fabric), so the *fabric-visible* op order is
//! exactly the issue order. That single property carries all the
//! correctness arguments over from the synchronous engine unchanged:
//!
//! * **Deadlock-freedom** — ranks run an SPMD schedule; identical issue
//!   order per rank means the rings pair up exactly as before.
//! * **Fault coordinates** — "the Nth fabric op on rank R" counts the same
//!   ops in the same order, so [`FaultPlan`](crate::fault::FaultPlan)
//!   triggers hit the same message whether the caller overlapped or not.
//! * **Volume accounting** — the same `send_raw` path records the same
//!   bytes/messages; overlap changes *when*, never *how much*.
//!
//! The blocking collectives in `collectives.rs` are thin wrappers that
//! submit and immediately `wait()`; `start_*` returns the [`PendingOp`] so
//! the caller can compute while the ring runs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::collectives::{Precision, ReduceOp};
use crate::error::CommError;
use crate::group::Group;
use crate::stats::{CollectiveKind, TrafficStats};
use crate::world::Fabric;
use zero_trace::{SpanCategory, TraceRecorder, TRACK_PROGRESS};

/// How often the progress thread re-checks its queue for disconnection.
/// Purely a liveness bound on thread shutdown; queued jobs wake it
/// immediately.
const PROGRESS_TICK: Duration = Duration::from_millis(50);

/// One communication op, self-contained: owns copies of its inputs so it
/// can cross to the progress thread.
pub(crate) enum Request {
    /// In-place ring all-reduce over `group`.
    AllReduce { group: Group, data: Vec<f32>, op: ReduceOp, prec: Precision },
    /// Ring reduce-scatter with explicit per-member counts; the result is
    /// this rank's reduced chunk (`counts[idx]` elements).
    ReduceScatter { group: Group, input: Vec<f32>, op: ReduceOp, counts: Vec<usize>, prec: Precision },
    /// Ring all-gather with explicit per-member counts; the result is the
    /// full `Σ counts` buffer.
    AllGather { group: Group, shard: Vec<f32>, counts: Vec<usize>, prec: Precision },
    /// Block-quantized ring all-gather (ZeRO++ qwZ); the result is the
    /// full `Σ counts` buffer, dequantized identically on every member.
    AllGatherQuant { group: Group, shard: Vec<f32>, counts: Vec<usize>, block: usize },
    /// Two-phase quantized reduce-scatter (ZeRO++ qgZ); the result is
    /// this rank's reduced chunk (`counts[idx]` elements).
    ReduceScatterQgz {
        group: Group,
        input: Vec<f32>,
        op: ReduceOp,
        counts: Vec<usize>,
        node_size: usize,
        block: usize,
        prec: Precision,
    },
    /// Pipelined broadcast from `root`; the result is the final buffer.
    Broadcast { group: Group, root: usize, data: Vec<f32>, prec: Precision },
    /// Chain reduce to `root`; non-roots get their input back unchanged.
    Reduce { group: Group, root: usize, data: Vec<f32>, op: ReduceOp, prec: Precision },
    /// All-to-all chunk transpose; the result has `input` length.
    AllToAll { group: Group, input: Vec<f32>, prec: Precision },
    /// Gather at `root` (result `out_len` elements there, empty elsewhere).
    Gather { group: Group, root: usize, shard: Vec<f32>, out_len: usize, prec: Precision },
    /// Scatter from `root`; the result is this rank's `shard_len` chunk.
    Scatter { group: Group, root: usize, input: Vec<f32>, shard_len: usize, prec: Precision },
    /// Point-to-point send (empty result).
    Send { dst: usize, data: Vec<f32> },
    /// Point-to-point receive of the next payload from `src`.
    Recv { src: usize },
    /// World barrier (empty result).
    Barrier,
    /// A modeled host↔device memory-tier transfer (ZeRO-Offload traffic):
    /// no fabric messages move, but the transfer occupies the FIFO
    /// progress thread for `delay`, so tier latency serializes with the
    /// rank's collectives and hides behind compute exactly like they do.
    /// Recorded as a byte-tagged [`SpanCategory::Tier`] span named
    /// `label` (empty result).
    TierMove { bytes: u64, delay: Duration, label: &'static str },
}

impl Request {
    /// The stats kind this op's execution time is attributed to, if any.
    fn kind(&self) -> Option<CollectiveKind> {
        match self {
            Request::AllReduce { .. } => Some(CollectiveKind::AllReduce),
            Request::ReduceScatter { .. } | Request::ReduceScatterQgz { .. } => {
                Some(CollectiveKind::ReduceScatter)
            }
            Request::AllGather { .. } | Request::AllGatherQuant { .. } => {
                Some(CollectiveKind::AllGather)
            }
            Request::Broadcast { .. } => Some(CollectiveKind::Broadcast),
            Request::Reduce { .. } => Some(CollectiveKind::Reduce),
            Request::AllToAll { .. }
            | Request::Gather { .. }
            | Request::Scatter { .. }
            | Request::Send { .. }
            | Request::Recv { .. } => Some(CollectiveKind::P2p),
            Request::Barrier | Request::TierMove { .. } => None,
        }
    }
}

/// A queued op plus the channel its result is delivered on.
pub(crate) struct Job {
    pub(crate) req: Request,
    pub(crate) done: Sender<Result<Vec<f32>, CommError>>,
}

/// Handle to an in-flight communication op.
///
/// Obtained from `start_reduce_scatter*` / `start_all_gather*` (or
/// internally by every blocking collective). The op advances on the rank's
/// progress thread regardless of what the holder does; [`PendingOp::wait`]
/// blocks until the result (or the op's typed failure) arrives.
///
/// Dropping the handle without waiting does **not** cancel the op — it
/// still executes, keeping the rank's fabric schedule aligned with its
/// SPMD peers; only the result is discarded.
#[must_use = "an unwaited PendingOp discards its result and any error"]
pub struct PendingOp {
    rank: usize,
    kind: Option<CollectiveKind>,
    done: Receiver<Result<Vec<f32>, CommError>>,
    budget: Duration,
    stats: Arc<TrafficStats>,
    trace: Arc<TraceRecorder>,
    /// True if the job could not even be enqueued (progress thread gone).
    lost: bool,
}

impl PendingOp {
    pub(crate) fn new(
        rank: usize,
        kind: Option<CollectiveKind>,
        done: Receiver<Result<Vec<f32>, CommError>>,
        budget: Duration,
        stats: Arc<TrafficStats>,
        trace: Arc<TraceRecorder>,
        lost: bool,
    ) -> PendingOp {
        PendingOp { rank, kind, done, budget, stats, trace, lost }
    }

    /// Blocks until the op completes, returning its result payload (shape
    /// depends on the op — see [`Request`]) or its typed failure.
    ///
    /// The wait is bounded: the fabric bounds every op by its receive
    /// timeouts, and the budget covers the worst legal case for this op
    /// plus everything queued ahead of it, so exceeding it surfaces as
    /// [`CommError::ProgressStalled`] instead of blocking forever. Caller
    /// blocked time is recorded per kind in
    /// [`TrafficStats::timing`](crate::stats::TrafficStats::timing).
    pub fn wait(self) -> Result<Vec<f32>, CommError> {
        if self.lost {
            return Err(CommError::ProgressLost { rank: self.rank });
        }
        let span = match self.kind {
            Some(kind) => self.trace.begin(SpanCategory::Wait, kind.name()),
            None => zero_trace::SpanId::NULL,
        };
        let t0 = Instant::now();
        let res = match self.done.recv_timeout(self.budget) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => {
                Err(CommError::ProgressStalled { rank: self.rank, waited: self.budget })
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(CommError::ProgressLost { rank: self.rank })
            }
        };
        if let Some(kind) = self.kind {
            self.stats.record_wait(kind, t0.elapsed());
        }
        self.trace.end(span);
        res
    }
}

/// The per-rank progress loop: drains the FIFO job queue against the
/// rank's fabric until every `Communicator`/`PendingOp` sender is gone.
pub(crate) fn progress_loop(mut fabric: Fabric, jobs: Receiver<Job>, queued: Arc<AtomicUsize>) {
    loop {
        match jobs.recv_timeout(PROGRESS_TICK) {
            Ok(job) => {
                let kind = job.req.kind();
                // One collective span per executed op, byte-tagged with the
                // traffic-counter delta its execution produced: only this
                // thread records sends on this fabric, so the delta is
                // exactly the op's own volume and timeline byte sums
                // reconcile with `TrafficStats` by construction. The span
                // is recorded before the completion send so a waiter that
                // returns is guaranteed to see it in the timeline.
                let (span, bytes_before) = match kind {
                    Some(kind) => (
                        fabric.trace.begin_on(
                            TRACK_PROGRESS,
                            SpanCategory::Collective,
                            kind.name(),
                        ),
                        fabric.stats.bytes(kind),
                    ),
                    None => (zero_trace::SpanId::NULL, 0),
                };
                // Tier moves are not collectives (no fabric traffic, no
                // stats kind) but still get a byte-tagged span on the
                // progress track: the tag is the modeled transfer volume,
                // which the trace-conformance tests reconcile against the
                // plan's tier stream.
                let tier = match &job.req {
                    Request::TierMove { bytes, label, .. } => Some((
                        *bytes,
                        fabric.trace.begin_on(TRACK_PROGRESS, SpanCategory::Tier, label),
                    )),
                    _ => None,
                };
                let t0 = Instant::now();
                let res = exec(&mut fabric, job.req);
                if let Some(kind) = kind {
                    fabric.stats.record_exec(kind, t0.elapsed());
                    fabric.trace.end_with_bytes(span, fabric.stats.bytes(kind) - bytes_before);
                }
                if let Some((bytes, span)) = tier {
                    fabric.trace.end_with_bytes(span, bytes);
                }
                queued.fetch_sub(1, Ordering::SeqCst);
                // The waiter may have dropped its handle; the op already
                // ran (keeping the SPMD schedule aligned), so a missing
                // listener is not an error.
                let _ = job.done.send(res);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // `fabric` drops here: endpoints close and peers observe `PeerLost`.
}

/// Runs one request against the fabric. Bodies live in
/// `collectives.rs`/`world.rs` (`impl Fabric`) and are byte-for-byte the
/// former synchronous implementations, so every check — fault trigger,
/// membership, sequence, CRC — fires in the same order it always did.
fn exec(fabric: &mut Fabric, req: Request) -> Result<Vec<f32>, CommError> {
    match req {
        Request::AllReduce { group, mut data, op, prec } => {
            fabric.all_reduce_in(&group, &mut data, op, prec)?;
            Ok(data)
        }
        Request::ReduceScatter { group, input, op, counts, prec } => {
            let out_len = match group.local_index(fabric.rank) {
                Some(idx) => counts[idx],
                None => 0,
            };
            let mut out = vec![0.0; out_len];
            fabric.reduce_scatter_var_in(&group, &input, &mut out, op, &counts, prec)?;
            Ok(out)
        }
        Request::AllGather { group, shard, counts, prec } => {
            let mut out = vec![0.0; counts.iter().sum()];
            fabric.all_gather_var_in(&group, &shard, &mut out, &counts, prec)?;
            Ok(out)
        }
        Request::AllGatherQuant { group, shard, counts, block } => {
            let mut out = vec![0.0; counts.iter().sum()];
            fabric.all_gather_quant_in(&group, &shard, &mut out, &counts, block)?;
            Ok(out)
        }
        Request::ReduceScatterQgz { group, input, op, counts, node_size, block, prec } => {
            let out_len = match group.local_index(fabric.rank) {
                Some(idx) => counts[idx],
                None => 0,
            };
            let mut out = vec![0.0; out_len];
            fabric.reduce_scatter_qgz_in(
                &group, &input, &mut out, op, &counts, node_size, block, prec,
            )?;
            Ok(out)
        }
        Request::Broadcast { group, root, mut data, prec } => {
            fabric.broadcast_in(&group, root, &mut data, prec)?;
            Ok(data)
        }
        Request::Reduce { group, root, mut data, op, prec } => {
            fabric.reduce_in(&group, root, &mut data, op, prec)?;
            Ok(data)
        }
        Request::AllToAll { group, input, prec } => {
            let mut out = vec![0.0; input.len()];
            fabric.all_to_all_in(&group, &input, &mut out, prec)?;
            Ok(out)
        }
        Request::Gather { group, root, shard, out_len, prec } => {
            let mut out = vec![0.0; out_len];
            fabric.gather_in(&group, root, &shard, &mut out, prec)?;
            Ok(out)
        }
        Request::Scatter { group, root, input, shard_len, prec } => {
            let mut shard = vec![0.0; shard_len];
            fabric.scatter_in(&group, root, &input, &mut shard, prec)?;
            Ok(shard)
        }
        Request::Send { dst, data } => {
            fabric.send_p2p(dst, data)?;
            Ok(Vec::new())
        }
        Request::Recv { src } => fabric.recv_p2p(src),
        Request::Barrier => {
            fabric.barrier()?;
            Ok(Vec::new())
        }
        Request::TierMove { delay, .. } => {
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
            Ok(Vec::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::collectives::chunk_range;
    use crate::error::CommError;
    use crate::fault::FaultPlan;
    use crate::group::Group;
    use crate::stats::CollectiveKind;
    use crate::world::{launch, try_launch_with_config, WorldConfig};
    use crate::{Precision, ReduceOp};
    use std::time::Duration;

    #[test]
    fn started_op_completes_while_caller_computes() {
        let n = 4;
        let len = 16;
        let results = launch(n, move |mut c| {
            let g = Group::world(n);
            let input: Vec<f32> = (0..len).map(|i| (i + c.rank()) as f32).collect();
            let counts: Vec<usize> = (0..n).map(|i| chunk_range(len, n, i).len()).collect();
            let pending =
                c.start_reduce_scatter_var(&g, &input, ReduceOp::Sum, &counts, Precision::Fp32);
            // "Compute" while the ring runs on the progress thread.
            let local: f32 = (0..1000).map(|x| (x as f32).sqrt()).sum();
            let chunk = pending.wait().unwrap();
            (local, chunk)
        });
        for (rank, (_, got)) in results.iter().enumerate() {
            let r = chunk_range(len, n, rank);
            for (j, &v) in got.iter().enumerate() {
                let want: f32 = (0..n).map(|rr| (r.start + j + rr) as f32).sum();
                assert_eq!(v, want, "rank {rank} element {j}");
            }
        }
    }

    #[test]
    fn multiple_in_flight_ops_complete_in_fifo_order() {
        let n = 3;
        let len = 9;
        let results = launch(n, move |mut c| {
            let g = Group::world(n);
            let counts: Vec<usize> = (0..n).map(|i| chunk_range(len, n, i).len()).collect();
            // Queue three all-gathers back to back, then wait in order.
            let mut pendings = Vec::new();
            for round in 0..3 {
                let shard: Vec<f32> = chunk_range(len, n, c.rank())
                    .map(|i| (i * 10 + round) as f32)
                    .collect();
                pendings.push(c.start_all_gather_var(&g, &shard, &counts, Precision::Fp32));
            }
            pendings.into_iter().map(|p| p.wait().unwrap()).collect::<Vec<_>>()
        });
        for got in &results {
            for (round, out) in got.iter().enumerate() {
                let want: Vec<f32> = (0..len).map(|i| (i * 10 + round) as f32).collect();
                assert_eq!(out, &want, "round {round}");
            }
        }
    }

    #[test]
    fn crash_during_in_flight_op_surfaces_typed_error_without_deadlock() {
        // Rank 0's fault plan kills it at its first reduce-scatter — which
        // is in flight (started, not waited) when the fault fires. The
        // victim's wait() must yield the typed InjectedCrash and the peers
        // must observe PeerLost/Timeout, never a deadlock.
        let n = 3;
        let len = 12;
        let config = WorldConfig {
            recv_timeout: Duration::from_millis(200),
            faults: FaultPlan::new().with_crash_at_kind(0, CollectiveKind::ReduceScatter, 0),
            ..WorldConfig::default()
        };
        let out = try_launch_with_config(n, config, move |mut c| {
            let g = Group::world(n);
            let input = vec![1.0_f32; len];
            let counts: Vec<usize> = (0..n).map(|i| chunk_range(len, n, i).len()).collect();
            let pending =
                c.start_reduce_scatter_var(&g, &input, ReduceOp::Sum, &counts, Precision::Fp32);
            pending.wait().map(|_| ())
        });
        assert_eq!(
            out[0].as_ref().unwrap(),
            &Err(CommError::InjectedCrash { rank: 0, op: 0 })
        );
        for (rank, res) in out.iter().enumerate().skip(1) {
            match res.as_ref().unwrap() {
                Err(CommError::PeerLost { .. }) | Err(CommError::Timeout { .. }) => {}
                other => panic!("rank {rank}: expected PeerLost/Timeout, got {other:?}"),
            }
        }
    }

    #[test]
    fn dropped_pending_op_still_executes_and_keeps_schedule_aligned() {
        // Dropping a handle discards the result but the op still runs on
        // the progress thread, so a later collective pairs up correctly on
        // every rank.
        let n = 2;
        let results = launch(n, move |mut c| {
            let g = Group::world(n);
            let input = vec![(c.rank() + 1) as f32; 4];
            let counts: Vec<usize> = (0..n).map(|i| chunk_range(4, n, i).len()).collect();
            drop(c.start_reduce_scatter_var(&g, &input, ReduceOp::Sum, &counts, Precision::Fp32));
            let mut buf = vec![c.rank() as f32; 2];
            c.all_reduce_in(&g, &mut buf, ReduceOp::Sum, Precision::Fp32).unwrap();
            buf[0]
        });
        assert_eq!(results, vec![1.0; n]);
    }

    #[test]
    fn link_latency_is_hidden_by_overlap() {
        // With a modeled per-hop latency, computing while a started op is
        // in flight must block the caller for (measurably) less time than
        // the op executes on the progress thread.
        let n = 2;
        let len = 8;
        let lat = Duration::from_millis(20);
        let config = WorldConfig::with_link_latency(lat);
        let out = try_launch_with_config(n, config, move |mut c| {
            let g = Group::world(n);
            let counts: Vec<usize> = (0..n).map(|i| chunk_range(len, n, i).len()).collect();
            let shard: Vec<f32> = chunk_range(len, n, c.rank()).map(|i| i as f32).collect();
            let pending = c.start_all_gather_var(&g, &shard, &counts, Precision::Fp32);
            // Sleep past the single ring hop: by wait() time the result is in.
            std::thread::sleep(lat * 3);
            pending.wait().map(|out| {
                let t = c.stats().timing();
                (out, t.wait_nanos(CollectiveKind::AllGather), t.exec_nanos(CollectiveKind::AllGather))
            })
        });
        for (rank, r) in out.iter().enumerate() {
            let (data, wait_ns, exec_ns) = r.as_ref().unwrap().as_ref().unwrap();
            let want: Vec<f32> = (0..len).map(|i| i as f32).collect();
            assert_eq!(data, &want, "rank {rank}");
            // The hop latency (≥ 20ms) was paid on the progress thread...
            assert!(*exec_ns >= lat.as_nanos() as u64, "rank {rank}: exec {exec_ns}ns");
            // ...while the caller, who slept past it, barely blocked.
            assert!(
                *wait_ns < exec_ns / 2,
                "rank {rank}: wait {wait_ns}ns not hidden vs exec {exec_ns}ns"
            );
        }
    }
}
