//! Per-block affine quantization for compressed collectives (ZeRO++).
//!
//! The ZeRO++ levers (qwZ, qgZ) shrink inter-node traffic by sending int8
//! codes instead of fp16/fp32 values: every `block` consecutive elements
//! share an fp32 scale and zero-point, so a chunk of `len` elements costs
//! `len + 8·⌈len/block⌉` logical bytes on the wire (one code byte per
//! element plus scale+zero per block) instead of `2·len`/`4·len`.
//!
//! The affine map is symmetric around the block midpoint: with
//! `zero = (lo+hi)/2` and `scale = (hi−lo)/254`, codes span `[-127, 127]`
//! and dequantization `v̂ = zero + code·scale` reconstructs any in-block
//! value with absolute error at most `scale/2` — the bound the randomized
//! round-trip tests below pin down.
//!
//! Two entry points with different non-finite policies:
//!
//! * [`quantize`] — the public API; rejects NaN/Inf inputs with a typed
//!   [`QuantError`], because quantizing garbage silently would launder an
//!   upstream bug into plausible-looking numbers.
//! * [`quantize_for_transport`] — the collective-internal path; a block
//!   containing a non-finite value is *poisoned* (`scale = NaN`) so that
//!   dequantization reproduces non-finite values and fp16 gradient
//!   overflow still trips the loss-scale skip logic after a compressed
//!   reduce, exactly as it does on the raw path.

use std::fmt;

/// Default quantization block size (elements per scale/zero-point pair).
pub const DEFAULT_QUANT_BLOCK: usize = 64;

/// Typed rejection from the public quantization API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantError {
    /// The input contains a NaN or infinite value at `index`.
    NonFinite {
        /// Index of the first offending element.
        index: usize,
    },
    /// The block size was zero.
    ZeroBlock,
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::NonFinite { index } => {
                write!(f, "non-finite value at element {index} cannot be quantized")
            }
            QuantError::ZeroBlock => write!(f, "quantizer block size must be positive"),
        }
    }
}

impl std::error::Error for QuantError {}

/// Logical wire bytes of a block-quantized chunk of `len` elements: one
/// int8 code per element plus an fp32 scale and zero-point per block.
///
/// # Panics
/// Panics if `block == 0`.
pub fn quant_wire_bytes(len: usize, block: usize) -> u64 {
    assert!(block > 0, "quantizer block size must be positive");
    (len + 8 * len.div_ceil(block)) as u64
}

/// A block-quantized buffer: int8 codes plus per-block affine parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockQuantized {
    /// Element count of the original buffer.
    pub len: usize,
    /// Elements per block (the last block may be shorter).
    pub block: usize,
    /// Per-block scale. `NaN` marks a poisoned block (transport mode):
    /// the source block contained a non-finite value, and dequantization
    /// reproduces NaN for every element of it.
    pub scales: Vec<f32>,
    /// Per-block zero-point (the block's value midpoint).
    pub zeros: Vec<f32>,
    /// One code in `[-127, 127]` per element.
    pub codes: Vec<i8>,
}

/// Converts a clamped affine residual to an int8 code. The caller has
/// already clamped to `[-127.0, 127.0]`, so the narrowing conversion is
/// range-checked by construction.
#[inline]
fn clamped_code(c: f32) -> i8 {
    debug_assert!((-127.0..=127.0).contains(&c));
    c as i8
}

fn quantize_block(chunk: &[f32], scales: &mut Vec<f32>, zeros: &mut Vec<f32>, codes: &mut Vec<i8>) {
    let lo = chunk.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = chunk.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    // Midpoint and scale computed in halves so extreme-magnitude blocks
    // cannot overflow to infinity.
    let zero = 0.5 * lo + 0.5 * hi;
    let scale = hi / 254.0 - lo / 254.0;
    scales.push(scale);
    zeros.push(zero);
    if scale == 0.0 {
        // Constant block: every value equals the zero-point exactly.
        codes.extend(std::iter::repeat_n(0_i8, chunk.len()));
        return;
    }
    let inv = 1.0 / scale;
    for &v in chunk {
        let c = ((v - zero) * inv).round().clamp(-127.0, 127.0);
        codes.push(clamped_code(c));
    }
}

/// Block-quantizes `values`, rejecting non-finite input with a typed
/// error. Use [`quantize_for_transport`] inside collectives, where
/// non-finite gradients are an expected mixed-precision event that must
/// propagate rather than fail.
pub fn quantize(values: &[f32], block: usize) -> Result<BlockQuantized, QuantError> {
    if block == 0 {
        return Err(QuantError::ZeroBlock);
    }
    if let Some(index) = values.iter().position(|v| !v.is_finite()) {
        return Err(QuantError::NonFinite { index });
    }
    Ok(quantize_for_transport(values, block))
}

/// Block-quantizes `values` for the wire: blocks containing non-finite
/// values are poisoned (`scale = NaN`) instead of rejected, so overflow
/// survives a compressed collective and downstream skip detection fires.
///
/// # Panics
/// Panics if `block == 0`.
pub fn quantize_for_transport(values: &[f32], block: usize) -> BlockQuantized {
    assert!(block > 0, "quantizer block size must be positive");
    let nb = values.len().div_ceil(block);
    let mut scales = Vec::with_capacity(nb);
    let mut zeros = Vec::with_capacity(nb);
    let mut codes = Vec::with_capacity(values.len());
    for chunk in values.chunks(block) {
        if chunk.iter().all(|v| v.is_finite()) {
            quantize_block(chunk, &mut scales, &mut zeros, &mut codes);
        } else {
            scales.push(f32::NAN);
            zeros.push(0.0);
            codes.extend(std::iter::repeat_n(0_i8, chunk.len()));
        }
    }
    BlockQuantized { len: values.len(), block, scales, zeros, codes }
}

impl BlockQuantized {
    /// Reconstructs the buffer: `v̂ = zero + code·scale` per element.
    /// Poisoned blocks (`scale = NaN`) dequantize to NaN throughout.
    pub fn dequantize(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.len);
        for (b, chunk) in self.codes.chunks(self.block.max(1)).enumerate() {
            let scale = self.scales[b];
            let zero = self.zeros[b];
            if scale.is_nan() {
                out.extend(std::iter::repeat_n(f32::NAN, chunk.len()));
            } else {
                // The clamp keeps finite blocks finite: at extreme
                // magnitudes `zero + 127·scale` can round one ulp past
                // f32::MAX. The original values sit inside the clamp
                // range, so clamping never worsens the error bound.
                out.extend(
                    chunk
                        .iter()
                        .map(|&c| (zero + f32::from(c) * scale).clamp(f32::MIN, f32::MAX)),
                );
            }
        }
        out
    }

    /// Logical wire bytes of this buffer (see [`quant_wire_bytes`]).
    pub fn wire_bytes(&self) -> u64 {
        quant_wire_bytes(self.len, self.block)
    }

    /// Serializes to an f32 stream (`[scales… ‖ zeros… ‖ codes…]`) so the
    /// compressed representation can travel the existing f32 fabric. Int8
    /// codes are exactly representable in f32, so encode/decode round-trips
    /// bit-for-bit and requantization error never compounds across hops.
    pub fn encode(&self) -> Vec<f32> {
        let nb = self.scales.len();
        let mut out = Vec::with_capacity(2 * nb + self.len);
        out.extend_from_slice(&self.scales);
        out.extend_from_slice(&self.zeros);
        out.extend(self.codes.iter().map(|&c| f32::from(c)));
        out
    }

    /// Inverse of [`encode`](Self::encode) for a chunk of known `len` and
    /// `block`.
    ///
    /// # Panics
    /// Panics if the stream length is inconsistent with `len`/`block`.
    pub fn decode(stream: &[f32], len: usize, block: usize) -> BlockQuantized {
        assert!(block > 0, "quantizer block size must be positive");
        let nb = len.div_ceil(block);
        assert_eq!(stream.len(), 2 * nb + len, "quantized stream length mismatch");
        let scales = stream[..nb].to_vec();
        let zeros = stream[nb..2 * nb].to_vec();
        let codes = stream[2 * nb..]
            .iter()
            .map(|&v| clamped_code(v.clamp(-127.0, 127.0)))
            .collect();
        BlockQuantized { len, block, scales, zeros, codes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* generator — the workspace adds no dev
    /// dependencies, so the property-style round-trip sweeps below drive
    /// arbitrary shapes/blocks/values from this instead of proptest.
    struct Rng(u64);

    impl Rng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in [0, 1).
        fn unit(&mut self) -> f32 {
            (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
        }

        fn range(&mut self, lo: f32, hi: f32) -> f32 {
            lo + (hi - lo) * self.unit()
        }

        fn index(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Round-trip error of every element must respect the per-block
    /// `scale/2` bound (with a hair of float-rounding slack).
    fn assert_round_trip_bound(values: &[f32], block: usize) {
        let q = quantize(values, block).expect("finite input must quantize");
        let back = q.dequantize();
        assert_eq!(back.len(), values.len());
        for (b, chunk) in values.chunks(block).enumerate() {
            let scale = q.scales[b];
            assert!(scale.is_finite() && scale >= 0.0, "block {b} scale {scale}");
            let bound = 0.5 * scale * (1.0 + 1e-4) + 1e-30;
            for (j, (&v, &r)) in chunk.iter().zip(&back[b * block..]).enumerate() {
                let err = (v - r).abs();
                assert!(
                    err <= bound,
                    "block {b} elem {j}: |{v} - {r}| = {err} > scale/2 = {}",
                    0.5 * scale
                );
            }
        }
    }

    #[test]
    fn round_trip_error_within_half_scale() {
        let values: Vec<f32> = (0..300).map(|i| (i as f32 * 0.37).sin() * 4.0).collect();
        assert_round_trip_bound(&values, 64);
        assert_round_trip_bound(&values, 7);
        assert_round_trip_bound(&values, 300);
        assert_round_trip_bound(&values, 1000);
    }

    #[test]
    fn randomized_round_trip_bounds_hold_for_arbitrary_shapes() {
        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        for _ in 0..200 {
            let len = rng.index(257); // 0..=256, empty buffers included
            let block = 1 + rng.index(80);
            // Mixed magnitudes: each block can span tiny and large values.
            let mag = 10f32.powf(rng.range(-3.0, 4.0));
            let values: Vec<f32> =
                (0..len).map(|_| rng.range(-mag, mag)).collect();
            assert_round_trip_bound(&values, block);
        }
    }

    #[test]
    fn constant_blocks_are_exact() {
        let values = vec![3.25_f32; 130];
        let q = quantize(&values, 64).unwrap();
        assert_eq!(q.dequantize(), values);
        assert!(q.scales.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn nan_and_inf_rejected_with_typed_errors() {
        let mut values = vec![1.0_f32; 16];
        values[5] = f32::NAN;
        assert_eq!(quantize(&values, 4), Err(QuantError::NonFinite { index: 5 }));
        values[5] = f32::INFINITY;
        assert_eq!(quantize(&values, 4), Err(QuantError::NonFinite { index: 5 }));
        values[5] = f32::NEG_INFINITY;
        assert_eq!(quantize(&values, 4), Err(QuantError::NonFinite { index: 5 }));
        assert_eq!(quantize(&[1.0], 0), Err(QuantError::ZeroBlock));
    }

    #[test]
    fn transport_mode_poisons_only_the_offending_block() {
        let mut values: Vec<f32> = (0..12).map(|i| i as f32).collect();
        values[6] = f32::NAN; // second block of four
        let q = quantize_for_transport(&values, 4);
        let back = q.dequantize();
        assert!(back[..4].iter().all(|v| v.is_finite()));
        assert!(back[4..8].iter().all(|v| v.is_nan()), "poisoned block must stay non-finite");
        assert!(back[8..].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn encode_decode_round_trips_bitwise() {
        let mut rng = Rng(42);
        for _ in 0..50 {
            let len = rng.index(200);
            let block = 1 + rng.index(50);
            let values: Vec<f32> = (0..len).map(|_| rng.range(-9.0, 9.0)).collect();
            let q = quantize_for_transport(&values, block);
            let stream = q.encode();
            assert_eq!(stream.len() as u64, (2 * len.div_ceil(block) + len) as u64);
            let d = BlockQuantized::decode(&stream, len, block);
            assert_eq!(d, q, "decode(encode(q)) must be identity");
        }
    }

    #[test]
    fn wire_bytes_formula() {
        assert_eq!(quant_wire_bytes(0, 64), 0);
        assert_eq!(quant_wire_bytes(1, 64), 1 + 8);
        assert_eq!(quant_wire_bytes(64, 64), 64 + 8);
        assert_eq!(quant_wire_bytes(65, 64), 65 + 16);
        assert_eq!(quant_wire_bytes(1000, 64), 1000 + 8 * 16);
        // Compressed fp16 ratio at the default block: ~1.7× under 2 B/elem.
        assert!(quant_wire_bytes(4096, DEFAULT_QUANT_BLOCK) * 7 < 2 * 4096 * 4);
    }

    #[test]
    fn extreme_magnitudes_do_not_overflow() {
        let values = vec![f32::MAX, f32::MIN, 0.0, 1.0];
        let q = quantize(&values, 4).unwrap();
        assert!(q.scales[0].is_finite());
        let back = q.dequantize();
        assert!(back.iter().all(|v| v.is_finite()));
    }
}
