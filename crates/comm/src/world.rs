//! The communicator "world": N ranks connected all-to-all.
//!
//! A rank in the paper is one GPU process talking NCCL over NVLink/IB.
//! Here a rank is one OS thread by default, and the fabric moves messages
//! through a pluggable [`Transport`]: the in-process backend is a matrix
//! of `std::sync::mpsc` channels — one FIFO per ordered rank pair — while
//! the process backend (`crate::process`) runs each rank as a separate OS
//! process over Unix domain sockets. Because every rank issues the same
//! sequence of collectives (SPMD), per-pair FIFO ordering plus a
//! sequence-number check is sufficient to match sends to receives on
//! either backend.
//!
//! Failure semantics: every receive is bounded by a configurable timeout and
//! every payload carries a CRC, so a dead peer, a hung peer, or a damaged
//! message surfaces as a typed [`CommError`] on the observing rank instead
//! of a deadlock or an abort. Faults can be injected deterministically via
//! [`FaultPlan`] to exercise those paths.
//!
//! Execution model (overlap-centric): the channel endpoints, sequence
//! numbers, CRC checks, and fault state live in a private [`Fabric`] owned
//! by a dedicated *progress thread* per rank. The public [`Communicator`]
//! is a thin handle that enqueues [`Request`]s onto the progress thread's
//! FIFO and receives results through [`PendingOp`] completion channels —
//! `start_*` returns the handle immediately (the op advances on the
//! progress thread), while the classic blocking collectives submit and
//! `wait()` in one call. Because the queue is FIFO and every op goes
//! through it, the fabric executes ops in exactly the order the rank
//! issued them — the same order the synchronous engine used — so the SPMD
//! deadlock-freedom and fault-trigger (`the Nth op on rank R`) coordinates
//! are unchanged.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::crc::crc32_f32s;
use crate::error::CommError;
use crate::fault::{FaultKind, FaultPlan, FaultState};
use crate::nonblocking::{progress_loop, Job, PendingOp, Request};
use crate::stats::{CollectiveKind, TrafficStats};
use crate::transport::{ChannelTransport, Msg, ShutdownLatch, TimeoutBarrier, Transport};
use zero_trace::{SpanCategory, TraceRecorder, TRACK_PROGRESS};

/// Modeled two-tier interconnect: fast links within a node (NVLink), a
/// slow shared link between nodes (IB/Ethernet). Nodes are contiguous
/// blocks of `node_size` global ranks, matching
/// [`NodeTopology`](crate::hierarchical::NodeTopology). Costs are charged per message on
/// the *sender's* progress thread — latency plus logical bytes over
/// bandwidth — so compressed payloads (fewer logical bytes) genuinely
/// serialize faster and async ops can hide the cost.
#[derive(Clone, Copy, Debug)]
pub struct TieredLink {
    /// Ranks per node (node = contiguous block of global ranks).
    pub node_size: usize,
    /// Per-message latency within a node.
    pub intra_latency: Duration,
    /// Intra-node bandwidth, bytes per second.
    pub intra_bytes_per_sec: f64,
    /// Per-message latency across nodes.
    pub inter_latency: Duration,
    /// Inter-node bandwidth, bytes per second.
    pub inter_bytes_per_sec: f64,
}

impl TieredLink {
    /// The modeled cost of sending `logical_bytes` from `src` to `dst`.
    pub fn send_cost(&self, src: usize, dst: usize, logical_bytes: u64) -> Duration {
        let cross = src / self.node_size != dst / self.node_size;
        let (lat, bw) = if cross {
            (self.inter_latency, self.inter_bytes_per_sec)
        } else {
            (self.intra_latency, self.intra_bytes_per_sec)
        };
        lat + Duration::from_secs_f64(logical_bytes as f64 / bw.max(1.0))
    }
}

/// Modeled bandwidth/latency of the host↔device memory-tier link
/// (ZeRO-Offload spill/fetch traffic). Applied on the progress thread to
/// every [`Communicator::start_tier_move`]: the transfer's effective
/// delay is the max of this throttle's cost and the caller's own modeled
/// delay, so either layer (comm config or engine tier config) can be the
/// binding constraint.
#[derive(Clone, Copy, Debug)]
pub struct TierThrottle {
    /// Tier link bandwidth, bytes per second (0 = unthrottled).
    pub bytes_per_sec: u64,
    /// Per-transfer latency.
    pub latency: Duration,
}

impl TierThrottle {
    /// The modeled time `bytes` take to cross the tier link.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        let bw = if self.bytes_per_sec == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec as f64)
        };
        self.latency + bw
    }
}

/// Fabric-wide configuration: receive timeout, fault script, and modeled
/// link latency.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Upper bound on any single blocking receive (and on barrier waits).
    /// Normal in-process latency is microseconds; this only fires when a
    /// peer is dead, hung, or schedule-divergent.
    pub recv_timeout: Duration,
    /// Deterministic fault script (empty by default).
    pub faults: FaultPlan,
    /// Modeled per-hop interconnect latency, applied as a sleep before
    /// every fabric receive. Zero (the default) for tests; benchmarks set
    /// it so the in-process cluster exhibits the communication cost the
    /// paper's §7 overlap analysis is about — the sleep occupies the
    /// progress thread, not the compute thread, so asynchronous ops can
    /// genuinely hide it.
    pub link_latency: Duration,
    /// Modeled two-tier interconnect (intra- vs inter-node latency and
    /// bandwidth), applied as a per-message sender-side cost in addition
    /// to `link_latency`. `None` (the default) models no serialization
    /// cost, preserving existing behavior bit for bit.
    pub tiered_link: Option<TieredLink>,
    /// Modeled host↔device memory-tier link, applied to every
    /// `start_tier_move`. `None` (the default) leaves the caller's own
    /// modeled delay as the only cost.
    pub tier_throttle: Option<TierThrottle>,
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig {
            recv_timeout: Duration::from_secs(30),
            faults: FaultPlan::new(),
            link_latency: Duration::ZERO,
            tiered_link: None,
            tier_throttle: None,
        }
    }
}

impl WorldConfig {
    /// Default timeouts with the given fault script.
    pub fn with_faults(faults: FaultPlan) -> WorldConfig {
        WorldConfig { faults, ..WorldConfig::default() }
    }

    /// Default config with a modeled per-hop link latency.
    pub fn with_link_latency(link_latency: Duration) -> WorldConfig {
        WorldConfig { link_latency, ..WorldConfig::default() }
    }

    /// Default config with a modeled two-tier interconnect.
    ///
    /// # Panics
    /// Panics if `link.node_size == 0`.
    pub fn with_tiered_link(link: TieredLink) -> WorldConfig {
        assert!(link.node_size > 0, "tiered link node size must be positive");
        WorldConfig { tiered_link: Some(link), ..WorldConfig::default() }
    }

    /// Default config with a modeled memory-tier link throttle.
    pub fn with_tier_throttle(throttle: TierThrottle) -> WorldConfig {
        WorldConfig { tier_throttle: Some(throttle), ..WorldConfig::default() }
    }
}

/// Builds the channel fabric and hands out one [`Communicator`] per rank.
pub struct World {
    comms: Vec<Option<Communicator>>,
    stats: Vec<Arc<TrafficStats>>,
    traces: Vec<Arc<TraceRecorder>>,
}

impl World {
    /// Creates a world of `n` fully connected ranks with default config.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> World {
        World::with_config(n, WorldConfig::default())
    }

    /// Creates a world of `n` fully connected ranks.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn with_config(n: usize, config: WorldConfig) -> World {
        assert!(n > 0, "world size must be positive");
        // Grow the endpoint matrix directly in its final per-rank shape:
        // outboxes[src][dst] pairs with inboxes[dst][src], no Option
        // juggling and nothing to unwrap.
        let mut outboxes: Vec<Vec<Sender<Msg>>> =
            (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut inboxes: Vec<Vec<Receiver<Msg>>> = Vec::with_capacity(n);
        for _dst in 0..n {
            let mut dst_row = Vec::with_capacity(n);
            for src_out in outboxes.iter_mut() {
                let (tx, rx) = channel();
                src_out.push(tx);
                dst_row.push(rx);
            }
            inboxes.push(dst_row);
        }
        let barrier = Arc::new(TimeoutBarrier::new(n));
        let latch = ShutdownLatch::new(n);
        let stats: Vec<Arc<TrafficStats>> = (0..n).map(|_| TrafficStats::new()).collect();
        // One span recorder per rank, all sharing one epoch so per-rank
        // timestamps are comparable in a merged Chrome trace.
        let epoch = Instant::now();
        let traces: Vec<Arc<TraceRecorder>> =
            (0..n).map(|_| Arc::new(TraceRecorder::with_epoch(epoch))).collect();

        let mut comms = Vec::with_capacity(n);
        for (rank, (tx_row, rx_row)) in outboxes.into_iter().zip(inboxes).enumerate() {
            let link = ChannelTransport::new(
                rank,
                tx_row,
                rx_row,
                barrier.clone(),
                latch.clone(),
            );
            comms.push(Some(Communicator::spawn(
                rank,
                n,
                Box::new(link),
                stats[rank].clone(),
                traces[rank].clone(),
                &config,
                latch.clone(),
            )));
        }
        World { comms, stats, traces }
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.stats.len()
    }

    /// Takes rank `r`'s communicator.
    ///
    /// # Panics
    /// Panics if rank `r`'s communicator was already taken. Use
    /// [`World::try_take`] for a non-panicking variant.
    pub fn take(&mut self, rank: usize) -> Communicator {
        self.try_take(rank)
            .unwrap_or_else(|| panic!("communicator for rank {rank} already taken"))
    }

    /// Takes rank `r`'s communicator, or `None` if it was already taken.
    pub fn try_take(&mut self, rank: usize) -> Option<Communicator> {
        self.comms[rank].take()
    }

    /// Traffic counters for rank `r` (usable while ranks run and after).
    pub fn stats(&self, rank: usize) -> Arc<TrafficStats> {
        self.stats[rank].clone()
    }

    /// Span recorder for rank `r` (usable while ranks run and after).
    pub fn trace(&self, rank: usize) -> Arc<TraceRecorder> {
        self.traces[rank].clone()
    }
}

/// One rank's logical endpoint: per-pair sequence numbers, CRC checks,
/// fault state, and traffic accounting over a pluggable [`Transport`]
/// that does the actual byte moving. Ring collectives are built on top in
/// `collectives.rs`. Owned exclusively by the rank's progress thread; the
/// public [`Communicator`] never touches it directly.
pub(crate) struct Fabric {
    pub(crate) rank: usize,
    pub(crate) world: usize,
    link: Box<dyn Transport>,
    send_seq: Box<[u64]>,
    recv_seq: Box<[u64]>,
    pub(crate) stats: Arc<TrafficStats>,
    pub(crate) trace: Arc<TraceRecorder>,
    recv_timeout: Duration,
    link_latency: Duration,
    tiered_link: Option<TieredLink>,
    fault: FaultState,
    dead: bool,
}

impl Fabric {
    /// Registers the start of one communication op of `kind`, applying any
    /// fault the plan scripts at this point in the schedule. Called once
    /// per public collective / p2p / barrier entry.
    pub(crate) fn begin_op(&mut self, kind: CollectiveKind) -> Result<(), CommError> {
        if self.dead {
            // An injected fault already killed this rank; every later op
            // fails fast instead of half-participating in collectives.
            return Err(CommError::InjectedCrash { rank: self.rank, op: 0 });
        }
        let (op, fault) = self.fault.begin_op(kind);
        match fault {
            None => Ok(()),
            Some(FaultKind::Crash) => {
                self.dead = true;
                self.trace.instant_on(TRACK_PROGRESS, SpanCategory::Collective, "fault-crash");
                Err(CommError::InjectedCrash { rank: self.rank, op })
            }
            Some(FaultKind::Hang) => {
                self.trace.instant_on(TRACK_PROGRESS, SpanCategory::Collective, "fault-hang");
                // Stall past every peer's receive timeout so they observe
                // `Timeout`, then report this rank dead. The wait is a
                // cancellable deadline, not a sleep: peers time out first
                // (their recv_timeout < 2×ours), and once every one of
                // them has shut down nobody can still be waiting on us,
                // so the transport releases the progress thread instead
                // of holding it hostage for the rest of the deadline.
                let deadline = Instant::now() + self.recv_timeout * 2;
                self.link.wait_shutdown(deadline);
                self.dead = true;
                Err(CommError::InjectedHang { rank: self.rank, op })
            }
            Some(FaultKind::CorruptNextSend) => {
                self.trace.instant_on(TRACK_PROGRESS, SpanCategory::Collective, "fault-corrupt");
                self.fault.arm_corruption();
                Ok(())
            }
            Some(FaultKind::Delay(d)) => {
                self.trace.instant_on(TRACK_PROGRESS, SpanCategory::Collective, "fault-delay");
                std::thread::sleep(d);
                Ok(())
            }
        }
    }

    /// Sends `data` to `dst`, attributing `logical_bytes` to `kind`.
    ///
    /// `logical_bytes` is passed explicitly because fp16 payloads travel as
    /// widened f32 in-process but must be *accounted* at 2 bytes/element to
    /// match the paper's arithmetic.
    pub(crate) fn send_raw(
        &mut self,
        dst: usize,
        mut data: Vec<f32>,
        kind: CollectiveKind,
        logical_bytes: u64,
    ) -> Result<(), CommError> {
        debug_assert!(dst < self.world && dst != self.rank, "bad dst {dst}");
        if let Some(link) = self.tiered_link {
            // Modeled serialization cost of the two-tier interconnect,
            // paid on the progress thread like `link_latency` so overlap
            // can hide it. Charged on logical bytes: a compressed payload
            // really does clear the slow link sooner.
            std::thread::sleep(link.send_cost(self.rank, dst, logical_bytes));
        }
        let seq = self.send_seq[dst];
        self.send_seq[dst] += 1;
        self.stats.record_send(kind, logical_bytes);
        // Checksum first, then apply any armed corruption: the damage must
        // be invisible to the sender, exactly like a real network flip.
        let crc = crc32_f32s(&data);
        if let Some((elem, bit)) = self.fault.take_corruption(data.len()) {
            data[elem] = f32::from_bits(data[elem].to_bits() ^ (1 << bit));
        }
        self.link.send_msg(dst, Msg { seq, crc, data })
    }

    /// Receives the next message from `src`, verifying schedule agreement
    /// and payload integrity, bounded by the receive timeout.
    pub(crate) fn recv_raw(&mut self, src: usize) -> Result<Vec<f32>, CommError> {
        debug_assert!(src < self.world && src != self.rank, "bad src {src}");
        if !self.link_latency.is_zero() {
            // Modeled per-hop interconnect latency (see `WorldConfig`).
            // Slept here — on the progress thread — so in-flight async ops
            // pay it while the compute thread keeps running.
            std::thread::sleep(self.link_latency);
        }
        let msg = self.link.recv_msg(src, self.recv_timeout)?;
        let expect = self.recv_seq[src];
        if msg.seq != expect {
            return Err(CommError::OutOfOrder {
                rank: self.rank,
                peer: src,
                got: msg.seq,
                expected: expect,
            });
        }
        let actual = crc32_f32s(&msg.data);
        if actual != msg.crc {
            return Err(CommError::Corrupt {
                rank: self.rank,
                peer: src,
                declared_crc: msg.crc,
                actual_crc: actual,
            });
        }
        self.recv_seq[src] += 1;
        Ok(msg.data)
    }

    /// Point-to-point send of an f32 payload (fabric side).
    pub(crate) fn send_p2p(&mut self, dst: usize, data: Vec<f32>) -> Result<(), CommError> {
        self.begin_op(CollectiveKind::P2p)?;
        let bytes = 4 * data.len() as u64;
        self.send_raw(dst, data, CollectiveKind::P2p, bytes)
    }

    /// Point-to-point receive of the next payload from `src` (fabric side).
    pub(crate) fn recv_p2p(&mut self, src: usize) -> Result<Vec<f32>, CommError> {
        self.begin_op(CollectiveKind::P2p)?;
        self.recv_raw(src)
    }

    /// Blocks until every rank in the world reaches the barrier, or the
    /// receive timeout elapses with ranks missing (fabric side).
    pub(crate) fn barrier(&mut self) -> Result<(), CommError> {
        if self.dead {
            return Err(CommError::InjectedCrash { rank: self.rank, op: 0 });
        }
        self.link.barrier(self.recv_timeout)
    }
}

/// One rank's handle: submits ops to the rank's progress thread and waits
/// on their completion channels. Point-to-point primitives and the barrier
/// live here; ring collectives are built on top in `collectives.rs`.
///
/// A `Communicator` is owned by exactly one thread (it is `Send` but not
/// `Sync`), matching NCCL's one-communicator-per-device rule. Dropping it
/// disconnects the job queue, which stops the progress thread and drops
/// the fabric endpoints — peers observe the rank's death as `PeerLost`,
/// exactly as when the rank thread owned the endpoints directly.
pub struct Communicator {
    rank: usize,
    world: usize,
    stats: Arc<TrafficStats>,
    trace: Arc<TraceRecorder>,
    recv_timeout: Duration,
    jobs: Sender<Job>,
    /// Ops submitted but not yet finished by the progress thread; sizes
    /// the wait budget of newly submitted ops (FIFO: everything already
    /// queued runs first).
    queued: Arc<AtomicUsize>,
    /// Modeled memory-tier link for `start_tier_move` delays.
    tier_throttle: Option<TierThrottle>,
    /// World-shared shutdown accounting: departed on drop so a hung
    /// peer's deadline wait can cancel once every other handle is gone.
    latch: Arc<ShutdownLatch>,
}

impl Drop for Communicator {
    fn drop(&mut self) {
        self.latch.depart();
    }
}

impl Communicator {
    /// Builds the rank's [`Fabric`] over `link`, starts its progress
    /// thread, and returns the public handle — the one construction path
    /// shared by every backend (`World` for threads-over-channels,
    /// `crate::process` for processes-over-sockets).
    pub(crate) fn spawn(
        rank: usize,
        world: usize,
        link: Box<dyn Transport>,
        stats: Arc<TrafficStats>,
        trace: Arc<TraceRecorder>,
        config: &WorldConfig,
        latch: Arc<ShutdownLatch>,
    ) -> Communicator {
        let fabric = Fabric {
            rank,
            world,
            link,
            send_seq: vec![0; world].into(),
            recv_seq: vec![0; world].into(),
            stats: stats.clone(),
            trace: trace.clone(),
            recv_timeout: config.recv_timeout,
            link_latency: config.link_latency,
            tiered_link: config.tiered_link,
            fault: config.faults.for_rank(rank),
            dead: false,
        };
        let (jobs_tx, jobs_rx) = channel::<Job>();
        let queued = Arc::new(AtomicUsize::new(0));
        let thread_queued = queued.clone();
        // Detached on purpose: the thread owns only 'static state (its
        // transport endpoints, Arc'd stats) and exits as soon as the last
        // job sender — the Communicator handle — drops, which also drops
        // the fabric endpoints so peers observe `PeerLost` exactly as
        // they did when the rank thread owned them.
        std::thread::spawn(move || progress_loop(fabric, jobs_rx, thread_queued));
        Communicator {
            rank,
            world,
            stats,
            trace,
            recv_timeout: config.recv_timeout,
            jobs: jobs_tx,
            queued,
            tier_throttle: config.tier_throttle,
            latch,
        }
    }

    /// This rank's id in `0..world_size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    #[inline]
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// This rank's traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// This rank's span recorder. Collective execution and wait spans land
    /// here automatically; engine code adds compute/optimizer/checkpoint
    /// spans on the same recorder so one timeline covers the whole rank.
    pub fn trace(&self) -> Arc<TraceRecorder> {
        self.trace.clone()
    }

    /// The configured receive timeout.
    pub fn recv_timeout(&self) -> Duration {
        self.recv_timeout
    }

    /// Enqueues `req` on the progress thread and returns its completion
    /// handle. Never blocks; a dead progress thread surfaces as
    /// [`CommError::ProgressLost`] when the handle is waited.
    pub(crate) fn submit(&mut self, kind: Option<CollectiveKind>, req: Request) -> PendingOp {
        let (done_tx, done_rx) = channel();
        let behind = self.queued.fetch_add(1, Ordering::SeqCst);
        let lost = self.jobs.send(Job { req, done: done_tx }).is_err();
        // Budget: the fabric bounds every op by its own receive timeouts —
        // at most 2(n−1) ring receives plus a 2× hang-fault stall — so a
        // result slower than (2n+6)·recv_timeout per queued op means the
        // progress engine itself is broken, not a peer.
        let per_op = 2 * self.world + 6;
        let depth = (behind + 1).min(64);
        let budget = self.recv_timeout * (per_op * depth) as u32;
        PendingOp::new(
            self.rank,
            kind,
            done_rx,
            budget,
            self.stats.clone(),
            self.trace.clone(),
            lost,
        )
    }

    /// Point-to-point send of an f32 buffer.
    pub fn send(&mut self, dst: usize, data: &[f32]) -> Result<(), CommError> {
        let pending =
            self.submit(Some(CollectiveKind::P2p), Request::Send { dst, data: data.to_vec() });
        pending.wait().map(|_| ())
    }

    /// Point-to-point receive into `buf`.
    ///
    /// # Panics
    /// Panics if the incoming message length differs from `buf.len()`.
    pub fn recv(&mut self, src: usize, buf: &mut [f32]) -> Result<(), CommError> {
        let pending = self.submit(Some(CollectiveKind::P2p), Request::Recv { src });
        let data = pending.wait()?;
        assert_eq!(data.len(), buf.len(), "p2p length mismatch");
        buf.copy_from_slice(&data);
        Ok(())
    }

    /// Blocks until every rank in the world reaches the barrier, or the
    /// receive timeout elapses with ranks missing.
    pub fn barrier(&mut self) -> Result<(), CommError> {
        let pending = self.submit(None, Request::Barrier);
        pending.wait().map(|_| ())
    }

    /// Starts a modeled host↔device memory-tier transfer of `bytes`
    /// (ZeRO-Offload traffic). No fabric messages move; the transfer
    /// occupies this rank's FIFO progress thread for
    /// `max(delay, throttle cost)` and records a byte-tagged `Tier` span,
    /// so tier traffic serializes with — and can hide behind compute
    /// exactly like — the rank's collectives. Waiting the handle returns
    /// an empty payload.
    pub fn start_tier_move(
        &mut self,
        label: &'static str,
        bytes: u64,
        delay: Duration,
    ) -> PendingOp {
        let delay = match self.tier_throttle {
            Some(t) => delay.max(t.transfer_time(bytes)),
            None => delay,
        };
        self.submit(None, Request::TierMove { bytes, delay, label })
    }
}

/// A rank's terminal failure, as reported by [`try_launch`]: the rank index
/// plus the panic payload or communication error that killed it.
#[derive(Clone, Debug, PartialEq)]
pub struct RankFailure {
    /// Which rank failed.
    pub rank: usize,
    /// The typed communication error, when the rank died of one.
    pub comm: Option<CommError>,
    /// Human-readable failure description (panic payload or error text).
    pub message: String,
}

impl std::fmt::Display for RankFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} failed: {}", self.rank, self.message)
    }
}

impl std::error::Error for RankFailure {}

fn describe_panic(rank: usize, payload: Box<dyn std::any::Any + Send>) -> RankFailure {
    // Panic payloads are almost always &str or String; a rank that dies of
    // a comm error may also `panic_any(CommError)` — preserve the type.
    let payload = match payload.downcast::<CommError>() {
        Ok(e) => {
            return RankFailure { rank, comm: Some(*e.clone()), message: e.to_string() }
        }
        Err(p) => p,
    };
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    RankFailure { rank, comm: None, message }
}

/// Runs `f` on `n` ranks (one thread each) and returns their per-rank
/// outcomes in rank order: `Ok(result)` for ranks that returned, `Err` with
/// the rank index and panic payload for ranks that panicked. Never panics
/// on rank failure itself.
pub fn try_launch<F, R>(n: usize, f: F) -> Vec<Result<R, RankFailure>>
where
    F: Fn(Communicator) -> R + Send + Sync,
    R: Send,
{
    try_launch_with_config(n, WorldConfig::default(), f)
}

/// [`try_launch`] with an explicit [`WorldConfig`] (timeouts, fault plan).
pub fn try_launch_with_config<F, R>(
    n: usize,
    config: WorldConfig,
    f: F,
) -> Vec<Result<R, RankFailure>>
where
    F: Fn(Communicator) -> R + Send + Sync,
    R: Send,
{
    let mut world = World::with_config(n, config);
    let comms: Vec<Communicator> = (0..n).map(|r| world.take(r)).collect();
    let mut results: Vec<Option<Result<R, RankFailure>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = &f;
                s.spawn(move || f(c))
            })
            .collect();
        for (rank, (slot, h)) in results.iter_mut().zip(handles).enumerate() {
            *slot = Some(h.join().map_err(|payload| describe_panic(rank, payload)));
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

/// Runs `f` on `n` ranks (one thread each) and returns their results in
/// rank order.
///
/// # Panics
/// Panics if any rank panics, naming the rank and its panic payload.
pub fn launch<F, R>(n: usize, f: F) -> Vec<R>
where
    F: Fn(Communicator) -> R + Send + Sync,
    R: Send,
{
    launch_with_config(n, WorldConfig::default(), f)
}

/// [`launch`] with an explicit [`WorldConfig`] (timeouts, fault plan).
///
/// # Panics
/// Panics if any rank panics, naming the rank and its panic payload.
pub fn launch_with_config<F, R>(n: usize, config: WorldConfig, f: F) -> Vec<R>
where
    F: Fn(Communicator) -> R + Send + Sync,
    R: Send,
{
    try_launch_with_config(n, config, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("rank panicked: {e}")))
        .collect()
}

/// Like [`launch`] but also returns each rank's traffic snapshot.
pub fn launch_with_stats<F, R>(n: usize, f: F) -> (Vec<R>, Vec<crate::stats::TrafficSnapshot>)
where
    F: Fn(Communicator) -> R + Send + Sync,
    R: Send,
{
    let mut world = World::new(n);
    let stats: Vec<_> = (0..n).map(|r| world.stats(r)).collect();
    let comms: Vec<Communicator> = (0..n).map(|r| world.take(r)).collect();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = &f;
                s.spawn(move || f(c))
            })
            .collect();
        for (rank, (slot, h)) in results.iter_mut().zip(handles).enumerate() {
            *slot = Some(h.join().unwrap_or_else(|payload| {
                panic!("rank panicked: {}", describe_panic(rank, payload))
            }));
        }
    });
    let snaps = stats.iter().map(|s| s.snapshot()).collect();
    (results.into_iter().map(|r| r.unwrap()).collect(), snaps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_ring_pass() {
        let out = launch(4, |mut c| {
            let n = c.world_size();
            let next = (c.rank() + 1) % n;
            let prev = (c.rank() + n - 1) % n;
            let payload = vec![c.rank() as f32; 3];
            if c.rank() % 2 == 0 {
                c.send(next, &payload).unwrap();
                let mut buf = vec![0.0; 3];
                c.recv(prev, &mut buf).unwrap();
                buf[0]
            } else {
                let mut buf = vec![0.0; 3];
                c.recv(prev, &mut buf).unwrap();
                c.send(next, &payload).unwrap();
                buf[0]
            }
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        launch(8, |mut c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier().unwrap();
            // After the barrier every rank must observe all 8 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn barrier_is_reusable() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        launch(4, |mut c| {
            for round in 1..=3 {
                counter.fetch_add(1, Ordering::SeqCst);
                c.barrier().unwrap();
                assert!(counter.load(Ordering::SeqCst) >= 4 * round);
                c.barrier().unwrap();
            }
        });
    }

    #[test]
    fn stats_count_p2p_bytes() {
        let (_, snaps) = launch_with_stats(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, &[1.0; 10]).unwrap();
            } else {
                let mut buf = [0.0; 10];
                c.recv(0, &mut buf).unwrap();
            }
        });
        assert_eq!(snaps[0].bytes(CollectiveKind::P2p), 40);
        assert_eq!(snaps[1].bytes(CollectiveKind::P2p), 0);
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_world_rejected() {
        let _ = World::new(0);
    }

    #[test]
    fn take_twice_names_the_rank() {
        let mut world = World::new(2);
        let _c = world.take(1);
        assert!(world.try_take(1).is_none(), "second take must not succeed");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = world.take(1);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("rank 1"), "panic must name the rank: {msg}");
        // Rank 0 is still available.
        assert!(world.try_take(0).is_some());
    }

    #[test]
    fn dead_peer_surfaces_as_peer_lost() {
        let config = WorldConfig {
            recv_timeout: Duration::from_secs(5),
            ..WorldConfig::default()
        };
        let out = try_launch_with_config(2, config, |mut c| {
            if c.rank() == 0 {
                // Exit immediately, dropping all endpoints.
                Ok(())
            } else {
                let mut buf = [0.0; 4];
                c.recv(0, &mut buf)
            }
        });
        assert_eq!(out[0], Ok(Ok(())));
        assert_eq!(
            out[1].as_ref().unwrap(),
            &Err(CommError::PeerLost { rank: 1, peer: 0 })
        );
    }

    #[test]
    fn silent_peer_surfaces_as_timeout() {
        let timeout = Duration::from_millis(100);
        let config = WorldConfig { recv_timeout: timeout, ..WorldConfig::default() };
        let out = try_launch_with_config(2, config, move |mut c| {
            if c.rank() == 0 {
                // Stay alive (endpoint open) but never send, longer than
                // the peer's timeout.
                std::thread::sleep(timeout * 3);
                Ok(())
            } else {
                let mut buf = [0.0; 4];
                c.recv(0, &mut buf)
            }
        });
        assert_eq!(
            out[1].as_ref().unwrap(),
            &Err(CommError::Timeout { rank: 1, peer: 0, waited: timeout })
        );
    }

    #[test]
    fn corrupted_payload_surfaces_as_corrupt() {
        let config = WorldConfig::with_faults(FaultPlan::seeded(3).with_corruption(0, 0));
        let out = try_launch_with_config(2, config, |mut c| {
            if c.rank() == 0 {
                // The sender is oblivious: its send succeeds.
                c.send(1, &[1.0; 16]).map(|_| Vec::new())
            } else {
                let mut buf = vec![0.0; 16];
                c.recv(0, &mut buf).map(|_| buf)
            }
        });
        assert!(out[0].as_ref().unwrap().is_ok(), "sender must not notice");
        match out[1].as_ref().unwrap() {
            Err(CommError::Corrupt { rank: 1, peer: 0, .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn injected_crash_kills_only_the_victim() {
        let config = WorldConfig {
            recv_timeout: Duration::from_secs(5),
            faults: FaultPlan::new().with_crash(0, 0),
            ..WorldConfig::default()
        };
        let out = try_launch_with_config(2, config, |mut c| {
            if c.rank() == 0 {
                c.send(1, &[1.0; 4])
            } else {
                let mut buf = [0.0; 4];
                c.recv(0, &mut buf)
            }
        });
        assert_eq!(
            out[0].as_ref().unwrap(),
            &Err(CommError::InjectedCrash { rank: 0, op: 0 })
        );
        // Rank 1 observes the loss as a typed error, not a deadlock.
        assert_eq!(
            out[1].as_ref().unwrap(),
            &Err(CommError::PeerLost { rank: 1, peer: 0 })
        );
    }

    #[test]
    fn barrier_with_dead_rank_times_out() {
        let timeout = Duration::from_millis(100);
        let config = WorldConfig { recv_timeout: timeout, ..WorldConfig::default() };
        let out = try_launch_with_config(3, config, move |mut c| {
            if c.rank() == 2 {
                // Never arrives at the barrier.
                return Ok(());
            }
            c.barrier()
        });
        for (rank, o) in out.iter().enumerate().take(2) {
            assert_eq!(
                o.as_ref().unwrap(),
                &Err(CommError::BarrierTimeout { rank, waited: timeout })
            );
        }
    }

    #[test]
    fn try_launch_reports_rank_and_payload() {
        let out = try_launch(2, |c| {
            if c.rank() == 1 {
                panic!("rank 1 exploding on purpose");
            }
            c.rank()
        });
        assert_eq!(out[0], Ok(0));
        let failure = out[1].as_ref().unwrap_err();
        assert_eq!(failure.rank, 1);
        assert!(failure.message.contains("exploding on purpose"));
    }

    #[test]
    fn launch_panic_names_the_rank() {
        let err = std::panic::catch_unwind(|| {
            launch(3, |c| {
                if c.rank() == 2 {
                    panic!("boom at rank two");
                }
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("rank 2"), "panic must name the rank: {msg}");
        assert!(msg.contains("boom at rank two"), "panic must carry payload: {msg}");
    }

    #[test]
    fn delay_fault_is_transparent() {
        let config = WorldConfig::with_faults(
            FaultPlan::new().with_delay(0, 0, Duration::from_millis(20)),
        );
        let out = launch_with_config(2, config, |mut c| {
            if c.rank() == 0 {
                c.send(1, &[7.0; 2]).unwrap();
                0.0
            } else {
                let mut buf = [0.0; 2];
                c.recv(0, &mut buf).unwrap();
                buf[0]
            }
        });
        assert_eq!(out[1], 7.0);
    }
}
