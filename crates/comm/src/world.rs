//! The communicator "world": N ranks connected all-to-all.
//!
//! A rank in the paper is one GPU process talking NCCL over NVLink/IB.
//! Here a rank is one OS thread, and the fabric is a matrix of crossbeam
//! channels — one FIFO per ordered rank pair. Because every rank issues the
//! same sequence of collectives (SPMD), per-pair FIFO ordering plus a
//! sequence-number check is sufficient to match sends to receives.

use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::stats::{CollectiveKind, TrafficStats};

/// A message between two ranks: an opaque f32 payload plus a per-channel
/// sequence number used to detect mismatched collective schedules.
pub(crate) struct Msg {
    pub seq: u64,
    pub data: Vec<f32>,
}

/// Builds the channel fabric and hands out one [`Communicator`] per rank.
pub struct World {
    comms: Vec<Option<Communicator>>,
    stats: Vec<Arc<TrafficStats>>,
}

impl World {
    /// Creates a world of `n` fully connected ranks.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> World {
        assert!(n > 0, "world size must be positive");
        // senders[dst][src] pairs with receivers[dst][src].
        let mut senders: Vec<Vec<Option<Sender<Msg>>>> = (0..n).map(|_| vec![None; n]).collect();
        let mut receivers: Vec<Vec<Option<Receiver<Msg>>>> =
            (0..n).map(|_| vec![None; n]).collect();
        for dst in 0..n {
            for src in 0..n {
                let (tx, rx) = unbounded();
                senders[dst][src] = Some(tx);
                receivers[dst][src] = Some(rx);
            }
        }
        let barrier = Arc::new(Barrier::new(n));
        let stats: Vec<Arc<TrafficStats>> = (0..n).map(|_| TrafficStats::new()).collect();

        // Re-group: rank r needs send handles to every dst and its own recv row.
        let mut comms = Vec::with_capacity(n);
        let mut recv_rows: Vec<Vec<Receiver<Msg>>> = receivers
            .into_iter()
            .map(|row| row.into_iter().map(|r| r.unwrap()).collect())
            .collect();
        // Transpose the sender matrix so each rank owns its outgoing handles.
        let mut send_rows: Vec<Vec<Sender<Msg>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        for dst_row in senders.iter_mut() {
            for (src, slot) in dst_row.iter_mut().enumerate() {
                send_rows[src].push(slot.take().unwrap());
            }
        }
        for (rank, (tx_row, rx_row)) in
            send_rows.into_iter().zip(recv_rows.drain(..)).enumerate()
        {
            comms.push(Some(Communicator {
                rank,
                world: n,
                to_peer: tx_row,
                from_peer: rx_row,
                send_seq: vec![0; n].into(),
                recv_seq: vec![0; n].into(),
                barrier: barrier.clone(),
                stats: stats[rank].clone(),
            }));
        }
        World { comms, stats }
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.stats.len()
    }

    /// Takes rank `r`'s communicator (panics if taken twice).
    pub fn take(&mut self, rank: usize) -> Communicator {
        self.comms[rank].take().expect("communicator already taken")
    }

    /// Traffic counters for rank `r` (usable while ranks run and after).
    pub fn stats(&self, rank: usize) -> Arc<TrafficStats> {
        self.stats[rank].clone()
    }
}

/// One rank's endpoint: point-to-point primitives, a barrier, and traffic
/// accounting. Ring collectives are built on top in `collectives.rs`.
///
/// A `Communicator` is owned by exactly one thread (it is `Send` but not
/// `Sync`), matching NCCL's one-communicator-per-device rule.
pub struct Communicator {
    rank: usize,
    world: usize,
    to_peer: Vec<Sender<Msg>>,
    from_peer: Vec<Receiver<Msg>>,
    send_seq: Box<[u64]>,
    recv_seq: Box<[u64]>,
    barrier: Arc<Barrier>,
    stats: Arc<TrafficStats>,
}

impl Communicator {
    /// This rank's id in `0..world_size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    #[inline]
    pub fn world_size(&self) -> usize {
        self.world
    }

    /// This rank's traffic counters.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Sends `data` to `dst`, attributing `logical_bytes` to `kind`.
    ///
    /// `logical_bytes` is passed explicitly because fp16 payloads travel as
    /// widened f32 in-process but must be *accounted* at 2 bytes/element to
    /// match the paper's arithmetic.
    pub(crate) fn send_raw(
        &mut self,
        dst: usize,
        data: Vec<f32>,
        kind: CollectiveKind,
        logical_bytes: u64,
    ) {
        debug_assert!(dst < self.world && dst != self.rank, "bad dst {dst}");
        let seq = self.send_seq[dst];
        self.send_seq[dst] += 1;
        self.stats.record_send(kind, logical_bytes);
        self.to_peer[dst]
            .send(Msg { seq, data })
            .expect("peer hung up mid-collective");
    }

    /// Receives the next message from `src`, verifying schedule agreement.
    pub(crate) fn recv_raw(&mut self, src: usize) -> Vec<f32> {
        debug_assert!(src < self.world && src != self.rank, "bad src {src}");
        let msg = self
            .from_peer[src]
            .recv()
            .expect("peer hung up mid-collective");
        let expect = self.recv_seq[src];
        assert_eq!(
            msg.seq, expect,
            "rank {} received out-of-order message from {} (seq {} expected {})",
            self.rank, src, msg.seq, expect
        );
        self.recv_seq[src] += 1;
        msg.data
    }

    /// Point-to-point send of an f32 buffer.
    pub fn send(&mut self, dst: usize, data: &[f32]) {
        self.send_raw(dst, data.to_vec(), CollectiveKind::P2p, 4 * data.len() as u64);
    }

    /// Point-to-point receive into `buf`.
    ///
    /// # Panics
    /// Panics if the incoming message length differs from `buf.len()`.
    pub fn recv(&mut self, src: usize, buf: &mut [f32]) {
        let data = self.recv_raw(src);
        assert_eq!(data.len(), buf.len(), "p2p length mismatch");
        buf.copy_from_slice(&data);
    }

    /// Blocks until every rank in the world reaches the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// Runs `f` on `n` ranks (one thread each) and returns their results in
/// rank order. Panics in any rank propagate.
pub fn launch<F, R>(n: usize, f: F) -> Vec<R>
where
    F: Fn(Communicator) -> R + Send + Sync,
    R: Send,
{
    let mut world = World::new(n);
    let comms: Vec<Communicator> = (0..n).map(|r| world.take(r)).collect();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = &f;
                s.spawn(move || f(c))
            })
            .collect();
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank panicked"));
        }
    });
    results.into_iter().map(|r| r.unwrap()).collect()
}

/// Like [`launch`] but also returns each rank's traffic snapshot.
pub fn launch_with_stats<F, R>(n: usize, f: F) -> (Vec<R>, Vec<crate::stats::TrafficSnapshot>)
where
    F: Fn(Communicator) -> R + Send + Sync,
    R: Send,
{
    let mut world = World::new(n);
    let stats: Vec<_> = (0..n).map(|r| world.stats(r)).collect();
    let comms: Vec<Communicator> = (0..n).map(|r| world.take(r)).collect();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|c| {
                let f = &f;
                s.spawn(move || f(c))
            })
            .collect();
        for (slot, h) in results.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("rank panicked"));
        }
    });
    let snaps = stats.iter().map(|s| s.snapshot()).collect();
    (results.into_iter().map(|r| r.unwrap()).collect(), snaps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_ring_pass() {
        let out = launch(4, |mut c| {
            let n = c.world_size();
            let next = (c.rank() + 1) % n;
            let prev = (c.rank() + n - 1) % n;
            let payload = vec![c.rank() as f32; 3];
            if c.rank() % 2 == 0 {
                c.send(next, &payload);
                let mut buf = vec![0.0; 3];
                c.recv(prev, &mut buf);
                buf[0]
            } else {
                let mut buf = vec![0.0; 3];
                c.recv(prev, &mut buf);
                c.send(next, &payload);
                buf[0]
            }
        });
        assert_eq!(out, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        launch(8, |c| {
            counter.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all 8 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn stats_count_p2p_bytes() {
        let (_, snaps) = launch_with_stats(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, &[1.0; 10]);
            } else {
                let mut buf = [0.0; 10];
                c.recv(0, &mut buf);
            }
        });
        assert_eq!(snaps[0].bytes(CollectiveKind::P2p), 40);
        assert_eq!(snaps[1].bytes(CollectiveKind::P2p), 0);
    }

    #[test]
    #[should_panic(expected = "world size must be positive")]
    fn zero_world_rejected() {
        let _ = World::new(0);
    }
}
