//! CRC-32 (IEEE 802.3 polynomial) over message and checkpoint payloads.
//!
//! Both the channel fabric (per-message integrity) and `zero-core`'s
//! snapshot format (per-file integrity) use this one implementation, so a
//! bit flipped anywhere in a payload — in flight or at rest — is detected
//! by the same checksum.

/// Reflected polynomial for CRC-32/ISO-HDLC (the zlib/ethernet CRC).
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Streaming CRC-32 state, for checksumming data as it is written/read.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh checksum state.
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state = (self.state >> 8) ^ TABLE[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// CRC-32 of an f32 slice, over its little-endian byte image (matching how
/// snapshots serialize floats, so in-flight and at-rest checksums agree).
pub fn crc32_f32s(data: &[f32]) -> u32 {
    let mut c = Crc32::new();
    for v in data {
        c.update(&v.to_le_bytes());
    }
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer() {
        // CRC-32/ISO-HDLC of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn f32_crc_matches_byte_crc() {
        let floats = [1.0f32, -2.5, 3.25e7, f32::MIN_POSITIVE];
        let bytes: Vec<u8> = floats.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(crc32_f32s(&floats), crc32(&bytes));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0.5f32; 64];
        let clean = crc32_f32s(&data);
        data[17] = f32::from_bits(data[17].to_bits() ^ (1 << 3));
        assert_ne!(clean, crc32_f32s(&data));
    }
}
