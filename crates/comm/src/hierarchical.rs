//! Hierarchical (two-level) all-reduce.
//!
//! On a DGX-2 cluster the flat ring crosses the slow inter-node links
//! (N−1) times per element. The standard topology-aware alternative —
//! what NCCL trees/hierarchies approximate — reduces in three phases:
//!
//! 1. **intra-node reduce-scatter** over the fast fabric: each local rank
//!    ends up owning 1/G of the node's sum (G = ranks per node);
//! 2. **inter-node all-reduce** of each owner's chunk across nodes: only
//!    1/G of the data crosses the slow links per rank;
//! 3. **intra-node all-gather** to redistribute the final sums.
//!
//! Total per-rank volume matches the flat ring asymptotically, but the
//! *inter-node* share drops from ≈2Ψ to ≈2Ψ/G — why MP-in-the-node ×
//! DP-across-nodes (the paper's §1 layout) is bandwidth-sane. The
//! distinction is measurable here because phases run in different groups
//! whose traffic is metered separately.

use crate::collectives::{chunk_range, Precision, ReduceOp};
use crate::error::CommError;
use crate::group::Group;
use crate::world::Communicator;

/// Topology for the two-level reduction: ranks `[node·G, node·G + G)`
/// share a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeTopology {
    /// Ranks per node G.
    pub ranks_per_node: usize,
}

impl NodeTopology {
    /// Creates a topology; world size must be a multiple of `g`.
    pub fn new(g: usize) -> NodeTopology {
        assert!(g > 0, "ranks_per_node must be positive");
        NodeTopology { ranks_per_node: g }
    }

    /// Checked constructor: rejects a node size that does not evenly
    /// divide `world` (which would silently mis-group the tail ranks —
    /// `node_group` would hand them members beyond the world) with a
    /// typed [`CommError::InvalidTopology`].
    pub fn for_world(g: usize, world: usize, rank: usize) -> Result<NodeTopology, CommError> {
        if g == 0 || !world.is_multiple_of(g) {
            return Err(CommError::InvalidTopology { rank, world, node_size: g });
        }
        Ok(NodeTopology { ranks_per_node: g })
    }

    /// The intra-node group of `rank`.
    pub fn node_group(&self, rank: usize) -> Group {
        let g = self.ranks_per_node;
        let base = rank / g * g;
        Group::new((base..base + g).collect())
    }

    /// The inter-node group of `rank`: the same local slot on every node.
    pub fn cross_group(&self, rank: usize, world: usize) -> Group {
        let g = self.ranks_per_node;
        let slot = rank % g;
        Group::new((0..world / g).map(|n| n * g + slot).collect())
    }
}

impl Communicator {
    /// Two-level all-reduce: intra-node reduce-scatter, inter-node
    /// all-reduce of the owned chunk, intra-node all-gather. Numerically
    /// equivalent to [`Communicator::all_reduce`] up to reassociation.
    ///
    /// Returns [`CommError::InvalidTopology`] if the world size is not a
    /// multiple of `topo.ranks_per_node` — the two-level grouping would
    /// otherwise silently assign out-of-world members to the tail node.
    pub fn hierarchical_all_reduce(
        &mut self,
        topo: &NodeTopology,
        buf: &mut [f32],
        op: ReduceOp,
        prec: Precision,
    ) -> Result<(), CommError> {
        let world = self.world_size();
        let g = topo.ranks_per_node;
        if !world.is_multiple_of(g) {
            return Err(CommError::InvalidTopology {
                rank: self.rank(),
                world,
                node_size: g,
            });
        }
        if world == 1 {
            // Degenerate: behave like the flat collective.
            return self.all_reduce(buf, op, prec);
        }
        let rank = self.rank();
        let node_group = topo.node_group(rank);
        let cross_group = topo.cross_group(rank, world);
        let local_idx = crate::collectives::member_index(&node_group, rank)?;
        let total = buf.len();
        let my_chunk = chunk_range(total, g, local_idx);

        // Mean semantics: sum through the hierarchy, divide once at the end.
        let inner_op = if op == ReduceOp::Mean { ReduceOp::Sum } else { op };

        // Phase 1: intra-node reduce-scatter; this rank owns `my_chunk`.
        let mut shard = vec![0.0; my_chunk.len()];
        self.reduce_scatter_in(&node_group, buf, &mut shard, inner_op, prec)?;

        // Phase 2: inter-node all-reduce of the owned chunk only.
        self.all_reduce_in(&cross_group, &mut shard, inner_op, prec)?;

        // Phase 3: intra-node all-gather of the finished chunks.
        self.all_gather_in(&node_group, &shard, buf, prec)?;

        if op == ReduceOp::Mean {
            let inv = 1.0 / world as f32;
            for v in buf.iter_mut() {
                *v *= inv;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CollectiveKind;
    use crate::world::{launch, launch_with_stats};

    #[test]
    fn matches_flat_all_reduce() {
        for (world, g) in [(4usize, 2usize), (8, 4), (6, 3), (8, 1), (4, 4)] {
            let topo = NodeTopology::new(g);
            let len = 37;
            let results = launch(world, move |mut c| {
                let mut a: Vec<f32> = (0..len).map(|i| (c.rank() * 10 + i) as f32).collect();
                let mut b = a.clone();
                c.all_reduce(&mut a, ReduceOp::Sum, Precision::Fp32).unwrap();
                c.hierarchical_all_reduce(&topo, &mut b, ReduceOp::Sum, Precision::Fp32).unwrap();
                (a, b)
            });
            for (flat, hier) in &results {
                for (x, y) in flat.iter().zip(hier) {
                    assert!((x - y).abs() < 1e-3, "world {world} g {g}: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn mean_divides_by_world() {
        let topo = NodeTopology::new(2);
        let results = launch(4, move |mut c| {
            let mut buf = vec![(c.rank() + 1) as f32; 8];
            c.hierarchical_all_reduce(&topo, &mut buf, ReduceOp::Mean, Precision::Fp32).unwrap();
            buf
        });
        for r in &results {
            for &v in r {
                assert!((v - 2.5).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn cross_node_volume_shrinks_by_node_size() {
        // The point of the hierarchy: the inter-node phase only moves the
        // 1/G chunk. Compare metered inter-phase bytes against flat.
        let len = 1024usize;
        let world = 8;
        let g = 4;
        let topo = NodeTopology::new(g);
        // Hierarchical: cross-node traffic is exactly the phase-2
        // all-reduce over the (world/g)-rank group of a len/g chunk.
        let (_, snaps) = launch_with_stats(world, move |mut c| {
            let mut buf = vec![1.0_f32; len];
            c.hierarchical_all_reduce(&topo, &mut buf, ReduceOp::Sum, Precision::Fp32).unwrap();
        });
        let cross_nodes = world / g;
        let chunk = len / g;
        let want_cross = (2 * chunk * (cross_nodes - 1) / cross_nodes * 4) as u64;
        // Phase 2 is the only AllReduce-kind traffic in the hierarchy
        // (phases 1/3 are ReduceScatter/AllGather kinds).
        for s in &snaps {
            assert_eq!(s.bytes(CollectiveKind::AllReduce), want_cross);
        }
        // A flat ring would move 2·len·(world−1)/world per rank across
        // mixed links; the hierarchy's slow-link share is G× smaller.
        let flat = 2.0 * len as f64 * (world - 1) as f64 / world as f64 * 4.0;
        assert!(
            (want_cross as f64) < flat / (g as f64 - 1.0),
            "cross-node traffic {want_cross} should be ≪ flat {flat}"
        );
    }

    #[test]
    fn node_and_cross_groups_partition_the_world() {
        let topo = NodeTopology::new(4);
        for rank in 0..8 {
            let ng = topo.node_group(rank);
            let cg = topo.cross_group(rank, 8);
            assert_eq!(ng.len(), 4);
            assert_eq!(cg.len(), 2);
            assert!(ng.contains(rank) && cg.contains(rank));
            // They intersect exactly at `rank`.
            let overlap: Vec<usize> = ng
                .members()
                .iter()
                .filter(|m| cg.contains(**m))
                .copied()
                .collect();
            assert_eq!(overlap, vec![rank]);
        }
    }

    #[test]
    fn indivisible_world_yields_typed_error() {
        // Every rank gets the typed error back (no panic, no deadlock):
        // the divisibility check happens before any message is exchanged.
        let topo = NodeTopology::new(3);
        let errs = launch(4, move |mut c| {
            let mut buf = vec![0.0_f32; 4];
            c.hierarchical_all_reduce(&topo, &mut buf, ReduceOp::Sum, Precision::Fp32)
                .unwrap_err()
        });
        for (rank, e) in errs.iter().enumerate() {
            assert_eq!(*e, CommError::InvalidTopology { rank, world: 4, node_size: 3 });
            assert_eq!(e.rank(), rank);
            assert!(!e.is_self_fault());
        }
    }

    #[test]
    fn checked_constructor_rejects_indivisible_worlds() {
        assert!(NodeTopology::for_world(2, 8, 0).is_ok());
        assert!(NodeTopology::for_world(8, 8, 0).is_ok());
        assert_eq!(
            NodeTopology::for_world(3, 8, 5),
            Err(CommError::InvalidTopology { rank: 5, world: 8, node_size: 3 })
        );
        assert_eq!(
            NodeTopology::for_world(0, 8, 1),
            Err(CommError::InvalidTopology { rank: 1, world: 8, node_size: 0 })
        );
        assert_eq!(NodeTopology::for_world(4, 8, 0).unwrap().ranks_per_node, 4);
    }
}
