//! Per-rank communication traffic accounting.
//!
//! §7 of the paper argues entirely in terms of *bytes sent per rank per
//! training step* (all-reduce = 2Ψ, ZeRO stage 2 = 2Ψ, stage 3 = 3Ψ).
//! Every collective in this crate records its send volume here so tests and
//! the `comm_volume` experiment can verify those claims empirically rather
//! than by assertion.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The collective operation categories tracked separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CollectiveKind {
    /// Ring all-reduce (reduce-scatter + all-gather fused).
    AllReduce = 0,
    /// Ring reduce-scatter.
    ReduceScatter = 1,
    /// Ring all-gather.
    AllGather = 2,
    /// Pipelined ring broadcast.
    Broadcast = 3,
    /// Reduce to a root.
    Reduce = 4,
    /// Point-to-point send/recv.
    P2p = 5,
}

impl CollectiveKind {
    /// Stable lowercase name, used as the span name of every collective
    /// recorded in a rank's trace (and in human-readable reports).
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::AllReduce => "all-reduce",
            CollectiveKind::ReduceScatter => "reduce-scatter",
            CollectiveKind::AllGather => "all-gather",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Reduce => "reduce",
            CollectiveKind::P2p => "p2p",
        }
    }
}

/// Number of tracked categories.
pub const KIND_COUNT: usize = 6;

/// All tracked categories, in discriminant order.
pub const ALL_KINDS: [CollectiveKind; KIND_COUNT] = [
    CollectiveKind::AllReduce,
    CollectiveKind::ReduceScatter,
    CollectiveKind::AllGather,
    CollectiveKind::Broadcast,
    CollectiveKind::Reduce,
    CollectiveKind::P2p,
];

/// Thread-safe per-rank traffic counters.
///
/// Shared between the rank's `Communicator` handle (caller-side writer),
/// its progress thread (fabric-side writer), and the launching code
/// (reader, usable while the ranks run and after they join). All counters
/// are relaxed atomics: each is an independent monotonic sum, so no
/// ordering between counters is ever relied on.
#[derive(Debug, Default)]
pub struct TrafficStats {
    bytes_sent: [AtomicU64; KIND_COUNT],
    messages_sent: [AtomicU64; KIND_COUNT],
    /// Nanoseconds the *caller* spent blocked in `PendingOp::wait` per
    /// kind. Under full overlap this approaches zero while `exec_nanos`
    /// stays constant — the gap is exactly the hidden communication.
    wait_nanos: [AtomicU64; KIND_COUNT],
    /// Nanoseconds the progress thread spent *executing* ops per kind
    /// (in-flight time), whether or not anyone was blocked on them.
    exec_nanos: [AtomicU64; KIND_COUNT],
}

impl TrafficStats {
    /// Creates zeroed counters behind an `Arc`.
    pub fn new() -> Arc<TrafficStats> {
        Arc::new(TrafficStats::default())
    }

    /// Records one message of `bytes` payload under `kind`.
    pub fn record_send(&self, kind: CollectiveKind, bytes: u64) {
        self.bytes_sent[kind as usize].fetch_add(bytes, Ordering::Relaxed);
        self.messages_sent[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Records caller-side blocked time in `PendingOp::wait` under `kind`.
    pub fn record_wait(&self, kind: CollectiveKind, waited: Duration) {
        self.wait_nanos[kind as usize]
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records progress-thread execution (in-flight) time under `kind`.
    pub fn record_exec(&self, kind: CollectiveKind, ran: Duration) {
        self.exec_nanos[kind as usize]
            .fetch_add(ran.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Bytes sent under one category.
    pub fn bytes(&self, kind: CollectiveKind) -> u64 {
        self.bytes_sent[kind as usize].load(Ordering::Relaxed)
    }

    /// Messages sent under one category.
    pub fn messages(&self, kind: CollectiveKind) -> u64 {
        self.messages_sent[kind as usize].load(Ordering::Relaxed)
    }

    /// Total bytes sent across all categories.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for i in 0..KIND_COUNT {
            self.bytes_sent[i].store(0, Ordering::Relaxed);
            self.messages_sent[i].store(0, Ordering::Relaxed);
            self.wait_nanos[i].store(0, Ordering::Relaxed);
            self.exec_nanos[i].store(0, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the timing counters. Kept separate from
    /// [`TrafficStats::snapshot`] so volume snapshots stay exactly
    /// comparable across runs (timing is nondeterministic; bytes are not).
    pub fn timing(&self) -> TimingSnapshot {
        let mut wait_nanos = [0u64; KIND_COUNT];
        let mut exec_nanos = [0u64; KIND_COUNT];
        for i in 0..KIND_COUNT {
            wait_nanos[i] = self.wait_nanos[i].load(Ordering::Relaxed);
            exec_nanos[i] = self.exec_nanos[i].load(Ordering::Relaxed);
        }
        TimingSnapshot { wait_nanos, exec_nanos }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        let mut bytes = [0u64; KIND_COUNT];
        let mut messages = [0u64; KIND_COUNT];
        for i in 0..KIND_COUNT {
            bytes[i] = self.bytes_sent[i].load(Ordering::Relaxed);
            messages[i] = self.messages_sent[i].load(Ordering::Relaxed);
        }
        TrafficSnapshot { bytes, messages }
    }
}

/// An immutable copy of a rank's traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    bytes: [u64; KIND_COUNT],
    messages: [u64; KIND_COUNT],
}

impl TrafficSnapshot {
    /// Bytes sent under one category.
    pub fn bytes(&self, kind: CollectiveKind) -> u64 {
        self.bytes[kind as usize]
    }

    /// Messages sent under one category.
    pub fn messages(&self, kind: CollectiveKind) -> u64 {
        self.messages[kind as usize]
    }

    /// Total bytes across all categories.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Per-kind `(kind, bytes, messages)` rows in discriminant order — the
    /// shape trace-conformance checks and benchmark emitters consume when
    /// comparing a whole snapshot against an analytic plan.
    pub fn per_kind(&self) -> [(CollectiveKind, u64, u64); KIND_COUNT] {
        let mut out = [(CollectiveKind::AllReduce, 0, 0); KIND_COUNT];
        for (i, k) in ALL_KINDS.iter().enumerate() {
            out[i] = (*k, self.bytes[i], self.messages[i]);
        }
        out
    }

    /// Difference `self − earlier`, counter-wise (for per-step deltas).
    pub fn delta_since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        let mut bytes = [0u64; KIND_COUNT];
        let mut messages = [0u64; KIND_COUNT];
        for i in 0..KIND_COUNT {
            bytes[i] = self.bytes[i] - earlier.bytes[i];
            messages[i] = self.messages[i] - earlier.messages[i];
        }
        TrafficSnapshot { bytes, messages }
    }
}

/// An immutable copy of a rank's per-kind timing counters: how long the
/// caller was *blocked* on each collective kind (`wait`) vs. how long the
/// progress thread spent *executing* it (`exec`). `exec − wait` per kind is
/// the communication time hidden behind computation by overlap.
///
/// Deliberately not part of [`TrafficSnapshot`]: timing is wall-clock and
/// nondeterministic, while byte/message counts are exact and compared with
/// `==` against analytic plans.
#[derive(Clone, Copy, Debug, Default)]
pub struct TimingSnapshot {
    wait_nanos: [u64; KIND_COUNT],
    exec_nanos: [u64; KIND_COUNT],
}

impl TimingSnapshot {
    /// Nanoseconds blocked in `wait()` under one kind.
    pub fn wait_nanos(&self, kind: CollectiveKind) -> u64 {
        self.wait_nanos[kind as usize]
    }

    /// Nanoseconds of progress-thread execution under one kind.
    pub fn exec_nanos(&self, kind: CollectiveKind) -> u64 {
        self.exec_nanos[kind as usize]
    }

    /// Total blocked nanoseconds across all kinds.
    pub fn total_wait_nanos(&self) -> u64 {
        self.wait_nanos.iter().sum()
    }

    /// Total execution nanoseconds across all kinds.
    pub fn total_exec_nanos(&self) -> u64 {
        self.exec_nanos.iter().sum()
    }

    /// Difference `self − earlier`, counter-wise (for per-step deltas).
    pub fn delta_since(&self, earlier: &TimingSnapshot) -> TimingSnapshot {
        let mut wait_nanos = [0u64; KIND_COUNT];
        let mut exec_nanos = [0u64; KIND_COUNT];
        for i in 0..KIND_COUNT {
            wait_nanos[i] = self.wait_nanos[i] - earlier.wait_nanos[i];
            exec_nanos[i] = self.exec_nanos[i] - earlier.exec_nanos[i];
        }
        TimingSnapshot { wait_nanos, exec_nanos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sums() {
        let s = TrafficStats::new();
        s.record_send(CollectiveKind::AllReduce, 100);
        s.record_send(CollectiveKind::AllReduce, 50);
        s.record_send(CollectiveKind::P2p, 8);
        assert_eq!(s.bytes(CollectiveKind::AllReduce), 150);
        assert_eq!(s.messages(CollectiveKind::AllReduce), 2);
        assert_eq!(s.total_bytes(), 158);
    }

    #[test]
    fn snapshot_delta() {
        let s = TrafficStats::new();
        s.record_send(CollectiveKind::AllGather, 10);
        let a = s.snapshot();
        s.record_send(CollectiveKind::AllGather, 32);
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.bytes(CollectiveKind::AllGather), 32);
        assert_eq!(d.messages(CollectiveKind::AllGather), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = TrafficStats::new();
        s.record_send(CollectiveKind::Broadcast, 77);
        s.record_wait(CollectiveKind::Broadcast, Duration::from_nanos(5));
        s.record_exec(CollectiveKind::Broadcast, Duration::from_nanos(9));
        s.reset();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.messages(CollectiveKind::Broadcast), 0);
        assert_eq!(s.timing().total_wait_nanos(), 0);
        assert_eq!(s.timing().total_exec_nanos(), 0);
    }

    #[test]
    fn timing_accumulates_per_kind() {
        let s = TrafficStats::new();
        s.record_wait(CollectiveKind::ReduceScatter, Duration::from_nanos(100));
        s.record_wait(CollectiveKind::ReduceScatter, Duration::from_nanos(50));
        s.record_exec(CollectiveKind::ReduceScatter, Duration::from_nanos(400));
        let t = s.timing();
        assert_eq!(t.wait_nanos(CollectiveKind::ReduceScatter), 150);
        assert_eq!(t.exec_nanos(CollectiveKind::ReduceScatter), 400);
        assert_eq!(t.wait_nanos(CollectiveKind::AllGather), 0);
        assert_eq!(t.total_exec_nanos(), 400);
        let later = {
            s.record_exec(CollectiveKind::ReduceScatter, Duration::from_nanos(60));
            s.timing()
        };
        assert_eq!(later.delta_since(&t).exec_nanos(CollectiveKind::ReduceScatter), 60);
    }

    #[test]
    fn concurrent_updates_from_two_threads_sum_exactly() {
        // The progress thread and the caller update the same counters
        // concurrently; atomics must lose nothing.
        let s = TrafficStats::new();
        let s2 = s.clone();
        let writer = std::thread::spawn(move || {
            for _ in 0..10_000 {
                s2.record_send(CollectiveKind::AllGather, 3);
                s2.record_exec(CollectiveKind::AllGather, Duration::from_nanos(2));
            }
        });
        for _ in 0..10_000 {
            s.record_send(CollectiveKind::AllGather, 5);
            s.record_wait(CollectiveKind::AllGather, Duration::from_nanos(7));
        }
        writer.join().unwrap();
        assert_eq!(s.bytes(CollectiveKind::AllGather), 10_000 * 3 + 10_000 * 5);
        assert_eq!(s.messages(CollectiveKind::AllGather), 20_000);
        assert_eq!(s.timing().exec_nanos(CollectiveKind::AllGather), 20_000);
        assert_eq!(s.timing().wait_nanos(CollectiveKind::AllGather), 70_000);
    }
}
