//! Per-rank communication traffic accounting.
//!
//! §7 of the paper argues entirely in terms of *bytes sent per rank per
//! training step* (all-reduce = 2Ψ, ZeRO stage 2 = 2Ψ, stage 3 = 3Ψ).
//! Every collective in this crate records its send volume here so tests and
//! the `comm_volume` experiment can verify those claims empirically rather
//! than by assertion.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The collective operation categories tracked separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CollectiveKind {
    /// Ring all-reduce (reduce-scatter + all-gather fused).
    AllReduce = 0,
    /// Ring reduce-scatter.
    ReduceScatter = 1,
    /// Ring all-gather.
    AllGather = 2,
    /// Pipelined ring broadcast.
    Broadcast = 3,
    /// Reduce to a root.
    Reduce = 4,
    /// Point-to-point send/recv.
    P2p = 5,
}

/// Number of tracked categories.
pub const KIND_COUNT: usize = 6;

/// All tracked categories, in discriminant order.
pub const ALL_KINDS: [CollectiveKind; KIND_COUNT] = [
    CollectiveKind::AllReduce,
    CollectiveKind::ReduceScatter,
    CollectiveKind::AllGather,
    CollectiveKind::Broadcast,
    CollectiveKind::Reduce,
    CollectiveKind::P2p,
];

/// Thread-safe per-rank traffic counters.
///
/// Shared between the rank's `Communicator` (writer) and the launching code
/// (reader, typically after the ranks have joined).
#[derive(Debug, Default)]
pub struct TrafficStats {
    bytes_sent: [AtomicU64; KIND_COUNT],
    messages_sent: [AtomicU64; KIND_COUNT],
}

impl TrafficStats {
    /// Creates zeroed counters behind an `Arc`.
    pub fn new() -> Arc<TrafficStats> {
        Arc::new(TrafficStats::default())
    }

    /// Records one message of `bytes` payload under `kind`.
    pub fn record_send(&self, kind: CollectiveKind, bytes: u64) {
        self.bytes_sent[kind as usize].fetch_add(bytes, Ordering::Relaxed);
        self.messages_sent[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes sent under one category.
    pub fn bytes(&self, kind: CollectiveKind) -> u64 {
        self.bytes_sent[kind as usize].load(Ordering::Relaxed)
    }

    /// Messages sent under one category.
    pub fn messages(&self, kind: CollectiveKind) -> u64 {
        self.messages_sent[kind as usize].load(Ordering::Relaxed)
    }

    /// Total bytes sent across all categories.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for i in 0..KIND_COUNT {
            self.bytes_sent[i].store(0, Ordering::Relaxed);
            self.messages_sent[i].store(0, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        let mut bytes = [0u64; KIND_COUNT];
        let mut messages = [0u64; KIND_COUNT];
        for i in 0..KIND_COUNT {
            bytes[i] = self.bytes_sent[i].load(Ordering::Relaxed);
            messages[i] = self.messages_sent[i].load(Ordering::Relaxed);
        }
        TrafficSnapshot { bytes, messages }
    }
}

/// An immutable copy of a rank's traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrafficSnapshot {
    bytes: [u64; KIND_COUNT],
    messages: [u64; KIND_COUNT],
}

impl TrafficSnapshot {
    /// Bytes sent under one category.
    pub fn bytes(&self, kind: CollectiveKind) -> u64 {
        self.bytes[kind as usize]
    }

    /// Messages sent under one category.
    pub fn messages(&self, kind: CollectiveKind) -> u64 {
        self.messages[kind as usize]
    }

    /// Total bytes across all categories.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Per-kind `(kind, bytes, messages)` rows in discriminant order — the
    /// shape trace-conformance checks and benchmark emitters consume when
    /// comparing a whole snapshot against an analytic plan.
    pub fn per_kind(&self) -> [(CollectiveKind, u64, u64); KIND_COUNT] {
        let mut out = [(CollectiveKind::AllReduce, 0, 0); KIND_COUNT];
        for (i, k) in ALL_KINDS.iter().enumerate() {
            out[i] = (*k, self.bytes[i], self.messages[i]);
        }
        out
    }

    /// Difference `self − earlier`, counter-wise (for per-step deltas).
    pub fn delta_since(&self, earlier: &TrafficSnapshot) -> TrafficSnapshot {
        let mut bytes = [0u64; KIND_COUNT];
        let mut messages = [0u64; KIND_COUNT];
        for i in 0..KIND_COUNT {
            bytes[i] = self.bytes[i] - earlier.bytes[i];
            messages[i] = self.messages[i] - earlier.messages[i];
        }
        TrafficSnapshot { bytes, messages }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sums() {
        let s = TrafficStats::new();
        s.record_send(CollectiveKind::AllReduce, 100);
        s.record_send(CollectiveKind::AllReduce, 50);
        s.record_send(CollectiveKind::P2p, 8);
        assert_eq!(s.bytes(CollectiveKind::AllReduce), 150);
        assert_eq!(s.messages(CollectiveKind::AllReduce), 2);
        assert_eq!(s.total_bytes(), 158);
    }

    #[test]
    fn snapshot_delta() {
        let s = TrafficStats::new();
        s.record_send(CollectiveKind::AllGather, 10);
        let a = s.snapshot();
        s.record_send(CollectiveKind::AllGather, 32);
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.bytes(CollectiveKind::AllGather), 32);
        assert_eq!(d.messages(CollectiveKind::AllGather), 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = TrafficStats::new();
        s.record_send(CollectiveKind::Broadcast, 77);
        s.reset();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.messages(CollectiveKind::Broadcast), 0);
    }
}
