//! Cross-backend contract tests for the socket transport.
//!
//! The process fabric's promise is that a rank cannot tell which transport
//! it runs on: the same collective schedule must produce bitwise-identical
//! results *and* meter bitwise-identical traffic on the Unix-socket mesh
//! and the in-process channel backend. These tests hold the public API
//! (`connect_process_rank` vs `launch_with_stats`) to that promise, and pin
//! the robustness behaviors the supervisor depends on: handshakes ride out
//! slow-starting peers, and a severed peer surfaces as a fast typed error
//! rather than a full `recv_timeout` stall.

use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use zero_comm::process::fresh_token;
use zero_comm::stats::TrafficSnapshot;
use zero_comm::{
    connect_process_rank, launch_with_stats, chunk_range, CommError, Communicator, Precision,
    ProcessWorldConfig, ReduceOp,
};

/// Fresh scratch directory for one test's socket files.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "zero-fabric-it-{}-{}",
        std::process::id(),
        name
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A schedule touching every collective family plus point-to-point and the
/// barrier; returns everything rank-visible so backends can be compared.
fn schedule(comm: &mut Communicator) -> Result<Vec<f32>, CommError> {
    let rank = comm.rank();
    let n = comm.world_size();
    let mut out = Vec::new();

    let mut buf: Vec<f32> = (0..8).map(|i| (rank * 8 + i) as f32 * 0.25).collect();
    comm.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp32)?;
    out.extend_from_slice(&buf);

    let input: Vec<f32> = (0..3 * n).map(|i| (i + rank) as f32).collect();
    let mut chunk = vec![0.0; chunk_range(input.len(), n, rank).len()];
    comm.reduce_scatter(&input, &mut chunk, ReduceOp::Mean, Precision::Fp32)?;
    out.extend_from_slice(&chunk);

    let mut gathered = vec![0.0; input.len()];
    comm.all_gather(&chunk, &mut gathered, Precision::Fp32)?;
    out.extend_from_slice(&gathered);

    let mut bcast = if rank == 0 {
        vec![3.5, -1.25, 0.5]
    } else {
        vec![0.0; 3]
    };
    comm.broadcast(0, &mut bcast, Precision::Fp32)?;
    out.extend_from_slice(&bcast);

    // Point-to-point ring: everyone sends to the next rank, receives from
    // the previous one.
    comm.send((rank + 1) % n, &[rank as f32; 4])?;
    let mut from_prev = [0.0f32; 4];
    comm.recv((rank + n - 1) % n, &mut from_prev)?;
    out.extend_from_slice(&from_prev);

    comm.barrier()?;
    Ok(out)
}

/// Runs `schedule` on an `n`-rank socket mesh (ranks as threads) and
/// returns each rank's outputs and traffic snapshot.
fn run_on_sockets(n: usize, dir: PathBuf) -> Vec<(Vec<f32>, TrafficSnapshot)> {
    let mut cfg = ProcessWorldConfig::new(dir, n);
    cfg.token = fresh_token();
    let handles: Vec<_> = (0..n)
        .map(|rank| {
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let mut comm = connect_process_rank(rank, &cfg).expect("mesh connects");
                let out = schedule(&mut comm).expect("schedule runs clean");
                let stats = comm.stats().snapshot();
                (out, stats)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("rank thread"))
        .collect()
}

#[test]
fn collectives_match_channel_backend_bitwise_with_identical_traffic() {
    let n = 3;
    let socket = run_on_sockets(n, scratch("parity"));
    let (channel, channel_stats) =
        launch_with_stats(n, |mut comm| schedule(&mut comm).expect("schedule runs clean"));

    for rank in 0..n {
        let (ref sock_out, ref sock_stats) = socket[rank];
        assert_eq!(
            sock_out.len(),
            channel[rank].len(),
            "rank {rank}: output shape differs across backends"
        );
        for (i, (a, b)) in sock_out.iter().zip(&channel[rank]).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "rank {rank} output[{i}]: socket {a} vs channel {b}"
            );
        }
        // The §7 volume identities must be *measured* identically: same
        // bytes and same message count for every collective kind. The
        // socket backend's heartbeats and barrier frames are transport
        // internals and deliberately unmetered.
        assert_eq!(
            sock_stats.per_kind(),
            channel_stats[rank].per_kind(),
            "rank {rank}: per-kind traffic differs across backends"
        );
    }
}

#[test]
fn handshake_rides_out_a_slow_starting_peer() {
    let dir = scratch("late-peer");
    let mut cfg = ProcessWorldConfig::new(dir, 2);
    cfg.token = fresh_token();

    // Rank 1 dials rank 0's socket, which does not exist yet: the capped
    // exponential backoff must keep retrying until rank 0 binds, well
    // within the handshake budget.
    let eager = {
        let cfg = cfg.clone();
        std::thread::spawn(move || {
            let mut comm = connect_process_rank(1, &cfg).expect("late bind is survivable");
            let mut buf = vec![1.0, 2.0];
            comm.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp32)
                .expect("post-handshake collective");
            buf
        })
    };
    std::thread::sleep(Duration::from_millis(150));
    let mut comm = connect_process_rank(0, &cfg).expect("mesh connects");
    let mut buf = vec![10.0, 20.0];
    comm.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp32)
        .expect("post-handshake collective");

    assert_eq!(buf, vec![11.0, 22.0]);
    assert_eq!(eager.join().expect("rank 1"), vec![11.0, 22.0]);
}

#[test]
fn severed_peer_fails_collectives_fast_not_at_recv_timeout() {
    let dir = scratch("severed");
    let mut cfg = ProcessWorldConfig::new(dir, 2);
    cfg.token = fresh_token();
    cfg.recv_timeout = Duration::from_secs(60);

    let (ready_tx, ready_rx) = mpsc::channel();
    let quitter = {
        let cfg = cfg.clone();
        std::thread::spawn(move || {
            // Connect, prove the mesh works, then vanish without a word —
            // the socket-level analogue of SIGKILL mid-run.
            let comm = connect_process_rank(1, &cfg).expect("mesh connects");
            ready_tx.send(()).expect("signal readiness");
            drop(comm);
        })
    };

    let mut comm = connect_process_rank(0, &cfg).expect("mesh connects");
    ready_rx
        .recv_timeout(Duration::from_secs(20))
        .expect("peer reached steady state");
    quitter.join().expect("peer thread");

    let start = Instant::now();
    let mut buf = [0.0f32; 2];
    let err = comm.recv(1, &mut buf).expect_err("peer is gone");
    let elapsed = start.elapsed();

    // Liveness detection, not the 60 s receive deadline, must be what
    // reports the death.
    assert!(
        elapsed < Duration::from_secs(10),
        "death took {elapsed:?} to surface — liveness tracking is not working"
    );
    let msg = err.to_string();
    assert!(
        msg.contains("peer") || msg.contains("lost") || msg.contains("disconnected"),
        "unexpected error for a severed peer: {msg}"
    );
}
