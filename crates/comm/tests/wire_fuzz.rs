//! Fuzzes the socket backend's frame decoder.
//!
//! The decoder is the trust boundary of the process fabric: every byte a
//! peer process writes crosses it. These properties pin down the contract
//! the reader thread relies on:
//!
//! * `decode_frame` is **total** — arbitrary bytes produce `Ok` or a typed
//!   [`WireError`], never a panic and never an allocation driven by a
//!   corrupt length field.
//! * A **truncated** frame is indistinguishable from an in-flight one:
//!   every proper prefix of a valid encoding yields `Ok(None)` (read more).
//! * A **bit flip** anywhere in a frame never decodes to the frame that
//!   was sent: either the framing layer rejects it outright, or (for
//!   flips inside the length prefix) it stalls/decodes differently —
//!   it can never silently deliver the original message as clean.

use proptest::prelude::*;
use proptest::TestRng;
use zero_comm::wire::{
    decode_frame, encode_barrier, encode_data, encode_hello, encode_heartbeat, Frame,
};

/// Draws one frame of a random type with fully random field bits, paired
/// with its wire encoding.
struct ArbEncoded;

impl Strategy for ArbEncoded {
    type Value = (Frame, Vec<u8>);
    fn generate(&self, rng: &mut TestRng) -> (Frame, Vec<u8>) {
        match rng.next_u64() % 4 {
            0 => {
                let (world, rank) = (rng.next_u64() as u32, rng.next_u64() as u32);
                let token = rng.next_u64();
                (
                    Frame::Hello { world, rank, token },
                    encode_hello(world, rank, token),
                )
            }
            1 => {
                let seq = rng.next_u64();
                let payload_crc = rng.next_u64() as u32;
                let payload: Vec<f32> = (0..rng.next_u64() % 64)
                    .map(|_| f32::from_bits(rng.next_u64() as u32))
                    .collect();
                let encoded = encode_data(seq, payload_crc, &payload);
                (
                    Frame::Data {
                        seq,
                        payload_crc,
                        payload,
                    },
                    encoded,
                )
            }
            2 => {
                let (generation, round) = (rng.next_u64(), rng.next_u64() as u32);
                (
                    Frame::Barrier { generation, round },
                    encode_barrier(generation, round),
                )
            }
            _ => (Frame::Heartbeat, encode_heartbeat()),
        }
    }
}

fn arb_encoded() -> ArbEncoded {
    ArbEncoded
}

/// A uniformly random byte (the stub's range strategies are half-open, so
/// `0u8..255` would never produce 0xFF — a byte every length prefix and
/// CRC can legitimately contain).
struct AnyByte;

impl Strategy for AnyByte {
    type Value = u8;
    fn generate(&self, rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

/// Frames compared by their wire identity: every field bit-exact, with
/// f32 payloads compared as bits so NaN payloads still count as equal.
fn same_frame(a: &Frame, b: &Frame) -> bool {
    match (a, b) {
        (
            Frame::Data {
                seq: s1,
                payload_crc: c1,
                payload: p1,
            },
            Frame::Data {
                seq: s2,
                payload_crc: c2,
                payload: p2,
            },
        ) => {
            s1 == s2
                && c1 == c2
                && p1.len() == p2.len()
                && p1
                    .iter()
                    .zip(p2)
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        }
        _ => a == b,
    }
}

proptest! {
    /// Total over arbitrary garbage: no panic, no runaway allocation.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(AnyByte, 0..512)) {
        let _ = decode_frame(&bytes);
    }

    /// Garbage prepended to a valid frame must not make the decoder skip
    /// ahead and "find" the valid frame — resync is the fabric's job
    /// (it tears the link down), not the decoder's.
    #[test]
    fn decoder_does_not_resync_past_garbage(
        sample in arb_encoded(),
        junk in prop::collection::vec(AnyByte, 1..16),
    ) {
        let (frame, encoded) = sample;
        let mut stream = junk;
        stream.extend_from_slice(&encoded);
        if let Ok(Some((decoded, _))) = decode_frame(&stream) {
            // If something decoded out of the damaged stream it must not
            // masquerade as the frame that was actually sent.
            prop_assert!(!same_frame(&decoded, &frame));
        }
    }

    /// Every proper prefix of a valid encoding reads as "incomplete".
    #[test]
    fn truncation_always_asks_for_more(sample in arb_encoded(), cut in 0usize..1000) {
        let (_frame, encoded) = sample;
        let cut = cut % encoded.len(); // proper prefix: 0..len-1 bytes
        prop_assert_eq!(decode_frame(&encoded[..cut]), Ok(None));
    }

    /// A round trip is exact and consumes exactly the encoding.
    #[test]
    fn roundtrip_is_exact(sample in arb_encoded()) {
        let (frame, encoded) = sample;
        let (decoded, used) = decode_frame(&encoded)
            .expect("valid encoding decodes")
            .expect("complete encoding is not a prefix");
        prop_assert_eq!(used, encoded.len());
        prop_assert!(same_frame(&decoded, &frame));
    }

    /// A single flipped bit anywhere in the frame never yields the
    /// original frame back as a clean decode. Flips in the body or CRC
    /// are caught by the frame CRC; flips in the length prefix change
    /// what window the CRC covers (or stall the decoder), so nothing
    /// that still decodes can equal what was sent.
    #[test]
    fn bit_flip_never_decodes_clean(sample in arb_encoded(), pos in 0usize..4096, bit in 0u8..8) {
        let (frame, encoded) = sample;
        let pos = pos % encoded.len();
        let mut damaged = encoded.clone();
        damaged[pos] ^= 1 << bit;
        // Rejection outright or a stall waiting for bytes that will never
        // come are both safe outcomes for the fabric; only a clean decode
        // of the original frame would be silent corruption.
        if let Ok(Some((decoded, _))) = decode_frame(&damaged) {
            prop_assert!(!same_frame(&decoded, &frame));
        }
    }
}
