//! Property tests: every collective must agree with a straight-line
//! reference for arbitrary buffer lengths, rank counts, chunk splits, and
//! payload values — including the degenerate shapes ZeRO's flat-space
//! partitioning produces (empty chunks, single-element buffers).

use proptest::prelude::*;
use zero_comm::{chunk_range, launch, Group, Precision, ReduceOp};

/// Per-rank input data for a world of `n` ranks and buffers of `len`.
fn inputs(n: usize, len: usize, salt: u64) -> Vec<Vec<f32>> {
    (0..n)
        .map(|r| {
            (0..len)
                .map(|i| {
                    let x = (r as u64 + 1).wrapping_mul(i as u64 + salt + 1);
                    ((x % 251) as f32 - 125.0) / 16.0
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_reduce_matches_reference(
        n in 1usize..6,
        len in 1usize..80,
        salt in 0u64..1000,
    ) {
        let data = inputs(n, len, salt);
        let want: Vec<f32> = (0..len)
            .map(|i| data.iter().map(|d| d[i]).sum())
            .collect();
        let data_ref = &data;
        let results = launch(n, move |mut c| {
            let mut buf = data_ref[c.rank()].clone();
            c.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp32).unwrap();
            buf
        });
        for got in &results {
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() < 1e-3, "{g} vs {w}");
            }
        }
    }

    #[test]
    fn reduce_scatter_then_all_gather_equals_all_reduce(
        n in 1usize..6,
        len in 1usize..60,
        salt in 0u64..1000,
    ) {
        let data = inputs(n, len, salt);
        let data_ref = &data;
        let results = launch(n, move |mut c| {
            let input = data_ref[c.rank()].clone();
            // Path A: fused all-reduce.
            let mut fused = input.clone();
            c.all_reduce(&mut fused, ReduceOp::Sum, Precision::Fp32).unwrap();
            // Path B: reduce-scatter + all-gather (§7.1's decomposition).
            let shard_len = chunk_range(len, c.world_size(), c.rank()).len();
            let mut shard = vec![0.0; shard_len];
            c.reduce_scatter(&input, &mut shard, ReduceOp::Sum, Precision::Fp32).unwrap();
            let mut rebuilt = vec![0.0; len];
            c.all_gather(&shard, &mut rebuilt, Precision::Fp32).unwrap();
            (fused, rebuilt)
        });
        for (fused, rebuilt) in &results {
            for (a, b) in fused.iter().zip(rebuilt) {
                prop_assert!((a - b).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn var_all_gather_reassembles_arbitrary_splits(
        n in 1usize..6,
        seed_counts in prop::collection::vec(0usize..30, 1..6),
    ) {
        let n = n.min(seed_counts.len());
        let counts: Vec<usize> = seed_counts[..n].to_vec();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return Ok(());
        }
        let counts_ref = &counts;
        let results = launch(n, move |mut c| {
            let offset: usize = counts_ref[..c.rank()].iter().sum();
            let shard: Vec<f32> =
                (0..counts_ref[c.rank()]).map(|j| (offset + j) as f32).collect();
            let mut out = vec![-1.0; total];
            let g = Group::world(n);
            c.all_gather_var_in(&g, &shard, &mut out, counts_ref, Precision::Fp32).unwrap();
            out
        });
        let want: Vec<f32> = (0..total).map(|i| i as f32).collect();
        for got in &results {
            prop_assert_eq!(got, &want);
        }
    }

    #[test]
    fn var_reduce_scatter_sums_per_owner(
        n in 2usize..6,
        seed_counts in prop::collection::vec(0usize..20, 2..6),
        salt in 0u64..100,
    ) {
        let n = n.min(seed_counts.len());
        let counts: Vec<usize> = seed_counts[..n].to_vec();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return Ok(());
        }
        let data = inputs(n, total, salt);
        let data_ref = &data;
        let counts_ref = &counts;
        let results = launch(n, move |mut c| {
            let input = data_ref[c.rank()].clone();
            let mut out = vec![0.0; counts_ref[c.rank()]];
            let g = Group::world(n);
            c.reduce_scatter_var_in(&g, &input, &mut out, ReduceOp::Sum, counts_ref, Precision::Fp32).unwrap();
            out
        });
        let mut offset = 0;
        for (rank, cnt) in counts.iter().enumerate() {
            for (j, &got) in results[rank].iter().enumerate() {
                let i = offset + j;
                let want: f32 = data.iter().map(|d| d[i]).sum();
                prop_assert!((got - want).abs() < 1e-3);
            }
            offset += cnt;
        }
    }

    #[test]
    fn broadcast_from_any_root(
        n in 1usize..6,
        root_seed in 0usize..6,
        len in 1usize..40,
    ) {
        let root = root_seed % n;
        let results = launch(n, move |mut c| {
            let mut buf = if c.rank() == root {
                (0..len).map(|i| i as f32 + 0.5).collect()
            } else {
                vec![0.0; len]
            };
            c.broadcast(root, &mut buf, Precision::Fp32).unwrap();
            buf
        });
        let want: Vec<f32> = (0..len).map(|i| i as f32 + 0.5).collect();
        for got in &results {
            prop_assert_eq!(got, &want);
        }
    }

    #[test]
    fn mean_is_sum_divided_by_n(
        n in 1usize..6,
        len in 1usize..40,
        salt in 0u64..100,
    ) {
        let data = inputs(n, len, salt);
        let data_ref = &data;
        let results = launch(n, move |mut c| {
            let mut a = data_ref[c.rank()].clone();
            let mut b = data_ref[c.rank()].clone();
            c.all_reduce(&mut a, ReduceOp::Sum, Precision::Fp32).unwrap();
            c.all_reduce(&mut b, ReduceOp::Mean, Precision::Fp32).unwrap();
            (a, b)
        });
        for (sum, mean) in &results {
            for (s, m) in sum.iter().zip(mean) {
                prop_assert!((s / n as f32 - m).abs() < 1e-3);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn hierarchical_all_reduce_matches_flat(
        nodes in 1usize..4,
        g in 1usize..4,
        len in 1usize..50,
        salt in 0u64..100,
    ) {
        let world = nodes * g;
        let topo = zero_comm::NodeTopology::new(g);
        let data = inputs(world, len, salt);
        let data_ref = &data;
        let results = launch(world, move |mut c| {
            let mut flat = data_ref[c.rank()].clone();
            let mut hier = flat.clone();
            c.all_reduce(&mut flat, ReduceOp::Sum, Precision::Fp32).unwrap();
            c.hierarchical_all_reduce(&topo, &mut hier, ReduceOp::Sum, Precision::Fp32).unwrap();
            (flat, hier)
        });
        for (flat, hier) in &results {
            for (a, b) in flat.iter().zip(hier) {
                prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
            }
        }
    }
}
