//! Experiment drivers: one generator per paper table/figure.
//!
//! Each function returns serializable rows and has a pretty-printer; the
//! `src/bin/*` binaries call them and persist JSON under `results/`.
//! EXPERIMENTS.md records paper-vs-measured for each.

use serde::Serialize;

use crate::configs::{PaperRow, SEQ, TABLE10_FIG4, TABLE3_CONFIGS, TABLE5_FIG2, TABLE6_FIG3};
use crate::memory::{MemoryModel, SimWorkload, ZeroRFlags};
use crate::perf::{PerfModel, RunConfig};
use zero_core::ZeroStage;

const GB: f64 = 1e9;

/// Writes any serializable value as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    let path = format!("results/{name}.json");
    std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
    eprintln!("wrote {path}");
    Ok(())
}

// ---------------------------------------------------------------- Table 1

/// One Table 1 row: per-device model-state GB at a DP degree.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Table1Row {
    pub dp: usize,
    pub model_b: f64,
    pub pos_gb: f64,
    pub pos_g_gb: f64,
    pub pos_g_p_gb: f64,
}

/// Regenerates Table 1 (per-device model-state memory vs. DP degree for
/// 7.5B / 128B / 1T models, K = 12).
pub fn table1() -> Vec<Table1Row> {
    let m = MemoryModel::default();
    let mut rows = Vec::new();
    for &dp in &[1usize, 4, 16, 64, 256, 1024] {
        for &model_b in &[7.5_f64, 128.0, 1000.0] {
            let psi = model_b * 1e9;
            rows.push(Table1Row {
                dp,
                model_b,
                pos_gb: m.model_state_bytes(psi, ZeroStage::One, dp as f64) / GB,
                pos_g_gb: m.model_state_bytes(psi, ZeroStage::Two, dp as f64) / GB,
                pos_g_p_gb: m.model_state_bytes(psi, ZeroStage::Three, dp as f64) / GB,
            });
        }
    }
    rows
}

/// Prints Table 1 in the paper's layout.
pub fn print_table1(rows: &[Table1Row]) {
    println!("Table 1: per-device model-state memory (GB), K = 12");
    println!("{:>5} | {:>28} | {:>28} | {:>28}", "DP", "7.5B model", "128B model", "1T model");
    println!("{:>5} | {:>8} {:>9} {:>9} | {:>8} {:>9} {:>9} | {:>8} {:>9} {:>9}",
        "", "Pos", "Pos+g", "Pos+g+p", "Pos", "Pos+g", "Pos+g+p", "Pos", "Pos+g", "Pos+g+p");
    for &dp in &[1usize, 4, 16, 64, 256, 1024] {
        let cells: Vec<&Table1Row> = rows.iter().filter(|r| r.dp == dp).collect();
        let f = |b: f64| cells.iter().find(|r| r.model_b == b).unwrap();
        let (a, b, c) = (f(7.5), f(128.0), f(1000.0));
        println!(
            "{:>5} | {:>8.1} {:>9.1} {:>9.2} | {:>8.0} {:>9.0} {:>9.0} | {:>8.0} {:>9.0} {:>9.1}",
            dp, a.pos_gb, a.pos_g_gb, a.pos_g_p_gb,
            b.pos_gb, b.pos_g_gb, b.pos_g_p_gb,
            c.pos_gb, c.pos_g_gb, c.pos_g_p_gb
        );
    }
}

// ---------------------------------------------------------------- Table 2

/// One Table 2 row: max model sizes at an MP degree.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Table2Row {
    pub mp: usize,
    pub gpus: usize,
    pub theory_baseline_b: f64,
    pub theory_pos_b: f64,
    pub theory_pos_g_b: f64,
    pub theory_pos_g_p_b: f64,
    pub measured_baseline_b: f64,
    pub measured_pos_b: f64,
}

/// Regenerates Table 2: theoretical max model size from the state
/// arithmetic, and "measured" max from the full memory model (states +
/// activations + buffers at the paper's batch sizes), N_d = 64.
pub fn table2() -> Vec<Table2Row> {
    let m = MemoryModel::default();
    let cluster = crate::cluster::ClusterSpec::dgx2_v100();
    let nd = 64.0;
    let mut rows = Vec::new();
    for &mp in &[1usize, 2, 4, 8, 16] {
        let theory = |stage| m.max_theoretical_params(&cluster, stage, nd, mp as f64) / GB;
        // "Measured": largest model that actually runs with batch 8,
        // checkpointing on, seq 1024 — activations and buffers eat into
        // the theoretical bound exactly as the paper observes.
        let measured = |stage| {
            m.max_model_params(
                &cluster,
                if mp >= 4 { 8192 } else { 4096 },
                SEQ,
                8,
                stage,
                nd,
                mp as f64,
                &ZeroRFlags::baseline(),
            ) / GB
        };
        rows.push(Table2Row {
            mp,
            gpus: 64 * mp,
            theory_baseline_b: theory(ZeroStage::Ddp),
            theory_pos_b: theory(ZeroStage::One),
            theory_pos_g_b: theory(ZeroStage::Two),
            theory_pos_g_p_b: theory(ZeroStage::Three),
            measured_baseline_b: measured(ZeroStage::Ddp),
            measured_pos_b: measured(ZeroStage::One),
        });
    }
    rows
}

/// Prints Table 2.
pub fn print_table2(rows: &[Table2Row]) {
    println!("Table 2: max theoretical (states only) and measured model size (B params), Nd = 64");
    println!(
        "{:>3} {:>6} | {:>9} {:>8} {:>8} {:>9} | {:>9} {:>9}",
        "MP", "GPUs", "Baseline", "Pos", "Pos+g", "Pos+g+p", "meas-base", "meas-Pos"
    );
    for r in rows {
        println!(
            "{:>3} {:>6} | {:>9.1} {:>8.1} {:>8.1} {:>9.0} | {:>9.1} {:>9.1}",
            r.mp, r.gpus, r.theory_baseline_b, r.theory_pos_b, r.theory_pos_g_b,
            r.theory_pos_g_p_b, r.measured_baseline_b, r.measured_pos_b
        );
    }
}

// ---------------------------------------------------------------- Fig. 1

/// One Figure 1 bar: memory at a stage for the worked example.
#[derive(Clone, Debug, Serialize)]
pub struct Fig1Row {
    pub stage: String,
    pub formula: String,
    pub gb: f64,
}

/// Regenerates Figure 1's example: Ψ = 7.5B, N_d = 64, K = 12.
pub fn fig1() -> Vec<Fig1Row> {
    let m = MemoryModel::default();
    let psi = 7.5e9;
    let nd = 64.0;
    let mk = |stage: ZeroStage, formula: &str| Fig1Row {
        stage: stage.name().to_string(),
        formula: formula.to_string(),
        gb: m.model_state_bytes(psi, stage, nd) / GB,
    };
    vec![
        mk(ZeroStage::Ddp, "(2+2+K)·Ψ"),
        mk(ZeroStage::One, "2Ψ+2Ψ+KΨ/Nd"),
        mk(ZeroStage::Two, "2Ψ+(2+K)Ψ/Nd"),
        mk(ZeroStage::Three, "(2+2+K)Ψ/Nd"),
    ]
}

/// Prints Figure 1's bars.
pub fn print_fig1(rows: &[Fig1Row]) {
    println!("Figure 1: per-device model-state memory, Ψ=7.5B, Nd=64, K=12");
    for r in rows {
        println!("{:>18}  {:>14}  {:>7.1} GB", r.stage, r.formula, r.gb);
    }
}

// ---------------------------------------------------------------- Fig. 2

/// One Figure 2 point: ZeRO vs. baseline throughput at a model size.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig2Row {
    pub size_b: f64,
    pub zero_tflops: f64,
    pub baseline_tflops: f64,
    pub speedup: f64,
    pub zero_aggregate_pflops: f64,
}

/// Regenerates Figure 2 from the Table 5 configurations.
pub fn fig2() -> Vec<Fig2Row> {
    let perf = PerfModel::default();
    let mut rows = Vec::new();
    let sizes: Vec<f64> = {
        let mut s: Vec<f64> = TABLE5_FIG2.iter().map(|r| r.size_b).collect();
        s.dedup();
        s
    };
    for size in sizes {
        let find = |zero: bool| -> Option<&PaperRow> {
            TABLE5_FIG2.iter().find(|r| r.size_b == size && r.zero == zero)
        };
        let (Some(z), Some(b)) = (find(true), find(false)) else { continue };
        let zt = perf.tflops_per_gpu(&z.run_config());
        let bt = perf.tflops_per_gpu(&b.run_config());
        rows.push(Fig2Row {
            size_b: size,
            zero_tflops: zt,
            baseline_tflops: bt,
            speedup: zt / bt,
            zero_aggregate_pflops: perf.aggregate_pflops(&z.run_config()),
        });
    }
    rows
}

/// Prints Figure 2.
pub fn print_fig2(rows: &[Fig2Row]) {
    println!("Figure 2: throughput per GPU, ZeRO vs Megatron baseline (Table 5 configs)");
    println!(
        "{:>7} | {:>12} {:>16} {:>9} {:>12}",
        "size", "ZeRO Tf/GPU", "baseline Tf/GPU", "speedup", "ZeRO Pflops"
    );
    for r in rows {
        println!(
            "{:>6.1}B | {:>12.1} {:>16.1} {:>8.1}x {:>12.2}",
            r.size_b, r.zero_tflops, r.baseline_tflops, r.speedup, r.zero_aggregate_pflops
        );
    }
}

// ---------------------------------------------------------------- Fig. 3

/// One Figure 3 point: 60B model at a GPU count.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig3Row {
    pub gpus: usize,
    pub batch_per_gpu: usize,
    pub tflops_per_gpu: f64,
    pub aggregate_pflops: f64,
    pub speedup_vs_64: f64,
    pub perfect_linear: f64,
}

/// Regenerates Figure 3: superlinear scalability of the 60B model.
pub fn fig3() -> Vec<Fig3Row> {
    let perf = PerfModel::default();
    let base: Option<f64> = None;
    let mut rows = Vec::new();
    let mut base = base;
    for row in TABLE6_FIG3 {
        let cfg = row.run_config();
        let agg = perf.aggregate_pflops(&cfg);
        let b = *base.get_or_insert(agg);
        rows.push(Fig3Row {
            gpus: row.gpus,
            batch_per_gpu: row.batch,
            tflops_per_gpu: perf.tflops_per_gpu(&cfg),
            aggregate_pflops: agg,
            speedup_vs_64: agg / b,
            perfect_linear: row.gpus as f64 / 64.0,
        });
    }
    rows
}

/// Prints Figure 3.
pub fn print_fig3(rows: &[Fig3Row]) {
    println!("Figure 3: 60B model scalability (Table 6 configs)");
    println!(
        "{:>5} {:>7} | {:>10} {:>10} {:>11} {:>9}",
        "GPUs", "b/GPU", "Tf/GPU", "Pflops", "speedup", "linear"
    );
    for r in rows {
        println!(
            "{:>5} {:>7} | {:>10.1} {:>10.2} {:>10.2}x {:>8.2}x",
            r.gpus, r.batch_per_gpu, r.tflops_per_gpu, r.aggregate_pflops,
            r.speedup_vs_64, r.perfect_linear
        );
    }
}

// ---------------------------------------------------------------- Fig. 4

/// One Figure 4 point: ZeRO without MP.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig4Row {
    pub size_b: f64,
    pub zero: bool,
    pub fits: bool,
    pub tflops_per_gpu: f64,
}

/// Regenerates Figure 4: max throughput without MP on 128 GPUs; the DDP
/// baseline dies at 1.4B while ZeRO reaches 13B.
pub fn fig4() -> Vec<Fig4Row> {
    let perf = PerfModel::default();
    let mem = MemoryModel::default();
    let cluster = crate::cluster::ClusterSpec::dgx2_v100();
    TABLE10_FIG4
        .iter()
        .map(|row| {
            let cfg = row.run_config();
            let fits = mem.fits(
                &cluster,
                &cfg.workload,
                cfg.stage,
                cfg.nd as f64,
                cfg.mp as f64,
                &cfg.flags,
            );
            Fig4Row {
                size_b: row.size_b,
                zero: row.zero,
                fits,
                tflops_per_gpu: if fits { perf.tflops_per_gpu(&cfg) } else { 0.0 },
            }
        })
        .collect()
}

/// Prints Figure 4.
pub fn print_fig4(rows: &[Fig4Row]) {
    println!("Figure 4: throughput without MP on 128 GPUs (Table 10 configs)");
    println!("{:>7} {:>9} {:>6} {:>10}", "size", "system", "fits", "Tf/GPU");
    for r in rows {
        println!(
            "{:>6.2}B {:>9} {:>6} {:>10.1}",
            r.size_b,
            if r.zero { "ZeRO" } else { "DDP" },
            if r.fits { "yes" } else { "OOM" },
            r.tflops_per_gpu
        );
    }
}

// ---------------------------------------------------------------- Fig. 6

/// One Figure 6 bar: max model size under a Table 3 configuration.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig6Row {
    pub config: u8,
    pub stage: &'static str,
    pub pa: bool,
    pub pa_cpu: bool,
    pub max_params_b: f64,
}

/// Regenerates Figure 6: largest trainable model per C1–C5 at MP 16 on
/// 400 GPUs (N_d = 25), batch 16, h = 8192 (Table 7 shapes).
pub fn fig6() -> Vec<Fig6Row> {
    let mem = MemoryModel::default();
    let cluster = crate::cluster::ClusterSpec::dgx2_v100();
    TABLE3_CONFIGS
        .iter()
        .map(|c| Fig6Row {
            config: c.id,
            stage: c.stage.name(),
            pa: c.flags.partition_activations,
            pa_cpu: c.flags.cpu_offload,
            max_params_b: mem.max_model_params(&cluster, 8192, SEQ, 16, c.stage, 25.0, 16.0, &c.flags)
                / GB,
        })
        .collect()
}

/// Prints Figure 6.
pub fn print_fig6(rows: &[Fig6Row]) {
    println!("Figure 6: max model size per ZeRO configuration (MP 16, 400 GPUs, batch 16)");
    for r in rows {
        println!(
            "C{} [{} {}{}] -> {:>6.0}B",
            r.config,
            r.stage,
            if r.pa { "+Pa" } else { "" },
            if r.pa_cpu { "+cpu" } else { "" },
            r.max_params_b
        );
    }
}

// ---------------------------------------------------------------- Fig. 7

/// One Figure 7 bar: peak per-GPU memory for a model under C1–C5.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig7Row {
    pub config: u8,
    pub model_b: f64,
    pub cached_gb: f64,
}

/// Regenerates Figure 7: max cached memory for the 40B and 100B models
/// per configuration (Table 8 shapes: 40B = 50×8192 b16, 100B = 125×8192
/// b32, MP 16 on 400 GPUs).
pub fn fig7() -> Vec<Fig7Row> {
    let mem = MemoryModel::default();
    let mut rows = Vec::new();
    for (model_b, layers, batch) in [(40.0, 50usize, 16usize), (100.0, 125, 32)] {
        for c in &TABLE3_CONFIGS {
            let w = SimWorkload {
                layers,
                hidden: 8192,
                seq: SEQ,
                batch_per_gpu: batch,
            };
            rows.push(Fig7Row {
                config: c.id,
                model_b,
                cached_gb: mem.total_bytes(&w, c.stage, 25.0, 16.0, &c.flags) / GB,
            });
        }
    }
    rows
}

/// Prints Figure 7.
pub fn print_fig7(rows: &[Fig7Row]) {
    println!("Figure 7: peak per-GPU memory (GB) per configuration");
    println!("{:>7} | C1      C2      C3      C4      C5", "model");
    for model_b in [40.0, 100.0] {
        let cells: Vec<f64> = rows
            .iter()
            .filter(|r| r.model_b == model_b)
            .map(|r| r.cached_gb)
            .collect();
        println!(
            "{:>6.0}B | {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}  {:>6.1}",
            model_b, cells[0], cells[1], cells[2], cells[3], cells[4]
        );
    }
}

// ---------------------------------------------------------------- Fig. 8

/// One Figure 8 bar: best throughput per configuration.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Fig8Row {
    pub config: u8,
    pub model_b: f64,
    pub batch_per_gpu: usize,
    pub fits: bool,
    pub tflops_per_gpu: f64,
}

/// Regenerates Figure 8: best achievable throughput per C1–C5 for the
/// 60B model (Table 9's best batches per config on 128 GPUs) and the
/// 170B model (which §10.5 says only executes with P_a+cpu; 400 GPUs,
/// batch 12).
pub fn fig8() -> Vec<Fig8Row> {
    let perf = PerfModel::default();
    let mem = MemoryModel::default();
    let cluster = crate::cluster::ClusterSpec::dgx2_v100();
    let mut rows = Vec::new();
    let batches_60b = [2usize, 4, 8, 32, 32];
    for (c, &batch) in TABLE3_CONFIGS.iter().zip(&batches_60b) {
        let cfg = RunConfig {
            workload: SimWorkload {
                layers: 75,
                hidden: 8192,
                seq: SEQ,
                batch_per_gpu: batch,
            },
            stage: c.stage,
            nd: 8,
            mp: 16,
            flags: c.flags,
        };
        let fits = mem.fits(&cluster, &cfg.workload, cfg.stage, 8.0, 16.0, &cfg.flags);
        rows.push(Fig8Row {
            config: c.id,
            model_b: 60.0,
            batch_per_gpu: batch,
            fits,
            tflops_per_gpu: if fits { perf.tflops_per_gpu(&cfg) } else { 0.0 },
        });
    }
    for c in &TABLE3_CONFIGS {
        let cfg = RunConfig {
            workload: SimWorkload {
                layers: 212,
                hidden: 8192,
                seq: SEQ,
                batch_per_gpu: 12,
            },
            stage: c.stage,
            nd: 25,
            mp: 16,
            flags: c.flags,
        };
        let fits = mem.fits(&cluster, &cfg.workload, cfg.stage, 25.0, 16.0, &cfg.flags);
        rows.push(Fig8Row {
            config: c.id,
            model_b: 170.0,
            batch_per_gpu: 12,
            fits,
            tflops_per_gpu: if fits { perf.tflops_per_gpu(&cfg) } else { 0.0 },
        });
    }
    rows
}

/// Prints Figure 8.
pub fn print_fig8(rows: &[Fig8Row]) {
    println!("Figure 8: best throughput per configuration (0 = OOM)");
    println!("{:>7} {:>4} {:>7} {:>6} {:>10}", "model", "cfg", "b/GPU", "fits", "Tf/GPU");
    for r in rows {
        println!(
            "{:>6.0}B  C{}  {:>7} {:>6} {:>10.1}",
            r.model_b,
            r.config,
            r.batch_per_gpu,
            if r.fits { "yes" } else { "OOM" },
            r.tflops_per_gpu
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_paper_cells() {
        let rows = table1();
        let cell = |dp: usize, b: f64| rows.iter().find(|r| r.dp == dp && r.model_b == b).unwrap();
        // Paper Table 1 spot values.
        let r = cell(64, 7.5);
        assert!((r.pos_gb - 31.4).abs() < 0.2, "{}", r.pos_gb);
        assert!((r.pos_g_gb - 16.6).abs() < 0.2);
        assert!((r.pos_g_p_gb - 1.88).abs() < 0.05);
        let r = cell(1024, 1000.0);
        assert!((r.pos_gb - 4011.0).abs() < 25.0);
        assert!((r.pos_g_gb - 2013.0).abs() < 15.0);
        assert!((r.pos_g_p_gb - 15.6).abs() < 0.5);
        let r = cell(16, 128.0);
        assert!((r.pos_gb - 608.0).abs() < 5.0);
        assert!((r.pos_g_p_gb - 128.0).abs() < 2.0);
    }

    #[test]
    fn table2_structure_and_trillion_claim() {
        let rows = table2();
        let r16 = rows.iter().find(|r| r.mp == 16).unwrap();
        // Paper: MP 16 @ 1024 GPUs → baseline 32B, Pos ~121.6B,
        // Pos+g ~230.4B, Pos+g+p ~2T.
        assert!((r16.theory_baseline_b - 34.4).abs() < 3.0, "{}", r16.theory_baseline_b);
        assert!((r16.theory_pos_b - 131.0).abs() < 12.0, "{}", r16.theory_pos_b);
        assert!((r16.theory_pos_g_b - 247.0).abs() < 20.0);
        assert!(r16.theory_pos_g_p_b > 1000.0, "trillion-parameter claim");
        // Measured < theoretical (residual states), but same order.
        assert!(r16.measured_pos_b < r16.theory_pos_b);
        assert!(r16.measured_pos_b > 0.4 * r16.theory_pos_b);
        // Measured baseline around the paper's ~1.3B·mp, i.e. far below 2B·mp.
        let r1 = rows.iter().find(|r| r.mp == 1).unwrap();
        assert!(r1.measured_baseline_b < r1.theory_baseline_b);
    }

    #[test]
    fn fig2_shape_zero_wins_big_and_baseline_collapses() {
        let rows = fig2();
        // ZeRO sustains high throughput across sizes…
        for r in &rows {
            assert!(r.zero_tflops > 25.0, "{}B: ZeRO {}", r.size_b, r.zero_tflops);
        }
        // …while the baseline collapses once MP crosses the node (>40B).
        for r in rows.iter().filter(|r| r.size_b >= 60.0) {
            assert!(r.baseline_tflops < 10.0, "{}B baseline {}", r.size_b, r.baseline_tflops);
            assert!(r.speedup > 5.0, "{}B speedup {}", r.size_b, r.speedup);
        }
        // Aggregate performance reaches the paper's ~15 Pflops ballpark.
        let best = rows.iter().map(|r| r.zero_aggregate_pflops).fold(0.0, f64::max);
        assert!(best > 10.0, "best aggregate {best} Pflops");
        // Small models: baseline is competitive (within ~2x).
        let small = rows.iter().find(|r| r.size_b == 1.5).unwrap();
        assert!(small.speedup < 3.0);
    }

    #[test]
    fn fig3_superlinear_scaling() {
        let rows = fig3();
        // Per-GPU throughput should RISE with GPU count (superlinearity).
        assert!(rows.last().unwrap().tflops_per_gpu > rows[0].tflops_per_gpu);
        // 64 → 128 GPUs: aggregate more than doubles.
        assert!(
            rows[1].speedup_vs_64 > 2.0 * rows[1].perfect_linear / 2.0 && rows[1].speedup_vs_64 > 2.0,
            "64→128 speedup {} not superlinear",
            rows[1].speedup_vs_64
        );
    }

    #[test]
    fn fig4_ddp_baseline_dies_zero_reaches_13b() {
        let rows = fig4();
        for r in &rows {
            if r.zero {
                assert!(r.fits, "{}B ZeRO row must fit", r.size_b);
            }
        }
        // DDP at 1.4B fits (barely); anything past it would not — verify
        // directly that DDP cannot hold 2B.
        let mem = MemoryModel::default();
        let cluster = crate::cluster::ClusterSpec::dgx2_v100();
        let w = SimWorkload::with_params(2048, SEQ, 1, 2e9);
        assert!(!mem.fits(&cluster, &w, ZeroStage::Ddp, 128.0, 1.0, &ZeroRFlags::baseline()));
    }

    #[test]
    fn fig6_ordering_matches_paper() {
        let rows = fig6();
        // C1 < C2 ≤ … and C5 largest; C1 around 40B, C4 > 2× C2, C5 > C4.
        assert!(rows[0].max_params_b < rows[1].max_params_b);
        assert!(rows[3].max_params_b > 1.6 * rows[1].max_params_b);
        assert!(rows[4].max_params_b >= rows[3].max_params_b);
        assert!(
            (20.0..70.0).contains(&rows[0].max_params_b),
            "C1 = {}B should be ~40B",
            rows[0].max_params_b
        );
        assert!(
            rows[3].max_params_b > 100.0,
            "C4 = {}B should be >100B",
            rows[3].max_params_b
        );
    }

    #[test]
    fn fig7_memory_decreases_with_optimizations() {
        let rows = fig7();
        for model_b in [40.0, 100.0] {
            let cells: Vec<f64> = rows
                .iter()
                .filter(|r| r.model_b == model_b)
                .map(|r| r.cached_gb)
                .collect();
            assert!(cells[1] < cells[0], "{model_b}: C2 < C1");
            assert!(cells[3] < cells[2], "{model_b}: C4 < C3");
            assert!(cells[4] <= cells[3], "{model_b}: C5 ≤ C4");
        }
        // §10.5: the C4→C5 drop is noticeable for 100B, not for 40B
        // (relative terms).
        let get = |m: f64, c: usize| {
            rows.iter()
                .filter(|r| r.model_b == m)
                .map(|r| r.cached_gb)
                .nth(c)
                .unwrap()
        };
        let drop40 = (get(40.0, 3) - get(40.0, 4)) / get(40.0, 3);
        let drop100 = (get(100.0, 3) - get(100.0, 4)) / get(100.0, 3);
        assert!(drop100 > drop40, "100B offload saves relatively more");
    }

    #[test]
    fn fig8_shape() {
        let rows = fig8();
        let sixty: Vec<&Fig8Row> = rows.iter().filter(|r| r.model_b == 60.0).collect();
        // Throughput rises C1→C4 with the batch sizes, dips at C5.
        assert!(sixty[3].tflops_per_gpu > sixty[0].tflops_per_gpu);
        assert!(sixty[4].tflops_per_gpu < sixty[3].tflops_per_gpu, "C5 pays PCIe");
        // Every 60B config runs (the paper shows bars for all five).
        assert!(sixty.iter().all(|r| r.fits), "all 60B configs must fit");
        // 170B: §10.5 — "Pa+cpu is needed for the 170B model to execute
        // without running out of memory": only C5 fits.
        let seventy: Vec<&Fig8Row> = rows.iter().filter(|r| r.model_b == 170.0).collect();
        assert!(seventy[4].fits, "170B must fit under C5");
        for c in &seventy[..4] {
            assert!(!c.fits, "170B must OOM under C{}", c.config);
        }
    }
}
