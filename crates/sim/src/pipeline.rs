//! Pipeline-parallelism (PP) baseline model — the §2.1 comparison.
//!
//! The paper contrasts ZeRO with G-pipe and PipeDream:
//!
//! * **G-pipe** partitions parameters and activations across P stages but
//!   "requires a batch size proportional to the number of pipeline
//!   partitions to hide the pipeline bubble": with M micro-batches the
//!   bubble wastes (P−1)/(M+P−1) of the time, and all M micro-batches'
//!   stage activations are live at once.
//! * **PipeDream** hides the bubble with asynchronous weight updates but
//!   "keeps multiple copies of stale parameters" — up to P weight
//!   versions on the deepest stage — "making it less memory efficient",
//!   and is "not equivalent to the standard DL training".
//!
//! These closed forms let the experiments show where ZeRO's §2.1 claims
//! ("the same or better memory efficiency … without the functionality,
//! performance and convergence related restrictions") come from.

use serde::Serialize;

use crate::memory::{MemoryModel, SimWorkload};
use zero_core::ZeroStage;

/// Which pipeline scheme to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum PipelineScheme {
    /// Synchronous micro-batched pipeline (G-pipe).
    GPipe,
    /// Asynchronous 1F1B with stale weights (PipeDream).
    PipeDream,
}

/// A pipeline-parallel configuration.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PipelineConfig {
    /// Pipeline stages P (model split depth-wise).
    pub stages: usize,
    /// Micro-batches in flight M (G-pipe's bubble amortizer).
    pub micro_batches: usize,
    /// Scheme.
    pub scheme: PipelineScheme,
}

impl PipelineConfig {
    /// The fraction of step time lost to the pipeline bubble.
    ///
    /// G-pipe: (P−1)/(M+P−1); PipeDream hides it (≈0) at the cost of
    /// staleness.
    pub fn bubble_fraction(&self) -> f64 {
        match self.scheme {
            PipelineScheme::GPipe => {
                (self.stages - 1) as f64 / (self.micro_batches + self.stages - 1) as f64
            }
            PipelineScheme::PipeDream => 0.0,
        }
    }

    /// Per-device model-state bytes for `psi` total parameters under
    /// mixed-precision Adam (K = 12).
    ///
    /// G-pipe holds one weight version: 16·Ψ/P. PipeDream's stage `s`
    /// keeps P−s weight versions; the worst (first) stage holds P fp16
    /// copies of its parameters alongside one set of optimizer states:
    /// (2·P + 14)·Ψ/P.
    pub fn model_state_bytes(&self, psi: f64) -> f64 {
        let per_stage = psi / self.stages as f64;
        match self.scheme {
            PipelineScheme::GPipe => 16.0 * per_stage,
            PipelineScheme::PipeDream => (2.0 * self.stages as f64 + 14.0) * per_stage,
        }
    }

    /// Per-device activation bytes: each stage stashes its slice of the
    /// activations for every in-flight micro-batch (checkpointing at
    /// stage boundaries still keeps M boundary activations alive).
    pub fn activation_bytes(&self, w: &SimWorkload, mem: &MemoryModel) -> f64 {
        let per_stage_per_micro = mem.full_activation_bytes(w) / self.stages as f64
            / self.micro_batches as f64;
        let in_flight = match self.scheme {
            // All M micro-batches' forward activations live until their
            // backward starts.
            PipelineScheme::GPipe => self.micro_batches as f64,
            // 1F1B bounds in-flight micro-batches by the stage depth.
            PipelineScheme::PipeDream => self.stages as f64,
        };
        per_stage_per_micro * in_flight
    }
}

/// One row of the ZeRO-vs-PP comparison.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PpComparison {
    pub devices: usize,
    pub zero_state_gb: f64,
    pub gpipe_state_gb: f64,
    pub pipedream_state_gb: f64,
    pub gpipe_bubble: f64,
}

/// Compares per-device model-state memory of ZeRO stage 3 against both
/// pipeline schemes at equal device count (DP degree = stages = devices).
pub fn compare_zero_vs_pp(psi: f64, devices: usize, micro_batches: usize) -> PpComparison {
    let mem = MemoryModel::default();
    let zero = mem.model_state_bytes(psi, ZeroStage::Three, devices as f64);
    let gpipe = PipelineConfig {
        stages: devices,
        micro_batches,
        scheme: PipelineScheme::GPipe,
    };
    let pipedream = PipelineConfig {
        stages: devices,
        micro_batches,
        scheme: PipelineScheme::PipeDream,
    };
    PpComparison {
        devices,
        zero_state_gb: zero / 1e9,
        gpipe_state_gb: gpipe.model_state_bytes(psi) / 1e9,
        pipedream_state_gb: pipedream.model_state_bytes(psi) / 1e9,
        gpipe_bubble: gpipe.bubble_fraction(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpipe_bubble_needs_proportional_batch() {
        // §2.1: "requires a batch size proportional to the number of
        // pipeline partitions to hide the pipeline bubble".
        let few = PipelineConfig {
            stages: 16,
            micro_batches: 4,
            scheme: PipelineScheme::GPipe,
        };
        let many = PipelineConfig {
            stages: 16,
            micro_batches: 64,
            scheme: PipelineScheme::GPipe,
        };
        assert!(few.bubble_fraction() > 0.75, "{}", few.bubble_fraction());
        assert!(many.bubble_fraction() < 0.2, "{}", many.bubble_fraction());
    }

    #[test]
    fn pipedream_trades_bubble_for_weight_copies() {
        let pd = PipelineConfig {
            stages: 8,
            micro_batches: 8,
            scheme: PipelineScheme::PipeDream,
        };
        let gp = PipelineConfig {
            scheme: PipelineScheme::GPipe,
            ..pd
        };
        assert_eq!(pd.bubble_fraction(), 0.0);
        assert!(
            pd.model_state_bytes(1e9) > gp.model_state_bytes(1e9),
            "stale weight versions cost memory"
        );
    }

    #[test]
    fn zero_stage3_state_memory_matches_gpipe_and_beats_pipedream() {
        // §2.1: "ZeRO obtains the same or better memory efficiency than
        // PP" — stage 3's 16Ψ/N_d equals G-pipe's 16Ψ/P at equal devices
        // and beats PipeDream's weight-stashing.
        let r = compare_zero_vs_pp(100e9, 16, 16);
        assert!((r.zero_state_gb - r.gpipe_state_gb).abs() < 1e-9);
        assert!(r.pipedream_state_gb > 1.5 * r.zero_state_gb);
        // …without a bubble or a batch-size floor.
        assert!(r.gpipe_bubble > 0.4, "G-pipe at M = P still bubbles heavily");
    }

    #[test]
    fn gpipe_activations_grow_with_micro_batches() {
        let mem = MemoryModel::default();
        let w = SimWorkload {
            layers: 64,
            hidden: 4096,
            seq: 1024,
            batch_per_gpu: 1, // per micro-batch
        };
        let mk = |m: usize| PipelineConfig {
            stages: 8,
            micro_batches: m,
            scheme: PipelineScheme::GPipe,
        };
        // More micro-batches amortize the bubble but stash more
        // activations — the G-pipe bind the paper describes.
        let a8 = mk(8).activation_bytes(&w, &mem);
        let a64 = mk(64).activation_bytes(&w, &mem);
        assert!((a64 / a8 - 1.0).abs() < 1e-9, "per-micro normalized: equal");
        let w64 = SimWorkload { batch_per_gpu: 64, ..w };
        let w8 = SimWorkload { batch_per_gpu: 8, ..w };
        let total64 = mk(64).activation_bytes(&w64, &mem);
        let total8 = mk(8).activation_bytes(&w8, &mem);
        assert!(total64 > 7.0 * total8, "activation stash scales with M");
    }
}
