//! Analytical model of checkpoint cadence vs. failure cost.
//!
//! The supervisor (zero-core) recovers from a rank failure by rolling back
//! to the last consistent sharded checkpoint and resharding it onto the
//! survivors. This module prices that protocol at cluster scale: given a
//! per-step time, a checkpoint cost, and a mean time between failures
//! (MTBF), what cadence minimizes expected wall-clock overhead, and what
//! does one failure cost?
//!
//! The cadence question is the classic Young/Daly first-order optimum
//! `τ* = sqrt(2·C·M)` — checkpoint interval τ, checkpoint cost C, MTBF M —
//! which balances the cost of writing checkpoints (C/τ of runtime) against
//! the expected rework after a failure (τ/2 on average, amortized τ/(2M)).

/// Inputs describing a training deployment's failure economics.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryModel {
    /// Wall-clock seconds per optimizer step.
    pub step_seconds: f64,
    /// Seconds to write one full sharded checkpoint (all ranks, overlapped;
    /// ZeRO shards mean each rank writes only 1/N_d of the state).
    pub checkpoint_seconds: f64,
    /// Mean time between failures for the whole job, in seconds.
    pub mtbf_seconds: f64,
    /// Seconds to detect a failure, load + reshard the checkpoint, and
    /// relaunch (the supervisor's `RecoveryReport::wall_time`).
    pub restart_seconds: f64,
}

impl RecoveryModel {
    /// Young/Daly optimal checkpoint interval in seconds:
    /// `sqrt(2 · checkpoint_seconds · mtbf_seconds)`.
    pub fn optimal_interval_seconds(&self) -> f64 {
        (2.0 * self.checkpoint_seconds * self.mtbf_seconds).sqrt()
    }

    /// The optimal interval expressed in optimizer steps (at least 1).
    pub fn optimal_interval_steps(&self) -> u64 {
        (self.optimal_interval_seconds() / self.step_seconds).round().max(1.0) as u64
    }

    /// Expected fractional overhead (extra runtime / useful runtime) at a
    /// checkpoint interval of `tau` seconds: checkpoint cost `C/τ`, plus
    /// expected rework `(τ/2 + R)/M` per failure window.
    pub fn expected_overhead(&self, tau_seconds: f64) -> f64 {
        assert!(tau_seconds > 0.0, "checkpoint interval must be positive");
        self.checkpoint_seconds / tau_seconds
            + (tau_seconds / 2.0 + self.restart_seconds) / self.mtbf_seconds
    }

    /// Expected overhead at the optimal interval.
    pub fn optimal_overhead(&self) -> f64 {
        self.expected_overhead(self.optimal_interval_seconds())
    }

    /// Expected steps of work lost to one failure at a cadence of
    /// `snapshot_every` steps: on average the failure lands mid-window, so
    /// half a window is discarded.
    pub fn expected_steps_lost(&self, snapshot_every: u64) -> f64 {
        snapshot_every as f64 / 2.0
    }

    /// Wall-clock cost of one failure event at cadence `snapshot_every`:
    /// rework of the discarded half-window plus the restart itself.
    pub fn failure_cost_seconds(&self, snapshot_every: u64) -> f64 {
        self.expected_steps_lost(snapshot_every) * self.step_seconds + self.restart_seconds
    }
}

/// Bytes a recovery re-moves when resharding a ZeRO checkpoint of `psi`
/// parameters with optimizer multiplier `k` (12 for fp16 Adam, §3.1) from
/// any world size onto `new_world` survivors: the whole sharded state is
/// read once and re-partitioned, independent of the old world size.
pub fn reshard_bytes(psi: f64, k: f64, _new_world: usize) -> f64 {
    psi * k
}

/// Prices one rank's per-step memory-tier traffic (ZeRO-Offload) on the
/// host link, and feeds the slowdown back into the Young/Daly cadence:
/// offload stretches the step, so the same optimal interval *in seconds*
/// spans fewer steps — the cadence model and the tier model have to agree
/// on what a "step" costs.
#[derive(Clone, Copy, Debug)]
pub struct TierCostModel {
    /// Host→device bytes one rank fetches per optimizer step
    /// (e.g. [`zero_core::CommPlan::rank_tier_bytes`]'s first component).
    pub fetch_bytes_per_step: f64,
    /// Device→host bytes one rank spills per step (second component).
    pub spill_bytes_per_step: f64,
    /// Individual tier transfers per step (each pays the link latency).
    pub tier_ops_per_step: f64,
    /// Host link bandwidth in bytes/second (0 = unthrottled link).
    pub host_bw_bytes_per_sec: f64,
    /// Per-transfer link latency in seconds.
    pub host_latency_seconds: f64,
    /// Fraction of tier time hidden behind compute: 0 for the synchronous
    /// schedule, approaching 1 when the prefetch/drain windows cover it
    /// (measure with [`crate::overlap_fraction`] on a real trace).
    pub overlap_fraction: f64,
}

impl TierCostModel {
    /// Raw seconds of tier traffic per step: latency per transfer plus
    /// bytes over bandwidth — the same `lat + bytes/bw` law
    /// `zero_core::TierConfig::transfer_time` charges at runtime.
    pub fn tier_seconds_per_step(&self) -> f64 {
        let bytes = self.fetch_bytes_per_step + self.spill_bytes_per_step;
        let bw = if self.host_bw_bytes_per_sec > 0.0 {
            bytes / self.host_bw_bytes_per_sec
        } else {
            0.0
        };
        self.tier_ops_per_step * self.host_latency_seconds + bw
    }

    /// Seconds of tier traffic *exposed* on the critical path after
    /// overlap hides its share.
    pub fn exposed_seconds_per_step(&self) -> f64 {
        assert!(
            (0.0..=1.0).contains(&self.overlap_fraction),
            "overlap fraction must be within [0, 1]"
        );
        (1.0 - self.overlap_fraction) * self.tier_seconds_per_step()
    }

    /// The recovery model with this tier cost folded into the step time:
    /// cadence arithmetic downstream (optimal interval in steps, failure
    /// cost) then prices the offloaded deployment.
    pub fn offloaded(&self, base: RecoveryModel) -> RecoveryModel {
        RecoveryModel {
            step_seconds: base.step_seconds + self.exposed_seconds_per_step(),
            ..base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RecoveryModel {
        RecoveryModel {
            step_seconds: 10.0,
            checkpoint_seconds: 30.0,
            mtbf_seconds: 6.0 * 3600.0,
            restart_seconds: 120.0,
        }
    }

    #[test]
    fn young_daly_interval_matches_closed_form() {
        let m = model();
        let tau = m.optimal_interval_seconds();
        assert!((tau - (2.0 * 30.0 * 6.0 * 3600.0_f64).sqrt()).abs() < 1e-9);
        // ~1138 s at these numbers — roughly 114 steps.
        assert_eq!(m.optimal_interval_steps(), 114);
    }

    #[test]
    fn optimum_beats_neighbors() {
        let m = model();
        let tau = m.optimal_interval_seconds();
        let best = m.expected_overhead(tau);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            assert!(
                best <= m.expected_overhead(tau * factor) + 1e-12,
                "overhead at τ* must not exceed τ*·{factor}"
            );
        }
    }

    #[test]
    fn more_frequent_failures_mean_shorter_intervals() {
        let mut frequent = model();
        frequent.mtbf_seconds /= 16.0;
        assert!(frequent.optimal_interval_seconds() < model().optimal_interval_seconds());
        // And higher overall overhead, checkpointing optimally or not.
        assert!(frequent.optimal_overhead() > model().optimal_overhead());
    }

    #[test]
    fn failure_cost_scales_with_cadence() {
        let m = model();
        assert!(m.failure_cost_seconds(20) > m.failure_cost_seconds(5));
        // Half-window rework: 10 steps at cadence 20.
        assert!((m.expected_steps_lost(20) - 10.0).abs() < 1e-12);
    }

    fn tier() -> TierCostModel {
        TierCostModel {
            fetch_bytes_per_step: 6.0e9,
            spill_bytes_per_step: 2.0e9,
            tier_ops_per_step: 100.0,
            host_bw_bytes_per_sec: 16.0e9, // PCIe-gen3-ish
            host_latency_seconds: 10.0e-6,
            overlap_fraction: 0.0,
        }
    }

    #[test]
    fn tier_pricing_matches_hand_formula() {
        let t = tier();
        let want = 100.0 * 10.0e-6 + 8.0e9 / 16.0e9;
        assert!((t.tier_seconds_per_step() - want).abs() < 1e-12);
        // Unthrottled link charges latency only.
        let mut free = t;
        free.host_bw_bytes_per_sec = 0.0;
        assert!((free.tier_seconds_per_step() - 100.0 * 10.0e-6).abs() < 1e-15);
    }

    #[test]
    fn overlap_hides_tier_time() {
        let mut t = tier();
        let sync = t.exposed_seconds_per_step();
        t.overlap_fraction = 0.8;
        let overlapped = t.exposed_seconds_per_step();
        assert!(overlapped < sync);
        assert!((overlapped - 0.2 * t.tier_seconds_per_step()).abs() < 1e-12);
    }

    #[test]
    fn offload_stretches_steps_and_shortens_cadence_in_steps() {
        let m = model();
        let off = tier().offloaded(m);
        assert!(off.step_seconds > m.step_seconds);
        // τ* in seconds is failure economics only — unchanged by offload —
        // so the slower step packs fewer steps into the same interval.
        assert!(
            (off.optimal_interval_seconds() - m.optimal_interval_seconds()).abs() < 1e-9
        );
        assert!(off.optimal_interval_steps() <= m.optimal_interval_steps());
        // And each failure costs more wall time at the same step cadence.
        assert!(off.failure_cost_seconds(20) > m.failure_cost_seconds(20));
    }

    #[test]
    fn tier_model_prices_a_real_plan() {
        // Feed the analytic model the exact per-rank tier volumes of a
        // real stage-3 offloaded plan, so the two layers can't drift.
        use zero_comm::Grid;
        use zero_core::{CommPlan, StepShape, TierConfig, ZeroConfig, ZeroStage};
        let model_cfg =
            zero_model::ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 };
        let layout = zero_model::Layout::build_mp(&model_cfg, 1);
        let zcfg = ZeroConfig {
            stage: ZeroStage::Three,
            fp16: true,
            checkpoint_activations: false,
            initial_loss_scale: 1.0,
            bucket_elems: 512,
            tier: TierConfig::budgeted(1 << 30),
            ..ZeroConfig::default()
        };
        let plan = CommPlan::train_step(
            &layout,
            &zcfg,
            Grid::new(2, 1),
            &StepShape { micro_batches: 1, act_elems: 8 * 16, skipped: false },
        );
        let (fetch, spill) = plan.rank_tier_bytes(0);
        assert!(fetch > 0 && spill > 0, "offloaded plan moves bytes both ways");
        let t = TierCostModel {
            fetch_bytes_per_step: fetch as f64,
            spill_bytes_per_step: spill as f64,
            tier_ops_per_step: plan.tier_ops().len() as f64,
            host_bw_bytes_per_sec: 16.0e9,
            host_latency_seconds: 10.0e-6,
            overlap_fraction: 0.0,
        };
        assert!(t.tier_seconds_per_step() > 0.0);
        let off = t.offloaded(model());
        assert!(off.step_seconds > model().step_seconds);
    }

    #[test]
    fn reshard_bytes_independent_of_world() {
        let psi = 7.5e9;
        assert_eq!(reshard_bytes(psi, 12.0, 3), reshard_bytes(psi, 12.0, 63));
        assert_eq!(reshard_bytes(psi, 12.0, 4), psi * 12.0);
    }
}
