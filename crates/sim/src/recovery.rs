//! Analytical model of checkpoint cadence vs. failure cost.
//!
//! The supervisor (zero-core) recovers from a rank failure by rolling back
//! to the last consistent sharded checkpoint and resharding it onto the
//! survivors. This module prices that protocol at cluster scale: given a
//! per-step time, a checkpoint cost, and a mean time between failures
//! (MTBF), what cadence minimizes expected wall-clock overhead, and what
//! does one failure cost?
//!
//! The cadence question is the classic Young/Daly first-order optimum
//! `τ* = sqrt(2·C·M)` — checkpoint interval τ, checkpoint cost C, MTBF M —
//! which balances the cost of writing checkpoints (C/τ of runtime) against
//! the expected rework after a failure (τ/2 on average, amortized τ/(2M)).

/// Inputs describing a training deployment's failure economics.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryModel {
    /// Wall-clock seconds per optimizer step.
    pub step_seconds: f64,
    /// Seconds to write one full sharded checkpoint (all ranks, overlapped;
    /// ZeRO shards mean each rank writes only 1/N_d of the state).
    pub checkpoint_seconds: f64,
    /// Mean time between failures for the whole job, in seconds.
    pub mtbf_seconds: f64,
    /// Seconds to detect a failure, load + reshard the checkpoint, and
    /// relaunch (the supervisor's `RecoveryReport::wall_time`).
    pub restart_seconds: f64,
}

impl RecoveryModel {
    /// Young/Daly optimal checkpoint interval in seconds:
    /// `sqrt(2 · checkpoint_seconds · mtbf_seconds)`.
    pub fn optimal_interval_seconds(&self) -> f64 {
        (2.0 * self.checkpoint_seconds * self.mtbf_seconds).sqrt()
    }

    /// The optimal interval expressed in optimizer steps (at least 1).
    pub fn optimal_interval_steps(&self) -> u64 {
        (self.optimal_interval_seconds() / self.step_seconds).round().max(1.0) as u64
    }

    /// Expected fractional overhead (extra runtime / useful runtime) at a
    /// checkpoint interval of `tau` seconds: checkpoint cost `C/τ`, plus
    /// expected rework `(τ/2 + R)/M` per failure window.
    pub fn expected_overhead(&self, tau_seconds: f64) -> f64 {
        assert!(tau_seconds > 0.0, "checkpoint interval must be positive");
        self.checkpoint_seconds / tau_seconds
            + (tau_seconds / 2.0 + self.restart_seconds) / self.mtbf_seconds
    }

    /// Expected overhead at the optimal interval.
    pub fn optimal_overhead(&self) -> f64 {
        self.expected_overhead(self.optimal_interval_seconds())
    }

    /// Expected steps of work lost to one failure at a cadence of
    /// `snapshot_every` steps: on average the failure lands mid-window, so
    /// half a window is discarded.
    pub fn expected_steps_lost(&self, snapshot_every: u64) -> f64 {
        snapshot_every as f64 / 2.0
    }

    /// Wall-clock cost of one failure event at cadence `snapshot_every`:
    /// rework of the discarded half-window plus the restart itself.
    pub fn failure_cost_seconds(&self, snapshot_every: u64) -> f64 {
        self.expected_steps_lost(snapshot_every) * self.step_seconds + self.restart_seconds
    }
}

/// Bytes a recovery re-moves when resharding a ZeRO checkpoint of `psi`
/// parameters with optimizer multiplier `k` (12 for fp16 Adam, §3.1) from
/// any world size onto `new_world` survivors: the whole sharded state is
/// read once and re-partitioned, independent of the old world size.
pub fn reshard_bytes(psi: f64, k: f64, _new_world: usize) -> f64 {
    psi * k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RecoveryModel {
        RecoveryModel {
            step_seconds: 10.0,
            checkpoint_seconds: 30.0,
            mtbf_seconds: 6.0 * 3600.0,
            restart_seconds: 120.0,
        }
    }

    #[test]
    fn young_daly_interval_matches_closed_form() {
        let m = model();
        let tau = m.optimal_interval_seconds();
        assert!((tau - (2.0 * 30.0 * 6.0 * 3600.0_f64).sqrt()).abs() < 1e-9);
        // ~1138 s at these numbers — roughly 114 steps.
        assert_eq!(m.optimal_interval_steps(), 114);
    }

    #[test]
    fn optimum_beats_neighbors() {
        let m = model();
        let tau = m.optimal_interval_seconds();
        let best = m.expected_overhead(tau);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            assert!(
                best <= m.expected_overhead(tau * factor) + 1e-12,
                "overhead at τ* must not exceed τ*·{factor}"
            );
        }
    }

    #[test]
    fn more_frequent_failures_mean_shorter_intervals() {
        let mut frequent = model();
        frequent.mtbf_seconds /= 16.0;
        assert!(frequent.optimal_interval_seconds() < model().optimal_interval_seconds());
        // And higher overall overhead, checkpointing optimally or not.
        assert!(frequent.optimal_overhead() > model().optimal_overhead());
    }

    #[test]
    fn failure_cost_scales_with_cadence() {
        let m = model();
        assert!(m.failure_cost_seconds(20) > m.failure_cost_seconds(5));
        // Half-window rework: 10 steps at cadence 20.
        assert!((m.expected_steps_lost(20) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn reshard_bytes_independent_of_world() {
        let psi = 7.5e9;
        assert_eq!(reshard_bytes(psi, 12.0, 3), reshard_bytes(psi, 12.0, 63));
        assert_eq!(reshard_bytes(psi, 12.0, 4), psi * 12.0);
    }
}
