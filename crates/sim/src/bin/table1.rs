//! Regenerates the paper's Table1 (see DESIGN.md §4 and EXPERIMENTS.md).

fn main() {
    let rows = zero_sim::experiments::table1();
    zero_sim::experiments::print_table1(&rows);
    zero_sim::experiments::write_json("table1", &rows).expect("write results/table1.json");
}
