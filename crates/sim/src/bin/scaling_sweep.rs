//! Beyond Figure 3: "we expect this trend to continue further as we
//! increase the number of GPUs beyond 400" (§10.3). This sweep extends
//! the 60B superlinear-scaling experiment to 1024 GPUs and contrasts
//! fixed-batch (strong) scaling against memory-driven max-batch scaling —
//! the mechanism test for the superlinearity claim.

use serde::Serialize;
use zero_core::ZeroStage;
use zero_sim::{MemoryModel, PerfModel, RunConfig, SimWorkload, ZeroRFlags};

#[derive(Serialize)]
struct SweepRow {
    gpus: usize,
    max_batch: usize,
    tflops_max_batch: f64,
    pflops_max_batch: f64,
    tflops_fixed_batch: f64,
    speedup_vs_64: f64,
    linear: f64,
}

fn main() {
    let perf = PerfModel::default();
    let mem = MemoryModel::default();
    let base_workload = SimWorkload {
        layers: 75, // 60B at h = 8192
        hidden: 8192,
        seq: 1024,
        batch_per_gpu: 16,
    };
    let mp = 16;
    let mut rows: Vec<SweepRow> = Vec::new();
    println!("60B model, MP 16, stage P_os+g: scaling 64 → 1024 GPUs");
    println!(
        "{:>5} | {:>9} {:>12} {:>10} | {:>13} | {:>9} {:>7}",
        "GPUs", "max b", "Tf (max b)", "Pflops", "Tf (b=16)", "speedup", "linear"
    );
    let mut base_pflops = None;
    for nd in [4usize, 8, 16, 25, 32, 48, 64] {
        let gpus = nd * mp;
        let mut cfg = RunConfig {
            workload: base_workload,
            stage: ZeroStage::Two,
            nd,
            mp,
            flags: ZeroRFlags::with_pa(),
        };
        let max_batch = perf.max_batch_per_gpu(&mem, &cfg, 128).unwrap_or(0);
        cfg.workload.batch_per_gpu = max_batch.max(1);
        let tf_max = perf.tflops_per_gpu(&cfg);
        let pf = perf.aggregate_pflops(&cfg);
        let base = *base_pflops.get_or_insert(pf);
        let mut fixed = cfg;
        fixed.workload.batch_per_gpu = 16;
        let tf_fixed = perf.tflops_per_gpu(&fixed);
        let linear = gpus as f64 / (4 * mp) as f64;
        println!(
            "{:>5} | {:>9} {:>12.1} {:>10.2} | {:>13.1} | {:>8.2}x {:>6.2}x",
            gpus,
            max_batch,
            tf_max,
            pf,
            tf_fixed,
            pf / base,
            linear
        );
        rows.push(SweepRow {
            gpus,
            max_batch,
            tflops_max_batch: tf_max,
            pflops_max_batch: pf,
            tflops_fixed_batch: tf_fixed,
            speedup_vs_64: pf / base,
            linear,
        });
    }
    println!("\nReading: with memory-driven batches the speedup column stays ahead of");
    println!("the linear column (superlinear) until the max batch saturates; at a");
    println!("fixed batch the same sweep is merely linear — isolating the paper's");
    println!("claimed mechanism (§10.3: bigger N_d → more memory → bigger batch →");
    println!("higher arithmetic intensity).");
    zero_sim::experiments::write_json("scaling_sweep", &rows)
        .expect("write results/scaling_sweep.json");
}
