//! Regenerates the paper's Fig2 (see DESIGN.md §4 and EXPERIMENTS.md).

fn main() {
    let rows = zero_sim::experiments::fig2();
    zero_sim::experiments::print_fig2(&rows);
    zero_sim::experiments::write_json("fig2", &rows).expect("write results/fig2.json");
}
