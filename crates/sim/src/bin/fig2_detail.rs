//! Figure 2, dissected: per-row step-time breakdown (compute / MP comm /
//! exposed DP comm / PCIe) for every Table 5 configuration — *why* ZeRO
//! wins where it wins.

use serde::Serialize;
use zero_sim::configs::TABLE5_FIG2;
use zero_sim::PerfModel;

#[derive(Serialize)]
struct DetailRow {
    size_b: f64,
    system: &'static str,
    gpus: usize,
    mp: usize,
    batch: usize,
    compute_s: f64,
    mp_comm_s: f64,
    dp_comm_s: f64,
    total_s: f64,
    tflops_per_gpu: f64,
}

fn main() {
    let perf = PerfModel::default();
    println!("Figure 2 step-time breakdown (Table 5 configurations):\n");
    println!(
        "{:>7} {:>9} {:>5} {:>4} {:>6} | {:>9} {:>9} {:>9} {:>9} | {:>8}",
        "size", "system", "GPUs", "MP", "b/GPU", "compute", "MP comm", "DP comm", "total", "Tf/GPU"
    );
    let mut rows = Vec::new();
    for row in TABLE5_FIG2 {
        let cfg = row.run_config();
        let t = perf.step_time(&cfg);
        let system = if row.zero { "ZeRO" } else { "baseline" };
        println!(
            "{:>6.1}B {:>9} {:>5} {:>4} {:>6} | {:>8.2}s {:>8.2}s {:>8.2}s {:>8.2}s | {:>8.1}",
            row.size_b, system, row.gpus, row.mp, row.batch,
            t.compute, t.mp_comm, t.dp_comm, t.total,
            perf.tflops_per_gpu(&cfg)
        );
        rows.push(DetailRow {
            size_b: row.size_b,
            system,
            gpus: row.gpus,
            mp: row.mp,
            batch: row.batch,
            compute_s: t.compute,
            mp_comm_s: t.mp_comm,
            dp_comm_s: t.dp_comm,
            total_s: t.total,
            tflops_per_gpu: perf.tflops_per_gpu(&cfg),
        });
    }
    println!("\nReading: ZeRO rows are compute-dominated (MP stays on NVSwitch);");
    println!("baseline rows ≥60B drown in cross-node MP all-reduce time.");
    zero_sim::experiments::write_json("fig2_detail", &rows)
        .expect("write results/fig2_detail.json");
}
