//! Figure 5 substitute: validation perplexity of a larger ZeRO-trained
//! model vs. a smaller baseline-scale model.
//!
//! The paper's Figure 5 shows Turing-NLG (17B, trained end-to-end with
//! ZeRO-100B) reaching lower validation perplexity than the previous
//! SOTA Megatron-LM 8.3B. We cannot train 17B parameters here, so per
//! DESIGN.md the claim reproduced is the *relative* one on a synthetic
//! corpus at laptop scale: (a) ZeRO's convergence is identical to plain
//! DDP, and (b) the larger model reaches lower validation perplexity over
//! the same training schedule.

use serde::Serialize;
use zero_comm::Grid;
use zero_core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero_model::ModelConfig;

#[derive(Serialize)]
struct Fig5Point {
    step: usize,
    small_ppl: f32,
    large_ppl: f32,
}

#[derive(Serialize)]
struct Fig5Result {
    small_params: usize,
    large_params: usize,
    points: Vec<Fig5Point>,
    ddp_final_loss: f32,
    zero_final_loss: f32,
}

fn setup(model: ModelConfig, stage: ZeroStage, seed: u64) -> TrainSetup {
    TrainSetup {
        model,
        zero: ZeroConfig {
            stage,
            fp16: true,
            initial_loss_scale: 128.0,
            checkpoint_activations: true,
            ..ZeroConfig::default()
        },
        grid: Grid::new(2, 1),
        global_batch: 8,
        seed,
    }
}

fn main() {
    let steps = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120usize);
    let eval_every = (steps / 12).max(1);

    // The "Megatron 8.3B" stand-in (smaller) vs "Turing-NLG 17B" (larger).
    let small = ModelConfig {
        vocab: 64,
        seq: 32,
        hidden: 48,
        layers: 2,
        heads: 4,
    };
    let large = ModelConfig {
        vocab: 64,
        seq: 32,
        hidden: 96,
        layers: 4,
        heads: 8,
    };

    eprintln!(
        "training small ({} params) and large ({} params) models, {steps} steps…",
        zero_model::Layout::build(&small).total_params(),
        zero_model::Layout::build(&large).total_params()
    );
    let small_rep = run_training(&setup(small, ZeroStage::Two, 11), steps, eval_every);
    let large_rep = run_training(&setup(large, ZeroStage::Two, 11), steps, eval_every);

    // Convergence equivalence at the large size: ZeRO-2 vs DDP.
    let ddp_rep = run_training(&setup(large, ZeroStage::Ddp, 11), steps.min(30), 0);
    let zero_rep = run_training(&setup(large, ZeroStage::Two, 11), steps.min(30), 0);

    let points: Vec<Fig5Point> = small_rep
        .val_losses
        .iter()
        .zip(&large_rep.val_losses)
        .enumerate()
        .map(|(i, (s, l))| Fig5Point {
            step: (i + 1) * eval_every,
            small_ppl: s.exp(),
            large_ppl: l.exp(),
        })
        .collect();

    println!("Figure 5 (substituted): validation perplexity over training");
    println!("{:>6} {:>12} {:>12}", "step", "small ppl", "large ppl");
    for p in &points {
        println!("{:>6} {:>12.3} {:>12.3}", p.step, p.small_ppl, p.large_ppl);
    }
    let last = points.last().expect("at least one eval point");
    println!(
        "final: large model ppl {:.3} vs small model ppl {:.3} ({})",
        last.large_ppl,
        last.small_ppl,
        if last.large_ppl < last.small_ppl {
            "larger model wins, as in the paper"
        } else {
            "UNEXPECTED ordering"
        }
    );
    println!(
        "convergence check: DDP loss {:.4} vs ZeRO-2 loss {:.4} after {} steps",
        ddp_rep.losses.last().unwrap(),
        zero_rep.losses.last().unwrap(),
        steps.min(30)
    );

    let result = Fig5Result {
        small_params: zero_model::Layout::build(&small).total_params(),
        large_params: zero_model::Layout::build(&large).total_params(),
        points,
        ddp_final_loss: *ddp_rep.losses.last().unwrap(),
        zero_final_loss: *zero_rep.losses.last().unwrap(),
    };
    zero_sim::experiments::write_json("fig5", &result).expect("write results/fig5.json");
}
