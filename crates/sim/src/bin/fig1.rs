//! Regenerates the paper's Fig1 (see DESIGN.md §4 and EXPERIMENTS.md).

fn main() {
    let rows = zero_sim::experiments::fig1();
    zero_sim::experiments::print_fig1(&rows);
    zero_sim::experiments::write_json("fig1", &rows).expect("write results/fig1.json");
}
