//! §7 verification: measured per-rank communication volume of the
//! functional engine vs. the paper's analysis (DP = 2Ψ, P_os+g = 2Ψ,
//! P_os+g+p ≤ 3Ψ — all "per rank per step", here in exact ring terms
//! with the (N−1)/N factor).

use serde::Serialize;
use zero_comm::{CollectiveKind, Grid};
use zero_core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero_model::ModelConfig;

#[derive(Serialize)]
struct VolumeRow {
    stage: String,
    psi: usize,
    nd: usize,
    measured_elems_per_step: f64,
    paper_elems_per_step: f64,
    ratio_vs_baseline: f64,
}

fn main() {
    let model = ModelConfig {
        vocab: 48,
        seq: 8,
        hidden: 32,
        layers: 3,
        heads: 4,
    };
    let psi = model.total_params();
    let nd = 4;
    let steps = 3;
    let ring = (nd - 1) as f64 / nd as f64;

    let mut rows = Vec::new();
    let mut baseline = 0.0;
    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        let setup = TrainSetup {
            model,
            zero: ZeroConfig {
                stage,
                fp16: true,
                initial_loss_scale: 1.0,
                checkpoint_activations: false,
                bucket_elems: 2048,
                ..ZeroConfig::default()
            },
            grid: Grid::new(nd, 1),
            global_batch: 4,
            seed: 9,
        };
        let report = run_training(&setup, steps, 0);
        let r = &report.ranks[0];
        // fp16 gradient/parameter traffic: 2 bytes per element.
        let bytes = r.traffic.bytes(CollectiveKind::AllReduce)
            + r.traffic.bytes(CollectiveKind::ReduceScatter)
            + r.traffic.bytes(CollectiveKind::AllGather);
        let elems = bytes as f64 / 2.0 / steps as f64;
        let paper = match stage {
            ZeroStage::Ddp | ZeroStage::One | ZeroStage::Two => 2.0 * psi as f64 * ring,
            ZeroStage::Three => 3.0 * psi as f64 * ring,
        };
        if stage == ZeroStage::Ddp {
            baseline = elems;
        }
        rows.push(VolumeRow {
            stage: stage.name().to_string(),
            psi,
            nd,
            measured_elems_per_step: elems,
            paper_elems_per_step: paper,
            ratio_vs_baseline: elems / baseline,
        });
    }

    println!("§7 communication volume, measured on the functional engine (Nd = {nd}, Ψ = {psi}):");
    println!(
        "{:>18} | {:>14} {:>14} {:>9}",
        "stage", "measured/step", "paper bound", "vs DP"
    );
    for r in &rows {
        println!(
            "{:>18} | {:>14.0} {:>14.0} {:>8.2}x",
            r.stage, r.measured_elems_per_step, r.paper_elems_per_step, r.ratio_vs_baseline
        );
    }
    println!("(measured includes the 1-element overflow-flag all-reduce; stage 3 stays ≤ 1.5x)");
    zero_sim::experiments::write_json("comm_volume", &rows).expect("write results/comm_volume.json");
}
