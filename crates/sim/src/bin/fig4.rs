//! Regenerates the paper's Fig4 (see DESIGN.md §4 and EXPERIMENTS.md).

fn main() {
    let rows = zero_sim::experiments::fig4();
    zero_sim::experiments::print_fig4(&rows);
    zero_sim::experiments::write_json("fig4", &rows).expect("write results/fig4.json");
}
