//! Regenerates the paper's Fig7 (see DESIGN.md §4 and EXPERIMENTS.md).

fn main() {
    let rows = zero_sim::experiments::fig7();
    zero_sim::experiments::print_fig7(&rows);
    zero_sim::experiments::write_json("fig7", &rows).expect("write results/fig7.json");
}
