//! §1's Megatron cliff: "MP … works well within a single node where the
//! inter-GPU communication bandwidth is high, but the efficiency degrades
//! quickly beyond a single node. We tested a 40B parameter model using
//! Megatron-LM across two DGX-2 nodes and observe about 5 Tflops per V100
//! GPU (less than 5% of hardware peak)."
//!
//! Sweep the MP degree for that 40B model and watch the throughput fall
//! off the node boundary.

use serde::Serialize;
use zero_core::ZeroStage;
use zero_sim::{PerfModel, RunConfig, SimWorkload, ZeroRFlags};

#[derive(Serialize)]
struct MpRow {
    mp: usize,
    crosses_node: bool,
    tflops_per_gpu: f64,
    peak_fraction: f64,
    mp_comm_share: f64,
}

fn main() {
    let perf = PerfModel::default();
    // Table 5's 40B baseline shape: 88 layers, h = 6144, micro-batch 4.
    let workload = SimWorkload {
        layers: 88,
        hidden: 6144,
        seq: 1024,
        batch_per_gpu: 4,
    };
    println!("40B Megatron-style model, MP degree sweep (DGX-2: 16 GPUs/node):\n");
    println!(
        "{:>4} {:>12} | {:>10} {:>8} {:>14}",
        "MP", "topology", "Tf/GPU", "of peak", "MP-comm share"
    );
    let mut rows = Vec::new();
    for mp in [1usize, 2, 4, 8, 16, 32, 64] {
        let cfg = RunConfig {
            workload,
            stage: ZeroStage::Ddp,
            nd: 2, // a little DP on the side, like the baseline rows
            mp,
            flags: ZeroRFlags::baseline(),
        };
        let t = perf.step_time(&cfg);
        let tf = perf.tflops_per_gpu(&cfg);
        let crosses = mp > 16;
        println!(
            "{:>4} {:>12} | {:>10.1} {:>7.1}% {:>13.0}%",
            mp,
            if crosses { "cross-node" } else { "in-node" },
            tf,
            100.0 * tf * 1e12 / perf.cluster.peak_flops,
            100.0 * t.mp_comm / t.total
        );
        rows.push(MpRow {
            mp,
            crosses_node: crosses,
            tflops_per_gpu: tf,
            peak_fraction: tf * 1e12 / perf.cluster.peak_flops,
            mp_comm_share: t.mp_comm / t.total,
        });
    }
    println!("\n§1 reproduced: inside the node MP holds ~30% of peak; the first");
    println!("cross-node step collapses to single-digit Tflops (<5% of peak) because");
    println!("the per-block all-reduces leave NVSwitch for the shared IB links.");
    zero_sim::experiments::write_json("mp_scaling", &rows).expect("write results/mp_scaling.json");
}
