//! Regenerates the paper's Fig6 (see DESIGN.md §4 and EXPERIMENTS.md).

fn main() {
    let rows = zero_sim::experiments::fig6();
    zero_sim::experiments::print_fig6(&rows);
    zero_sim::experiments::write_json("fig6", &rows).expect("write results/fig6.json");
}
