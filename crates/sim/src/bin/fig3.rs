//! Regenerates the paper's Fig3 (see DESIGN.md §4 and EXPERIMENTS.md).

fn main() {
    let rows = zero_sim::experiments::fig3();
    zero_sim::experiments::print_fig3(&rows);
    zero_sim::experiments::write_json("fig3", &rows).expect("write results/fig3.json");
}
