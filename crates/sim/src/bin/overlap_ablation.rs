//! Ablation: how much of ZeRO's gradient traffic hides behind backward
//! compute, as a function of the CB bucket size — the §5.2/§6.2 design
//! choice, quantified with the discrete-event simulator at the paper's
//! 100B-on-400-GPUs operating point.

use serde::Serialize;
use zero_sim::{overlap_fraction, simulate_overlapped, simulate_serial, DesConfig};

#[derive(Serialize)]
struct OverlapRow {
    bucket_mb: f64,
    collectives: usize,
    exposed_comm_s: f64,
    serial_comm_s: f64,
    overlap_fraction: f64,
    step_time_s: f64,
}

fn main() {
    // 100B model, MP 16, per-GPU view: 125 layers, ~6.25B local params →
    // 12.5 GB fp16 gradients; backward ≈ 2/3 of a ~20 s step; effective
    // DP bandwidth 6.25 GB/s (shared NIC); ~0.5 ms ring latency.
    let layers = 125;
    let grad_bytes_total = 12.5e9_f64;
    let base = DesConfig {
        layers,
        layer_compute: 13.0 / layers as f64,
        layer_grad_bytes: grad_bytes_total / layers as f64,
        bucket_bytes: 0.0, // set per row
        bandwidth: 6.25e9,
        latency: 5e-4,
    };

    let mut rows = Vec::new();
    println!("Gradient reduce-scatter overlap vs CB bucket size (100B/400-GPU point):");
    println!(
        "{:>10} | {:>12} {:>12} {:>12} {:>9} {:>10}",
        "bucket", "collectives", "exposed s", "serial s", "hidden", "step s"
    );
    for bucket_mb in [1.0_f64, 8.0, 64.0, 512.0, 4096.0, 16384.0] {
        let cfg = DesConfig {
            bucket_bytes: bucket_mb * 1e6,
            ..base
        };
        let o = simulate_overlapped(&cfg);
        let s = simulate_serial(&cfg);
        let f = overlap_fraction(&cfg);
        println!(
            "{:>7.0}MB | {:>12} {:>12.2} {:>12.2} {:>8.0}% {:>10.2}",
            bucket_mb,
            o.collectives,
            o.exposed_comm,
            s.exposed_comm,
            f * 100.0,
            o.total
        );
        rows.push(OverlapRow {
            bucket_mb,
            collectives: o.collectives,
            exposed_comm_s: o.exposed_comm,
            serial_comm_s: s.exposed_comm,
            overlap_fraction: f,
            step_time_s: o.total,
        });
    }
    println!("\nReading: mid-sized constant buffers hide most of the 2Ψ gradient");
    println!("volume behind backward compute (the PerfModel's dp_overlap ≈ 0.7);");
    println!("one giant fused buffer (the §6.2 anti-pattern) serializes it.");
    zero_sim::experiments::write_json("overlap_ablation", &rows)
        .expect("write results/overlap_ablation.json");
}
