//! Stage advisor: given a model and a cluster share, recommend the ZeRO
//! configuration — the §4/§9 decision procedure ("if and when to apply
//! P_a and P_a+cpu", which stage fits, what throughput to expect) as a
//! tool.
//!
//! ```text
//! cargo run --release -p zero-sim --bin stage_advisor -- <size_B> <gpus> [mp] [batch]
//! ```

use zero_core::ZeroStage;
use zero_sim::{ClusterSpec, MemoryModel, PerfModel, RunConfig, SimWorkload, ZeroRFlags};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size_b: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100.0);
    let gpus: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
    let mp: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(16);
    let batch: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(16);

    let cluster = ClusterSpec::dgx2_v100();
    let mem = MemoryModel::default();
    let perf = PerfModel::default();
    let nd = (gpus / mp).max(1);
    let workload = SimWorkload::with_params(8192, 1024, batch, size_b * 1e9);

    println!(
        "advising for {size_b}B params on {gpus} GPUs (MP {mp} × DP {nd}), batch {batch}/GPU\n"
    );
    println!(
        "{:>18} {:>12} | {:>6} {:>10} {:>11}",
        "stage", "ZeRO-R", "fits", "Tf/GPU", "comm factor"
    );

    let flag_sets: [(&str, ZeroRFlags); 3] = [
        ("ckpt", ZeroRFlags::baseline()),
        ("ckpt+Pa", ZeroRFlags::with_pa()),
        ("ckpt+Pa+cpu", ZeroRFlags::with_pa_cpu()),
    ];
    let mut recommendation: Option<(ZeroStage, &str, f64)> = None;
    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        for (label, flags) in flag_sets {
            let cfg = RunConfig {
                workload,
                stage,
                nd,
                mp,
                flags,
            };
            let fits = mem.fits(&cluster, &workload, stage, nd as f64, mp as f64, &flags);
            let tf = if fits { perf.tflops_per_gpu(&cfg) } else { 0.0 };
            let comm = match stage {
                ZeroStage::Three => "1.5x",
                _ => "1.0x",
            };
            println!(
                "{:>18} {:>12} | {:>6} {:>10.1} {:>11}",
                stage.name(),
                label,
                if fits { "yes" } else { "OOM" },
                tf,
                comm
            );
            // Recommend the highest-throughput fitting configuration,
            // preferring the cheapest ZeRO-R additions at equal speed.
            if fits && recommendation.is_none_or(|(_, _, best)| tf > best + 1e-9) {
                recommendation = Some((stage, label, tf));
            }
        }
    }

    println!();
    match recommendation {
        Some((stage, label, tf)) => {
            println!("RECOMMENDATION: {} with {label} (≈{tf:.1} Tflops/GPU).", stage.name());
            if stage == ZeroStage::Three {
                println!("Note: stage 3 trades a 1.5x communication volume for the N_d× memory");
                println!("reduction (§7.2.2); prefer stage 2 whenever it fits.");
            }
        }
        None => {
            let need3 = mem.model_state_bytes(size_b * 1e9 / mp as f64, ZeroStage::Three, nd as f64);
            println!(
                "Nothing fits. Stage-3 states alone need {:.1} GB/GPU; add GPUs so that",
                need3 / 1e9
            );
            println!("16Ψ/(N_m·N_d) drops below the device budget (§5.4: with enough devices");
            println!("ZeRO fits models of arbitrary size).");
        }
    }
}
