//! Regenerates the paper's Table2 (see DESIGN.md §4 and EXPERIMENTS.md).

fn main() {
    let rows = zero_sim::experiments::table2();
    zero_sim::experiments::print_table2(&rows);
    zero_sim::experiments::write_json("table2", &rows).expect("write results/table2.json");
}
