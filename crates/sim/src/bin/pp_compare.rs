//! §2.1 comparison: ZeRO vs pipeline parallelism. Quantifies the paper's
//! claims that G-pipe needs batch ∝ stages to hide its bubble, that
//! PipeDream's stale-weight stashing costs memory, and that ZeRO matches
//! or beats both on model-state memory without their restrictions.

use zero_sim::{compare_zero_vs_pp, PipelineConfig, PipelineScheme};

fn main() {
    let psi = 100e9;
    println!("100B parameters, devices = pipeline stages = DP degree:\n");
    println!(
        "{:>8} | {:>10} {:>11} {:>14} | {:>13}",
        "devices", "ZeRO-3 GB", "G-pipe GB", "PipeDream GB", "G-pipe bubble"
    );
    let mut rows = Vec::new();
    for devices in [4usize, 8, 16, 32, 64] {
        let r = compare_zero_vs_pp(psi, devices, devices); // M = P
        println!(
            "{:>8} | {:>10.1} {:>11.1} {:>14.1} | {:>12.0}%",
            r.devices,
            r.zero_state_gb,
            r.gpipe_state_gb,
            r.pipedream_state_gb,
            100.0 * r.gpipe_bubble
        );
        rows.push(r);
    }
    println!("\nBubble vs micro-batch count (16 stages):");
    println!("{:>6} {:>8}", "M", "bubble");
    for m in [4usize, 16, 64, 256] {
        let b = PipelineConfig {
            stages: 16,
            micro_batches: m,
            scheme: PipelineScheme::GPipe,
        }
        .bubble_fraction();
        println!("{:>6} {:>7.0}%", m, 100.0 * b);
    }
    println!("\n§2.1 reproduced: ZeRO matches G-pipe's per-device state memory with no");
    println!("bubble and no batch-size floor, and beats PipeDream's weight stashing;");
    println!("G-pipe only escapes its bubble with convergence-hostile batch sizes.");
    zero_sim::experiments::write_json("pp_compare", &rows).expect("write results/pp_compare.json");
}
