//! §3.2/§6.3 demonstration: the training allocation pattern fragments a
//! first-fit heap until a fused-buffer request OOMs with ~40% of memory
//! free; MD's pre-allocated contiguous region prevents it.

use serde::Serialize;
use zero_sim::simulate_training_fragmentation;

#[derive(Serialize)]
struct FragRow {
    md: bool,
    free_frac: f64,
    largest_extent_frac: f64,
    fragmentation: f64,
    probe_succeeded: bool,
}

fn main() {
    let (cap, layers, ckpt, work, wpl, probe) = (6_000usize, 60, 60, 90, 4, 2_000);
    println!("Heap {cap} units, {layers} layers, checkpoint {ckpt}/layer, probe {probe}:");
    println!(
        "{:>8} | {:>9} {:>15} {:>14} {:>7}",
        "MD", "free", "largest extent", "fragmentation", "probe"
    );
    let mut rows = Vec::new();
    for md in [false, true] {
        let r = simulate_training_fragmentation(cap, layers, ckpt, work, wpl, probe, md);
        println!(
            "{:>8} | {:>8.0}% {:>14.0}% {:>13.0}% {:>7}",
            if md { "on" } else { "off" },
            100.0 * r.free_total as f64 / cap as f64,
            100.0 * r.largest_extent as f64 / cap as f64,
            100.0 * r.fragmentation,
            if r.probe_succeeded { "OK" } else { "OOM" }
        );
        rows.push(FragRow {
            md,
            free_frac: r.free_total as f64 / cap as f64,
            largest_extent_frac: r.largest_extent as f64 / cap as f64,
            fragmentation: r.fragmentation,
            probe_succeeded: r.probe_succeeded,
        });
    }
    println!("\n§3.2: \"out of memory issue with over 30% of memory still available\" —");
    println!("reproduced: the probe OOMs without MD despite ample total free memory.");
    zero_sim::experiments::write_json("fragmentation", &rows)
        .expect("write results/fragmentation.json");
}
