//! Table 2's right half at engine scale: the *measured* model-state
//! memory of the functional engine vs. the paper's closed-form bounds —
//! demonstrating, as §5.4 does at cluster scale, that "our memory
//! analysis provides realistic upper bounds".

use serde::Serialize;
use zero_comm::Grid;
use zero_core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero_model::ModelConfig;

#[derive(Serialize)]
struct MemRow {
    stage: String,
    nd: usize,
    psi: usize,
    measured_bytes: u64,
    formula_bytes: u64,
    exact_match: bool,
}

fn formula(psi: u64, stage: ZeroStage, shard: u64) -> u64 {
    match stage {
        ZeroStage::Ddp => 16 * psi,
        ZeroStage::One => 4 * psi + 12 * shard,
        ZeroStage::Two => 2 * psi + 14 * shard,
        ZeroStage::Three => 16 * shard,
    }
}

fn main() {
    let model = ModelConfig {
        vocab: 48,
        seq: 8,
        hidden: 32,
        layers: 3,
        heads: 4,
    };
    let psi = model.total_params() as u64;
    let mut rows = Vec::new();
    for nd in [1usize, 2, 4] {
        for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
            let setup = TrainSetup {
                model,
                zero: ZeroConfig {
                    stage,
                    fp16: true,
                    ..ZeroConfig::default()
                },
                grid: Grid::new(nd, 1),
                global_batch: 4,
                seed: 2,
            };
            let report = run_training(&setup, 1, 0);
            let measured = report.ranks[0].peak_model_state_bytes;
            let shard = zero_comm::chunk_range(psi as usize, nd, 0).len() as u64;
            let want = formula(psi, stage, shard);
            rows.push(MemRow {
                stage: stage.name().to_string(),
                nd,
                psi: psi as usize,
                measured_bytes: measured,
                formula_bytes: want,
                exact_match: measured == want,
            });
        }
    }
    println!("Measured model-state bytes (rank 0) vs paper formulas, Ψ = {psi}:");
    println!(
        "{:>18} {:>4} | {:>12} {:>12} {:>6}",
        "stage", "Nd", "measured", "formula", "exact"
    );
    for r in &rows {
        println!(
            "{:>18} {:>4} | {:>12} {:>12} {:>6}",
            r.stage,
            r.nd,
            r.measured_bytes,
            r.formula_bytes,
            if r.exact_match { "yes" } else { "NO" }
        );
    }
    assert!(rows.iter().all(|r| r.exact_match), "a formula mismatch slipped in");
    zero_sim::experiments::write_json("engine_memory", &rows)
        .expect("write results/engine_memory.json");
}
