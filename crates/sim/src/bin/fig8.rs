//! Regenerates the paper's Fig8 (see DESIGN.md §4 and EXPERIMENTS.md).

fn main() {
    let rows = zero_sim::experiments::fig8();
    zero_sim::experiments::print_fig8(&rows);
    zero_sim::experiments::write_json("fig8", &rows).expect("write results/fig8.json");
}
