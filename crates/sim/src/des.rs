//! Discrete-event simulation of one training step's backward pass with
//! bucketed gradient reduction.
//!
//! §5.2: "we bucketize all the gradients … and perform reduction on the
//! entire bucket at once … to … overlap computation and communication."
//! This module simulates that pipeline explicitly: backward compute
//! produces per-layer gradients on a timeline; a single network resource
//! serves reduction jobs FIFO; the step ends when both the compute chain
//! and the reduction queue drain. Comparing the overlapped schedule with
//! a serial one (all communication after all compute — the unbucketed
//! strawman) quantifies how much of the §7 volume is actually *exposed*,
//! which is what the `PerfModel` overlap constants assert.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use serde::Serialize;

/// Input to the step simulation.
#[derive(Clone, Copy, Debug)]
pub struct DesConfig {
    /// Number of transformer layers (gradient producers), backward order.
    pub layers: usize,
    /// Backward compute time per layer, seconds.
    pub layer_compute: f64,
    /// Gradient bytes produced per layer.
    pub layer_grad_bytes: f64,
    /// Bucket capacity in bytes (CB): reductions fire when this much
    /// gradient data has accumulated.
    pub bucket_bytes: f64,
    /// Network bandwidth available to this rank, bytes/s.
    pub bandwidth: f64,
    /// Fixed per-collective latency, seconds (ring setup cost).
    pub latency: f64,
}

/// Result of a simulated step.
#[derive(Clone, Copy, Debug, Default, Serialize)]
pub struct DesResult {
    /// Time at which backward compute finished.
    pub compute_done: f64,
    /// Time at which the last reduction finished (= step end).
    pub total: f64,
    /// Communication time not hidden behind compute.
    pub exposed_comm: f64,
    /// Number of reduction collectives fired.
    pub collectives: usize,
    /// Largest queue depth observed at the network resource.
    pub max_queue: usize,
}

#[derive(Debug, PartialEq)]
struct Event {
    time: f64,
    kind: EventKind,
}

#[derive(Debug, PartialEq, Eq)]
enum EventKind {
    /// Layer `i` (in backward order) finished computing its gradients.
    LayerDone(usize),
    /// The network finished the job at the queue head.
    NetDone,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on time (BinaryHeap is a max-heap, so reverse).
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| match (&self.kind, &other.kind) {
                // Deterministic tie-break: network completions first.
                (EventKind::NetDone, EventKind::LayerDone(_)) => Ordering::Greater,
                (EventKind::LayerDone(_), EventKind::NetDone) => Ordering::Less,
                _ => Ordering::Equal,
            })
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Simulates one backward pass with bucketed, overlapped reduction.
///
/// # Panics
/// Panics on non-positive bandwidth or zero layers.
pub fn simulate_overlapped(cfg: &DesConfig) -> DesResult {
    assert!(cfg.bandwidth > 0.0, "bandwidth must be positive");
    assert!(cfg.layers > 0, "need at least one layer");
    let mut events = BinaryHeap::new();
    // Backward compute is a serial chain: layer i completes at (i+1)·t.
    for i in 0..cfg.layers {
        events.push(Event {
            time: (i + 1) as f64 * cfg.layer_compute,
            kind: EventKind::LayerDone(i),
        });
    }
    let compute_done = cfg.layers as f64 * cfg.layer_compute;

    let mut pending_bytes = 0.0; // accumulating bucket
    let mut queue: Vec<f64> = Vec::new(); // queued reduction job sizes
    let mut net_busy_until: Option<f64> = None;
    let mut collectives = 0usize;
    let mut max_queue = 0usize;
    let mut last_net_done = 0.0_f64;
    let mut busy_time = 0.0_f64;

    let start_net = |queue: &mut Vec<f64>,
                         events: &mut BinaryHeap<Event>,
                         net_busy_until: &mut Option<f64>,
                         busy_time: &mut f64,
                         now: f64,
                         cfg: &DesConfig| {
        if net_busy_until.is_none() {
            if let Some(bytes) = queue.first().copied() {
                queue.remove(0);
                let dur = cfg.latency + bytes / cfg.bandwidth;
                *busy_time += dur;
                *net_busy_until = Some(now + dur);
                events.push(Event {
                    time: now + dur,
                    kind: EventKind::NetDone,
                });
            }
        }
    };

    let mut produced_layers = 0usize;
    while let Some(Event { time, kind }) = events.pop() {
        match kind {
            EventKind::LayerDone(_) => {
                produced_layers += 1;
                pending_bytes += cfg.layer_grad_bytes;
                let last = produced_layers == cfg.layers;
                if pending_bytes >= cfg.bucket_bytes || last {
                    queue.push(pending_bytes);
                    collectives += 1;
                    pending_bytes = 0.0;
                    max_queue = max_queue.max(queue.len() + usize::from(net_busy_until.is_some()));
                }
                start_net(&mut queue, &mut events, &mut net_busy_until, &mut busy_time, time, cfg);
            }
            EventKind::NetDone => {
                last_net_done = time;
                net_busy_until = None;
                start_net(&mut queue, &mut events, &mut net_busy_until, &mut busy_time, time, cfg);
            }
        }
    }
    let total = compute_done.max(last_net_done);
    DesResult {
        compute_done,
        total,
        exposed_comm: total - compute_done,
        collectives,
        max_queue,
    }
}

/// The serial strawman: all gradients reduced in one collective after the
/// whole backward pass (no overlap).
pub fn simulate_serial(cfg: &DesConfig) -> DesResult {
    let compute_done = cfg.layers as f64 * cfg.layer_compute;
    let bytes = cfg.layers as f64 * cfg.layer_grad_bytes;
    let comm = cfg.latency + bytes / cfg.bandwidth;
    DesResult {
        compute_done,
        total: compute_done + comm,
        exposed_comm: comm,
        collectives: 1,
        max_queue: 1,
    }
}

/// The fraction of raw communication time hidden by overlap:
/// `1 − exposed_overlapped / exposed_serial`.
pub fn overlap_fraction(cfg: &DesConfig) -> f64 {
    let o = simulate_overlapped(cfg);
    let s = simulate_serial(cfg);
    if s.exposed_comm <= 0.0 {
        return 0.0;
    }
    (1.0 - o.exposed_comm / s.exposed_comm).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DesConfig {
        DesConfig {
            layers: 10,
            layer_compute: 1.0,
            layer_grad_bytes: 100.0,
            bucket_bytes: 100.0,
            bandwidth: 200.0, // each layer's reduction takes 0.5 s
            latency: 0.0,
        }
    }

    #[test]
    fn fully_hidden_when_network_is_fast() {
        // Comm per layer (0.5 s) < compute per layer (1 s): everything but
        // the last bucket hides behind compute.
        let r = simulate_overlapped(&base());
        assert_eq!(r.compute_done, 10.0);
        assert!((r.total - 10.5).abs() < 1e-9, "only the tail exposed: {r:?}");
        assert_eq!(r.collectives, 10);
    }

    #[test]
    fn serial_exposes_everything() {
        let r = simulate_serial(&base());
        assert_eq!(r.compute_done, 10.0);
        assert!((r.exposed_comm - 5.0).abs() < 1e-9);
        assert!((r.total - 15.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_never_loses_to_serial() {
        for bw in [10.0, 50.0, 200.0, 1e4] {
            for bucket in [50.0, 100.0, 500.0, 1e4] {
                let cfg = DesConfig {
                    bandwidth: bw,
                    bucket_bytes: bucket,
                    ..base()
                };
                let o = simulate_overlapped(&cfg);
                let s = simulate_serial(&cfg);
                assert!(
                    o.total <= s.total + 1e-9,
                    "bw={bw} bucket={bucket}: {o:?} vs {s:?}"
                );
            }
        }
    }

    #[test]
    fn slow_network_becomes_the_bottleneck() {
        let cfg = DesConfig {
            bandwidth: 50.0, // 2 s per layer reduction vs 1 s compute
            ..base()
        };
        let r = simulate_overlapped(&cfg);
        // Network total work = 10·2 s; it can start at t=1 at the earliest.
        assert!((r.total - 21.0).abs() < 1e-9, "{r:?}");
        assert!(r.exposed_comm > 10.0);
    }

    #[test]
    fn latency_penalizes_small_buckets() {
        // In the latency-dominated regime (§6.2: "a large all-reduce
        // operation achieves much higher bandwidth than a smaller one"),
        // bigger buckets win by amortizing the per-collective cost.
        let small = DesConfig {
            latency: 2.0,
            bandwidth: 1e6,
            bucket_bytes: 100.0,
            ..base()
        };
        let big = DesConfig {
            bucket_bytes: 500.0,
            ..small
        };
        let rs = simulate_overlapped(&small);
        let rb = simulate_overlapped(&big);
        assert!(rs.collectives > rb.collectives);
        assert!(
            rb.total < rs.total,
            "bigger buckets amortize latency: {rb:?} vs {rs:?}"
        );
        // When bandwidth (not latency) dominates and hides behind compute,
        // smaller buckets can start earlier and win instead — the tension
        // CB balances.
        let small_fast = DesConfig { latency: 0.5, ..base() };
        let big_fast = DesConfig { latency: 0.5, bucket_bytes: 500.0, ..base() };
        assert!(simulate_overlapped(&small_fast).total <= simulate_overlapped(&big_fast).total);
    }

    #[test]
    fn overlap_fraction_in_unit_range_and_high_for_fast_nets() {
        let f = overlap_fraction(&base());
        assert!((0.0..=1.0).contains(&f));
        assert!(f > 0.8, "fast network should hide most traffic, got {f}");
    }
}

/// Stage-3 forward pipeline: each layer's parameters must be all-gathered
/// before its compute. With prefetch, layer l+1's gather overlaps layer
/// l's compute (the standard ZeRO-3 optimization); without it the two
/// serialize.
#[derive(Clone, Copy, Debug)]
pub struct Stage3Config {
    /// Layers to traverse.
    pub layers: usize,
    /// Forward compute per layer, seconds.
    pub layer_compute: f64,
    /// Parameter all-gather per layer, seconds.
    pub layer_gather: f64,
}

/// Forward-pass time with layer-ahead prefetch: the first gather is
/// exposed; every later gather hides behind the previous layer's compute
/// (to the extent it fits).
pub fn stage3_forward_prefetch(cfg: &Stage3Config) -> f64 {
    assert!(cfg.layers > 0, "need at least one layer");
    let mut t_params_ready = cfg.layer_gather; // gather for layer 0
    let mut t_compute_free = 0.0_f64;
    let mut next_gather_done = f64::NAN;
    for l in 0..cfg.layers {
        let start = t_params_ready.max(t_compute_free);
        // Kick off the next layer's gather as compute starts.
        if l + 1 < cfg.layers {
            next_gather_done = start + cfg.layer_gather;
        }
        t_compute_free = start + cfg.layer_compute;
        t_params_ready = next_gather_done;
    }
    t_compute_free
}

/// Forward-pass time without prefetch: gathers and compute serialize.
pub fn stage3_forward_serial(cfg: &Stage3Config) -> f64 {
    cfg.layers as f64 * (cfg.layer_gather + cfg.layer_compute)
}

#[cfg(test)]
mod stage3_tests {
    use super::*;

    #[test]
    fn prefetch_hides_gathers_behind_compute() {
        // Gather (0.2 s) < compute (1 s): only the first gather is exposed.
        let cfg = Stage3Config {
            layers: 10,
            layer_compute: 1.0,
            layer_gather: 0.2,
        };
        let pre = stage3_forward_prefetch(&cfg);
        let ser = stage3_forward_serial(&cfg);
        assert!((pre - 10.2).abs() < 1e-9, "got {pre}");
        assert!((ser - 12.0).abs() < 1e-9);
    }

    #[test]
    fn gather_bound_when_network_is_slow() {
        // Gather (2 s) > compute (1 s): the pipeline is gather-bound.
        let cfg = Stage3Config {
            layers: 10,
            layer_compute: 1.0,
            layer_gather: 2.0,
        };
        let pre = stage3_forward_prefetch(&cfg);
        // layer 0 ready at 2; each subsequent start gated by gathers
        // spaced ~2 s apart; last compute ends at 2 + 9·2 + 1 = 21.
        assert!((pre - 21.0).abs() < 1e-9, "got {pre}");
        assert!(pre < stage3_forward_serial(&cfg));
    }

    #[test]
    fn prefetch_never_loses() {
        for g in [0.01, 0.5, 1.0, 3.0] {
            for c in [0.1, 1.0, 2.0] {
                let cfg = Stage3Config {
                    layers: 7,
                    layer_compute: c,
                    layer_gather: g,
                };
                assert!(
                    stage3_forward_prefetch(&cfg) <= stage3_forward_serial(&cfg) + 1e-9,
                    "g={g} c={c}"
                );
            }
        }
    }

    #[test]
    fn single_layer_has_nothing_to_hide() {
        let cfg = Stage3Config {
            layers: 1,
            layer_compute: 1.0,
            layer_gather: 0.5,
        };
        assert_eq!(stage3_forward_prefetch(&cfg), stage3_forward_serial(&cfg));
    }
}
