//! Analytical memory model (§3, §5, §6 of the paper).
//!
//! Model states follow the paper's exact arithmetic (K = 12 for
//! mixed-precision Adam). Residual states follow the paper's published
//! estimates: total activations ≈ 12·h·s·b·L fp16 elements (footnote 3),
//! one checkpointed activation of s·h·b per transformer layer (§6.1).
//! Real allocators cannot use every byte (temporary buffers, CUDA
//! context, fragmentation §3.2/§6.3); [`MemoryModel::usable_fraction`]
//! captures that headroom and is the only tuned constant.

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;
use zero_core::ZeroStage;

/// Bytes per fp16 element.
const FP16: f64 = 2.0;
/// The mixed-precision Adam multiplier K of §3.1.
pub const K_ADAM: f64 = 12.0;

/// A transformer workload at cluster scale.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimWorkload {
    /// Transformer layers L.
    pub layers: usize,
    /// Hidden dimension h.
    pub hidden: usize,
    /// Sequence length s.
    pub seq: usize,
    /// Micro-batch size per GPU b.
    pub batch_per_gpu: usize,
}

impl SimWorkload {
    /// Parameter count via the paper's estimate Ψ ≈ 12·L·h².
    pub fn params(&self) -> f64 {
        12.0 * self.layers as f64 * (self.hidden as f64) * (self.hidden as f64)
    }

    /// A workload with the layer count chosen to hit roughly `target`
    /// parameters at this hidden size.
    pub fn with_params(hidden: usize, seq: usize, batch: usize, target: f64) -> SimWorkload {
        let layers = (target / (12.0 * (hidden as f64) * (hidden as f64))).round().max(1.0);
        SimWorkload {
            layers: layers as usize,
            hidden,
            seq,
            batch_per_gpu: batch,
        }
    }
}

/// ZeRO-R switches for the memory model (Table 3's C1–C5 combine these
/// with a stage).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZeroRFlags {
    /// Activation checkpointing (one checkpoint per transformer layer).
    pub checkpointing: bool,
    /// P_a: checkpoints partitioned across the MP group.
    pub partition_activations: bool,
    /// P_a+cpu: checkpoints offloaded to host memory.
    pub cpu_offload: bool,
}

impl ZeroRFlags {
    /// Checkpointing only (the paper's default for large models).
    pub fn baseline() -> ZeroRFlags {
        ZeroRFlags {
            checkpointing: true,
            partition_activations: false,
            cpu_offload: false,
        }
    }

    /// Checkpointing + P_a.
    pub fn with_pa() -> ZeroRFlags {
        ZeroRFlags {
            partition_activations: true,
            ..ZeroRFlags::baseline()
        }
    }

    /// Checkpointing + P_a + CPU offload.
    pub fn with_pa_cpu() -> ZeroRFlags {
        ZeroRFlags {
            cpu_offload: true,
            ..ZeroRFlags::with_pa()
        }
    }
}

/// The analytical memory model.
#[derive(Clone, Copy, Debug)]
pub struct MemoryModel {
    /// Fraction of device memory actually available to tensors after
    /// framework overheads and fragmentation headroom.
    pub usable_fraction: f64,
    /// Constant-size fused buffers (CB, §6.2), bytes.
    pub constant_buffers: f64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            usable_fraction: 0.91,
            constant_buffers: 1.0e9,
        }
    }
}

impl MemoryModel {
    /// Per-GPU model-state bytes for `psi` parameters under a stage —
    /// the closed forms of Figure 1 / Table 1. `psi` is the parameter
    /// count of one MP shard (divide the full model's Ψ by N_m first).
    pub fn model_state_bytes(&self, psi: f64, stage: ZeroStage, nd: f64) -> f64 {
        match stage {
            ZeroStage::Ddp => (2.0 + 2.0 + K_ADAM) * psi,
            ZeroStage::One => (2.0 + 2.0) * psi + K_ADAM * psi / nd,
            ZeroStage::Two => 2.0 * psi + (2.0 + K_ADAM) * psi / nd,
            ZeroStage::Three => (2.0 + 2.0 + K_ADAM) * psi / nd,
        }
    }

    /// Total activation bytes per replica without checkpointing
    /// (footnote 3: ≈ 12·h·s·b·L fp16 elements).
    pub fn full_activation_bytes(&self, w: &SimWorkload) -> f64 {
        FP16 * 12.0
            * (w.hidden as f64)
            * (w.seq as f64)
            * (w.batch_per_gpu as f64)
            * (w.layers as f64)
    }

    /// Checkpointed-activation bytes per GPU: one s·h·b checkpoint per
    /// layer, replicated across MP unless P_a partitions it; zero on
    /// device with CPU offload.
    pub fn checkpoint_bytes(&self, w: &SimWorkload, mp: f64, r: &ZeroRFlags) -> f64 {
        if !r.checkpointing {
            return 0.0;
        }
        if r.cpu_offload {
            return 0.0;
        }
        let full = FP16
            * (w.hidden as f64)
            * (w.seq as f64)
            * (w.batch_per_gpu as f64)
            * (w.layers as f64);
        if r.partition_activations {
            full / mp
        } else {
            full
        }
    }

    /// Transient working activations during one layer's (re)computation:
    /// the 12·h·s·b single-layer working set, of which the attention/MLP
    /// intermediates shard across MP while ~2·h·s·b stays replicated.
    pub fn working_activation_bytes(&self, w: &SimWorkload, mp: f64) -> f64 {
        let per_layer =
            FP16 * 12.0 * (w.hidden as f64) * (w.seq as f64) * (w.batch_per_gpu as f64);
        let replicated = FP16 * 2.0 * (w.hidden as f64) * (w.seq as f64) * (w.batch_per_gpu as f64);
        (per_layer - replicated) / mp + replicated
    }

    /// Activation bytes per GPU under the flags: checkpoints (+ the
    /// working set) when checkpointing, the full stash otherwise
    /// (sharded like the working set across MP).
    pub fn activation_bytes(&self, w: &SimWorkload, mp: f64, r: &ZeroRFlags) -> f64 {
        if r.checkpointing {
            self.checkpoint_bytes(w, mp, r) + self.working_activation_bytes(w, mp)
        } else {
            self.full_activation_bytes(w) / mp * 0.85 + self.working_activation_bytes(w, mp) * 0.15
        }
    }

    /// Total per-GPU bytes for a workload on a dp × mp grid.
    pub fn total_bytes(
        &self,
        w: &SimWorkload,
        stage: ZeroStage,
        nd: f64,
        mp: f64,
        r: &ZeroRFlags,
    ) -> f64 {
        let psi_shard = w.params() / mp;
        self.model_state_bytes(psi_shard, stage, nd)
            + self.activation_bytes(w, mp, r)
            + self.constant_buffers
    }

    /// True if the workload fits one GPU of `cluster`.
    pub fn fits(
        &self,
        cluster: &ClusterSpec,
        w: &SimWorkload,
        stage: ZeroStage,
        nd: f64,
        mp: f64,
        r: &ZeroRFlags,
    ) -> bool {
        self.total_bytes(w, stage, nd, mp, r) <= self.usable_fraction * cluster.gpu_mem_bytes as f64
    }

    /// Largest parameter count (via layer count at fixed hidden/seq/batch)
    /// that fits — the Figure 6 / Table 2 "measured" search.
    #[allow(clippy::too_many_arguments)]
    pub fn max_model_params(
        &self,
        cluster: &ClusterSpec,
        hidden: usize,
        seq: usize,
        batch: usize,
        stage: ZeroStage,
        nd: f64,
        mp: f64,
        r: &ZeroRFlags,
    ) -> f64 {
        let mut lo = 0usize; // layers that fit
        let mut hi = 1usize;
        let mk = |layers: usize| SimWorkload {
            layers,
            hidden,
            seq,
            batch_per_gpu: batch,
        };
        while self.fits(cluster, &mk(hi), stage, nd, mp, r) {
            lo = hi;
            hi *= 2;
            if hi > 1 << 22 {
                break; // astronomically large; stop doubling
            }
        }
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.fits(cluster, &mk(mid), stage, nd, mp, r) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        mk(lo).params()
    }

    /// Max *theoretical* model size from model states alone (Table 2's
    /// left half): the largest Ψ with state bytes ≤ the full device
    /// memory.
    pub fn max_theoretical_params(
        &self,
        cluster: &ClusterSpec,
        stage: ZeroStage,
        nd: f64,
        mp: f64,
    ) -> f64 {
        // states(psi/mp, stage, nd) ≤ M  →  psi ≤ M·mp / coef.
        let coef = self.model_state_bytes(1.0, stage, nd);
        cluster.gpu_mem_bytes as f64 * mp / coef
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gb(x: f64) -> f64 {
        x / 1e9
    }

    #[test]
    fn figure1_example_numbers() {
        // Ψ = 7.5B, N_d = 64, K = 12 (Figure 1): 120 GB → 31.4 → 16.6 → 1.9.
        let m = MemoryModel::default();
        let psi = 7.5e9;
        assert!((gb(m.model_state_bytes(psi, ZeroStage::Ddp, 64.0)) - 120.0).abs() < 0.1);
        assert!((gb(m.model_state_bytes(psi, ZeroStage::One, 64.0)) - 31.4).abs() < 0.1);
        assert!((gb(m.model_state_bytes(psi, ZeroStage::Two, 64.0)) - 16.6).abs() < 0.1);
        assert!((gb(m.model_state_bytes(psi, ZeroStage::Three, 64.0)) - 1.88).abs() < 0.05);
    }

    #[test]
    fn table1_spot_checks() {
        let m = MemoryModel::default();
        // 128B model, DP 1024: Pos+g+p = 2 GB; Pos+g = 257 GB.
        assert!((gb(m.model_state_bytes(128e9, ZeroStage::Three, 1024.0)) - 2.0).abs() < 0.1);
        assert!((gb(m.model_state_bytes(128e9, ZeroStage::Two, 1024.0)) - 257.0).abs() < 1.0);
        // 1T model, DP 64: Pos = 4187 GB.
        assert!((gb(m.model_state_bytes(1e12, ZeroStage::One, 64.0)) - 4187.0).abs() < 20.0);
    }

    #[test]
    fn table2_theoretical_maxima() {
        // N_d = 64, 32 GB: baseline 2B·mp, Pos 7.6B·mp, Pos+g 14.4B·mp,
        // Pos+g+p 128B·mp.
        let m = MemoryModel::default();
        let c = ClusterSpec::dgx2_v100();
        let b = |stage, mp: f64| m.max_theoretical_params(&c, stage, 64.0, mp) / 1e9;
        assert!((b(ZeroStage::Ddp, 1.0) - 2.15).abs() < 0.1);
        assert!((b(ZeroStage::One, 1.0) - 8.2).abs() < 0.25); // 34.36GB/4.1875
        assert!((b(ZeroStage::Two, 1.0) - 15.5).abs() < 0.3);
        assert!((b(ZeroStage::Three, 1.0) - 137.4).abs() < 1.0);
        // MP scales all of them linearly (Table 2's rows).
        assert!((b(ZeroStage::Three, 16.0) / b(ZeroStage::Three, 1.0) - 16.0).abs() < 1e-9);
    }

    #[test]
    fn activation_example_from_section_3_2() {
        // §3.2: GPT-2 1.5B (48 layers, h=1600, s=1024, b=32) has ~60 GB of
        // activations; checkpointing reduces it to ~8 GB.
        let m = MemoryModel::default();
        let w = SimWorkload {
            layers: 48,
            hidden: 1600,
            seq: 1024,
            batch_per_gpu: 32,
        };
        let full = m.full_activation_bytes(&w);
        assert!((gb(full) - 60.0).abs() < 5.0, "got {} GB", gb(full));
        let ck = m.checkpoint_bytes(&w, 1.0, &ZeroRFlags::baseline());
        assert!(gb(ck) < 8.0, "checkpointed {} GB", gb(ck));
    }

    #[test]
    fn section_6_1_pa_example() {
        // §6.1: a 100B model (Table 4: 125 layers, h=8192) with MP 16:
        // checkpoints ≈ 33 GB per GPU, reduced to ≈ 2 GB by P_a (a 16×
        // reduction) and to 0 by P_a+cpu. The paper quotes "batch size of
        // 32"; 2·h·s·b·L matches its 33 GB at an effective micro-batch of
        // 16 (half), so we check the 33 GB figure at b = 16 and the exact
        // N_m ratio at any batch.
        let m = MemoryModel::default();
        let w = SimWorkload {
            layers: 125,
            hidden: 8192,
            seq: 1024,
            batch_per_gpu: 16,
        };
        let no_pa = m.checkpoint_bytes(&w, 16.0, &ZeroRFlags::baseline());
        assert!((gb(no_pa) - 33.0).abs() < 3.0, "got {} GB", gb(no_pa));
        let pa = m.checkpoint_bytes(&w, 16.0, &ZeroRFlags::with_pa());
        assert!((gb(pa) - 2.0).abs() < 0.3, "got {} GB", gb(pa));
        assert!((no_pa / pa - 16.0).abs() < 1e-9, "P_a ratio is exactly N_m");
        let cpu = m.checkpoint_bytes(&w, 16.0, &ZeroRFlags::with_pa_cpu());
        assert_eq!(cpu, 0.0);
    }

    #[test]
    fn max_model_search_is_monotone_in_stage() {
        let m = MemoryModel::default();
        let c = ClusterSpec::dgx2_v100();
        let r = ZeroRFlags::with_pa();
        let sizes: Vec<f64> = [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three]
            .iter()
            .map(|&s| m.max_model_params(&c, 8192, 1024, 16, s, 25.0, 16.0, &r))
            .collect();
        for pair in sizes.windows(2) {
            assert!(pair[1] > pair[0], "later stages must fit more: {sizes:?}");
        }
    }

    #[test]
    fn workload_with_params_round_trips() {
        let w = SimWorkload::with_params(8192, 1024, 16, 100e9);
        let psi = w.params();
        assert!((psi - 100e9).abs() / 100e9 < 0.01, "got {psi}");
    }
}
