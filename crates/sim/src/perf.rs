//! Analytical throughput model.
//!
//! Time per training step is decomposed into
//!
//! * **compute** — executed FLOPs (dense 6Ψ per token + attention, ×4/3
//!   under activation checkpointing for the recompute pass, §3.2) over the
//!   GPU's achievable rate. Achievable rate = peak × an efficiency that
//!   grows with GEMM row count (tokens per micro-batch) and hidden size —
//!   the "arithmetic intensity" lever behind the paper's superlinear
//!   scaling (§10.3).
//! * **MP communication** — Megatron's 2 all-reduces of b·s·h per block
//!   per pass (§8), serialized with compute, at NVSwitch speed inside a
//!   node and at the shared-NIC/IB rate across nodes — the cliff that
//!   caps the Figure 2 baseline.
//! * **DP communication** — 2Ψ (DDP, P_os, P_os+g) or 3Ψ (P_os+g+p)
//!   fp16 volumes (§7), largely overlapped with backward via bucketing.
//! * **PCIe** — 2× checkpoint bytes for P_a+cpu (§8), mostly hidden
//!   behind compute at large arithmetic intensity.
//!
//! Constants are calibrated to public hardware numbers (V100 peak, ring
//! volumes) with two free efficiency shape parameters; the paper's
//! *shapes* (who wins, crossovers, superlinearity) must then emerge.

use serde::{Deserialize, Serialize};

use crate::cluster::ClusterSpec;
use crate::memory::{MemoryModel, SimWorkload, ZeroRFlags};
use zero_core::ZeroStage;

/// A complete simulated run configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// The workload (per-GPU micro-batch inside).
    pub workload: SimWorkload,
    /// ZeRO-DP stage (DDP = baseline data parallelism).
    pub stage: ZeroStage,
    /// Data-parallel degree N_d.
    pub nd: usize,
    /// Model-parallel degree N_m.
    pub mp: usize,
    /// ZeRO-R flags.
    pub flags: ZeroRFlags,
}

impl RunConfig {
    /// Total GPUs.
    pub fn gpus(&self) -> usize {
        self.nd * self.mp
    }
}

/// Per-step time decomposition, seconds.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct StepBreakdown {
    /// Compute (forward + backward + recompute).
    pub compute: f64,
    /// Serialized model-parallel all-reduce time.
    pub mp_comm: f64,
    /// Exposed (non-overlapped) data-parallel communication time.
    pub dp_comm: f64,
    /// Exposed PCIe time (P_a+cpu).
    pub pcie: f64,
    /// Total step time.
    pub total: f64,
}

/// The throughput model.
#[derive(Clone, Copy, Debug)]
pub struct PerfModel {
    /// Hardware constants.
    pub cluster: ClusterSpec,
    /// Peak fraction reachable by ideal GEMMs.
    pub eff_max: f64,
    /// Tokens per micro-batch at which efficiency reaches half of max.
    pub tokens_half: f64,
    /// Hidden size at which the size factor reaches half.
    pub hidden_half: f64,
    /// Fraction of DP gradient traffic hidden behind backward compute.
    pub dp_overlap: f64,
    /// Fraction of stage-3 parameter gathers hidden behind compute.
    pub stage3_overlap: f64,
    /// Fraction of PCIe traffic hidden behind compute (large arithmetic
    /// intensity, §4.2.1-b).
    pub pcie_overlap: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            cluster: ClusterSpec::dgx2_v100(),
            eff_max: 0.52,
            tokens_half: 2048.0,
            hidden_half: 1024.0,
            dp_overlap: 0.7,
            stage3_overlap: 0.5,
            pcie_overlap: 0.2,
        }
    }
}

impl PerfModel {
    /// GEMM efficiency (fraction of peak) for a workload.
    pub fn efficiency(&self, w: &SimWorkload) -> f64 {
        let tokens = (w.batch_per_gpu * w.seq) as f64;
        let bf = tokens / (tokens + self.tokens_half);
        let hf = w.hidden as f64 / (w.hidden as f64 + self.hidden_half);
        self.eff_max * bf * hf
    }

    /// Model FLOPs per GPU per step (counting the recompute pass when
    /// checkpointing — the convention under which the paper's 38
    /// Tflops/GPU sustained throughput is stated).
    pub fn flops_per_gpu(&self, cfg: &RunConfig) -> f64 {
        let w = &cfg.workload;
        let psi = w.params();
        let tokens = (w.batch_per_gpu * w.seq) as f64;
        let dense = 6.0 * psi * tokens;
        let attn = 12.0 * (w.layers * w.seq) as f64 * (w.seq * w.hidden) as f64
            * w.batch_per_gpu as f64;
        let recompute = if cfg.flags.checkpointing { 4.0 / 3.0 } else { 1.0 };
        (dense + attn) * recompute / cfg.mp as f64
    }

    /// Effective per-GPU bandwidth for the MP group's collectives.
    fn mp_bw(&self, cfg: &RunConfig) -> f64 {
        let per_node = cfg.mp.min(self.cluster.gpus_per_node);
        self.cluster.collective_bw(cfg.mp, per_node)
    }

    /// Effective per-GPU bandwidth for DP collectives: when the node is
    /// fully occupied (mp·nd ≥ 16 with MP inside the node), all 16 GPUs
    /// compete for the NIC.
    fn dp_bw(&self, cfg: &RunConfig) -> f64 {
        let world = cfg.gpus();
        if world <= self.cluster.gpus_per_node {
            return self.cluster.intra_node_bw;
        }
        let per_node = self.cluster.gpus_per_node;
        self.cluster.collective_bw(cfg.nd.max(2), per_node)
    }

    /// Serialized MP all-reduce time per step (§8's 12·s·h per block, i.e.
    /// 2 all-reduces per block per pass; 3 passes with checkpointing), plus
    /// the P_a all-gather when enabled.
    pub fn mp_comm_time(&self, cfg: &RunConfig) -> f64 {
        if cfg.mp == 1 {
            return 0.0;
        }
        let w = &cfg.workload;
        let act_bytes = 2.0 * (w.batch_per_gpu * w.seq * w.hidden) as f64;
        let ring = 2.0 * (cfg.mp - 1) as f64 / cfg.mp as f64; // all-reduce volume factor
        let passes = if cfg.flags.checkpointing { 3.0 } else { 2.0 };
        let mut vol = passes * 2.0 * act_bytes * ring * w.layers as f64;
        if cfg.flags.partition_activations {
            // One all-gather of the checkpoint per block.
            vol += act_bytes * ((cfg.mp - 1) as f64 / cfg.mp as f64) * w.layers as f64;
        }
        vol / self.mp_bw(cfg)
    }

    /// Raw (pre-overlap) DP communication time per step: the §7 volumes.
    pub fn dp_comm_time_raw(&self, cfg: &RunConfig) -> f64 {
        if cfg.nd == 1 {
            return 0.0;
        }
        let psi_shard = cfg.workload.params() / cfg.mp as f64;
        let ring = (cfg.nd - 1) as f64 / cfg.nd as f64;
        let factor = match cfg.stage {
            ZeroStage::Ddp | ZeroStage::One | ZeroStage::Two => 2.0,
            ZeroStage::Three => 3.0,
        };
        factor * 2.0 * psi_shard * ring / self.dp_bw(cfg)
    }

    /// Full step-time decomposition.
    pub fn step_time(&self, cfg: &RunConfig) -> StepBreakdown {
        let compute = self.flops_per_gpu(cfg) / (self.cluster.peak_flops * self.efficiency(&cfg.workload));
        let mp_comm = self.mp_comm_time(cfg);
        let raw_dp = self.dp_comm_time_raw(cfg);
        let overlap = match cfg.stage {
            ZeroStage::Three => self.stage3_overlap,
            _ => self.dp_overlap,
        };
        let dp_comm = (raw_dp - overlap * compute).max(raw_dp * (1.0 - overlap)).min(raw_dp);
        let dp_comm = dp_comm.max(0.0);
        let pcie = if cfg.flags.cpu_offload {
            let w = &cfg.workload;
            let ckpt = 2.0 * (w.hidden * w.seq * w.batch_per_gpu * w.layers) as f64
                / cfg.mp as f64;
            let raw = 2.0 * ckpt / self.cluster.pcie_bw;
            (raw - self.pcie_overlap * compute).max(raw * (1.0 - self.pcie_overlap)).max(0.0)
        } else {
            0.0
        };
        let total = compute + mp_comm + dp_comm + pcie;
        StepBreakdown {
            compute,
            mp_comm,
            dp_comm,
            pcie,
            total,
        }
    }

    /// Achieved Tflops per GPU.
    pub fn tflops_per_gpu(&self, cfg: &RunConfig) -> f64 {
        let t = self.step_time(cfg);
        self.flops_per_gpu(cfg) / t.total / 1e12
    }

    /// Aggregate Pflops over the whole run.
    pub fn aggregate_pflops(&self, cfg: &RunConfig) -> f64 {
        self.tflops_per_gpu(cfg) * cfg.gpus() as f64 / 1000.0
    }

    /// The largest per-GPU micro-batch that fits in memory for this
    /// configuration — the mechanism behind §10.3's superlinear speedup
    /// ("reduces … memory consumption … allowing … larger batch sizes per
    /// GPU … which in turn improves throughput").
    pub fn max_batch_per_gpu(
        &self,
        mem: &MemoryModel,
        cfg: &RunConfig,
        cap: usize,
    ) -> Option<usize> {
        let mut best = None;
        for b in 1..=cap {
            let w = SimWorkload {
                batch_per_gpu: b,
                ..cfg.workload
            };
            if mem.fits(&self.cluster, &w, cfg.stage, cfg.nd as f64, cfg.mp as f64, &cfg.flags) {
                best = Some(b);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_100b() -> RunConfig {
        // Table 5: 100B ZeRO row — 400 GPUs, MP 16, 125 layers, h = 8192,
        // batch/GPU 32.
        RunConfig {
            workload: SimWorkload {
                layers: 125,
                hidden: 8192,
                seq: 1024,
                batch_per_gpu: 32,
            },
            stage: ZeroStage::Two,
            nd: 25,
            mp: 16,
            flags: ZeroRFlags::with_pa(),
        }
    }

    #[test]
    fn hundred_b_model_lands_near_paper_throughput() {
        // §10.2: ZeRO-100B sustains ~38 Tflops/GPU (30% of peak) on 100B.
        let m = PerfModel::default();
        let t = m.tflops_per_gpu(&cfg_100b());
        assert!(
            (25.0..55.0).contains(&t),
            "100B throughput {t} Tflops/GPU out of plausible band"
        );
        let agg = m.aggregate_pflops(&cfg_100b());
        assert!(agg > 10.0, "aggregate {agg} Pflops should be >10");
    }

    #[test]
    fn cross_node_mp_collapses() {
        // §1: 40B Megatron across 2 nodes → ~5 Tflops/GPU (<5% of peak).
        let m = PerfModel::default();
        let baseline = RunConfig {
            workload: SimWorkload {
                layers: 88,
                hidden: 6144,
                seq: 1024,
                batch_per_gpu: 4,
            },
            stage: ZeroStage::Ddp,
            nd: 12,
            mp: 32, // crosses the 16-GPU node boundary
            flags: ZeroRFlags::baseline(),
        };
        let t = m.tflops_per_gpu(&baseline);
        assert!(t < 10.0, "cross-node MP should collapse, got {t}");
        // The same model under ZeRO with MP inside the node is far faster.
        let zero = RunConfig {
            workload: SimWorkload {
                batch_per_gpu: 12,
                ..baseline.workload
            },
            stage: ZeroStage::Two,
            nd: 100,
            mp: 4,
            flags: ZeroRFlags::with_pa(),
        };
        let tz = m.tflops_per_gpu(&zero);
        assert!(tz > 3.0 * t, "ZeRO {tz} should beat baseline {t} by >3x");
    }

    #[test]
    fn larger_batch_is_faster_per_flop() {
        let m = PerfModel::default();
        let mut small = cfg_100b();
        small.workload.batch_per_gpu = 4;
        let t_small = m.tflops_per_gpu(&small);
        let t_big = m.tflops_per_gpu(&cfg_100b());
        assert!(t_big > t_small, "batch 32 {t_big} vs batch 4 {t_small}");
    }

    #[test]
    fn max_batch_grows_with_dp_degree() {
        // The superlinearity mechanism: more DP → smaller states → bigger
        // batch fits.
        let m = PerfModel::default();
        let mem = MemoryModel::default();
        let mk = |nd: usize| RunConfig {
            workload: SimWorkload {
                layers: 75,
                hidden: 8192,
                seq: 1024,
                batch_per_gpu: 1,
            },
            stage: ZeroStage::Two,
            nd,
            mp: 16,
            flags: ZeroRFlags::baseline(),
        };
        let b4 = m.max_batch_per_gpu(&mem, &mk(4), 128);
        let b25 = m.max_batch_per_gpu(&mem, &mk(25), 128);
        assert!(b25.unwrap_or(0) > b4.unwrap_or(0), "{b4:?} vs {b25:?}");
    }

    #[test]
    fn pcie_offload_costs_some_throughput_at_small_models() {
        // Figure 8's C4 vs C5 on 60B: offload hurts when not needed.
        let m = PerfModel::default();
        let base = RunConfig {
            workload: SimWorkload {
                layers: 75,
                hidden: 8192,
                seq: 1024,
                batch_per_gpu: 32,
            },
            stage: ZeroStage::Two,
            nd: 8,
            mp: 16,
            flags: ZeroRFlags::with_pa(),
        };
        let off = RunConfig {
            flags: ZeroRFlags::with_pa_cpu(),
            ..base
        };
        assert!(m.tflops_per_gpu(&off) <= m.tflops_per_gpu(&base));
    }

    #[test]
    fn step_breakdown_sums() {
        let m = PerfModel::default();
        let b = m.step_time(&cfg_100b());
        let sum = b.compute + b.mp_comm + b.dp_comm + b.pcie;
        assert!((b.total - sum).abs() < 1e-12);
        assert!(b.compute > 0.0 && b.total > b.compute);
    }
}
