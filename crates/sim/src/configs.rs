//! The paper's experiment configurations, transcribed from the artifact
//! appendix (Tables 5–10). Each figure's driver replays these exact
//! (GPUs, MP, layers, hidden, batch) tuples through the simulator.

use crate::memory::{SimWorkload, ZeroRFlags};
use crate::perf::RunConfig;
use zero_core::ZeroStage;

/// One appendix-table row.
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    /// Nominal model size label, in billions of parameters.
    pub size_b: f64,
    /// True for ZeRO rows, false for Megatron-baseline rows.
    pub zero: bool,
    /// Total GPUs.
    pub gpus: usize,
    /// Model-parallel degree.
    pub mp: usize,
    /// Transformer layers.
    pub layers: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Micro-batch size per DP replica.
    pub batch: usize,
}

/// Sequence length used throughout the paper's evaluation.
pub const SEQ: usize = 1024;

impl PaperRow {
    /// Data-parallel degree implied by the row.
    pub fn nd(&self) -> usize {
        (self.gpus / self.mp).max(1)
    }

    /// Builds the simulator configuration for this row.
    ///
    /// ZeRO rows run the paper's ZeRO-100B profile (P_os+g + ZeRO-R with
    /// P_a); baseline rows run Megatron MP + plain DP with checkpointing.
    pub fn run_config(&self) -> RunConfig {
        RunConfig {
            workload: SimWorkload {
                layers: self.layers,
                hidden: self.hidden,
                seq: SEQ,
                batch_per_gpu: self.batch,
            },
            stage: if self.zero { ZeroStage::Two } else { ZeroStage::Ddp },
            nd: self.nd(),
            mp: self.mp,
            flags: if self.zero {
                ZeroRFlags::with_pa()
            } else {
                ZeroRFlags::baseline()
            },
        }
    }
}

/// Table 5 — Figure 2 configurations: ZeRO vs. Megatron baseline,
/// 1.5B–170B parameters.
pub const TABLE5_FIG2: &[PaperRow] = &[
    PaperRow { size_b: 1.5, zero: true, gpus: 400, mp: 1, layers: 48, hidden: 1600, batch: 24 },
    PaperRow { size_b: 1.5, zero: false, gpus: 400, mp: 2, layers: 48, hidden: 1600, batch: 16 },
    PaperRow { size_b: 8.0, zero: true, gpus: 400, mp: 4, layers: 72, hidden: 3072, batch: 64 },
    PaperRow { size_b: 8.0, zero: false, gpus: 400, mp: 8, layers: 72, hidden: 3072, batch: 8 },
    PaperRow { size_b: 40.0, zero: true, gpus: 400, mp: 4, layers: 88, hidden: 6144, batch: 12 },
    PaperRow { size_b: 40.0, zero: false, gpus: 384, mp: 32, layers: 88, hidden: 6144, batch: 4 },
    PaperRow { size_b: 60.0, zero: true, gpus: 400, mp: 16, layers: 132, hidden: 6144, batch: 64 },
    PaperRow { size_b: 60.0, zero: false, gpus: 384, mp: 64, layers: 132, hidden: 6144, batch: 4 },
    PaperRow { size_b: 80.0, zero: true, gpus: 400, mp: 16, layers: 100, hidden: 8192, batch: 32 },
    PaperRow { size_b: 80.0, zero: false, gpus: 384, mp: 128, layers: 100, hidden: 8192, batch: 4 },
    PaperRow { size_b: 100.0, zero: true, gpus: 400, mp: 16, layers: 125, hidden: 8192, batch: 32 },
    PaperRow { size_b: 100.0, zero: false, gpus: 384, mp: 128, layers: 125, hidden: 8192, batch: 2 },
    PaperRow { size_b: 120.0, zero: true, gpus: 400, mp: 16, layers: 150, hidden: 8192, batch: 24 },
    PaperRow { size_b: 120.0, zero: false, gpus: 384, mp: 128, layers: 150, hidden: 8192, batch: 2 },
    PaperRow { size_b: 140.0, zero: true, gpus: 400, mp: 16, layers: 175, hidden: 8192, batch: 16 },
    PaperRow { size_b: 140.0, zero: false, gpus: 384, mp: 128, layers: 175, hidden: 8192, batch: 2 },
    PaperRow { size_b: 170.0, zero: true, gpus: 400, mp: 16, layers: 212, hidden: 8192, batch: 12 },
    PaperRow { size_b: 170.0, zero: false, gpus: 256, mp: 256, layers: 212, hidden: 8192, batch: 2 },
];

/// Table 6 — Figure 3 configurations: 60B model, 64→400 GPUs
/// (superlinear scalability).
pub const TABLE6_FIG3: &[PaperRow] = &[
    PaperRow { size_b: 60.0, zero: true, gpus: 64, mp: 16, layers: 75, hidden: 8192, batch: 16 },
    PaperRow { size_b: 60.0, zero: true, gpus: 128, mp: 16, layers: 75, hidden: 8192, batch: 48 },
    PaperRow { size_b: 60.0, zero: true, gpus: 256, mp: 16, layers: 75, hidden: 8192, batch: 48 },
    PaperRow { size_b: 60.0, zero: true, gpus: 400, mp: 16, layers: 75, hidden: 8192, batch: 64 },
];

/// Table 10 — Figure 4 configurations: ZeRO without MP on 128 GPUs,
/// 1.16B–13B parameters (plus the PyTorch-DDP baseline limits).
pub const TABLE10_FIG4: &[PaperRow] = &[
    PaperRow { size_b: 1.5, zero: true, gpus: 128, mp: 1, layers: 34, hidden: 1920, batch: 24 },
    PaperRow { size_b: 2.5, zero: true, gpus: 128, mp: 1, layers: 54, hidden: 1920, batch: 24 },
    PaperRow { size_b: 4.0, zero: true, gpus: 128, mp: 1, layers: 64, hidden: 2304, batch: 16 },
    PaperRow { size_b: 6.0, zero: true, gpus: 128, mp: 1, layers: 52, hidden: 3072, batch: 12 },
    PaperRow { size_b: 8.0, zero: true, gpus: 128, mp: 1, layers: 72, hidden: 3072, batch: 8 },
    PaperRow { size_b: 10.0, zero: true, gpus: 128, mp: 1, layers: 50, hidden: 4096, batch: 6 },
    PaperRow { size_b: 11.0, zero: true, gpus: 128, mp: 1, layers: 54, hidden: 4096, batch: 4 },
    PaperRow { size_b: 12.0, zero: true, gpus: 128, mp: 1, layers: 58, hidden: 4096, batch: 4 },
    PaperRow { size_b: 13.0, zero: true, gpus: 128, mp: 1, layers: 62, hidden: 4096, batch: 2 },
    PaperRow { size_b: 1.16, zero: false, gpus: 128, mp: 1, layers: 24, hidden: 1920, batch: 8 },
    PaperRow { size_b: 1.38, zero: false, gpus: 128, mp: 1, layers: 40, hidden: 1536, batch: 1 },
];

/// Table 3 — the ZeRO-R configurations C1–C5 ablated in Figures 6–8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZeroRConfig {
    /// Config label (1–5).
    pub id: u8,
    /// ZeRO-DP stage: P_os for C1–C2, P_os+g for C3–C5.
    pub stage: ZeroStage,
    /// ZeRO-R flags (all include CB+MD; C2/C4 add P_a; C5 adds P_a+cpu).
    pub flags: ZeroRFlags,
}

/// The five Table 3 configurations.
pub const TABLE3_CONFIGS: [ZeroRConfig; 5] = [
    ZeroRConfig { id: 1, stage: ZeroStage::One, flags: ZeroRFlags { checkpointing: true, partition_activations: false, cpu_offload: false } },
    ZeroRConfig { id: 2, stage: ZeroStage::One, flags: ZeroRFlags { checkpointing: true, partition_activations: true, cpu_offload: false } },
    ZeroRConfig { id: 3, stage: ZeroStage::Two, flags: ZeroRFlags { checkpointing: true, partition_activations: false, cpu_offload: false } },
    ZeroRConfig { id: 4, stage: ZeroStage::Two, flags: ZeroRFlags { checkpointing: true, partition_activations: true, cpu_offload: false } },
    ZeroRConfig { id: 5, stage: ZeroStage::Two, flags: ZeroRFlags { checkpointing: true, partition_activations: true, cpu_offload: true } },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_sizes_match_layer_hidden_arithmetic() {
        for row in TABLE5_FIG2 {
            let approx = 12.0 * row.layers as f64 * (row.hidden as f64).powi(2) / 1e9;
            // Appendix sizes are nominal; 12·L·h² lands within ~20%.
            assert!(
                (approx - row.size_b).abs() / row.size_b < 0.35,
                "{}B row computes to {approx}B",
                row.size_b
            );
        }
    }

    #[test]
    fn zero_rows_keep_mp_within_a_node() {
        // §1: "For ZeRO the MP always fit in a node, while for baseline,
        // models larger than 40B require MP across nodes."
        for row in TABLE5_FIG2 {
            if row.zero {
                assert!(row.mp <= 16, "{}B ZeRO row has MP {}", row.size_b, row.mp);
            } else if row.size_b >= 40.0 {
                assert!(row.mp > 16, "{}B baseline should cross nodes", row.size_b);
            }
        }
    }

    #[test]
    fn run_configs_are_consistent() {
        for row in TABLE5_FIG2.iter().chain(TABLE6_FIG3).chain(TABLE10_FIG4) {
            let cfg = row.run_config();
            assert_eq!(cfg.gpus(), row.nd() * row.mp);
            assert!(cfg.workload.params() > 0.5e9);
        }
    }

    #[test]
    fn table3_cumulative_structure() {
        // C1→C5 never removes an optimization.
        assert_eq!(TABLE3_CONFIGS[0].stage, ZeroStage::One);
        assert_eq!(TABLE3_CONFIGS[4].stage, ZeroStage::Two);
        assert!(TABLE3_CONFIGS[4].flags.cpu_offload);
        assert!(TABLE3_CONFIGS[3].flags.partition_activations);
        assert!(!TABLE3_CONFIGS[2].flags.partition_activations);
    }
}
