//! # zero-sim
//!
//! Cluster-scale analytical models and experiment drivers that regenerate
//! the paper's tables and figures on the simulated 400×V100 DGX-2 testbed
//! (the hardware we substitute per DESIGN.md).
//!
//! ```
//! use zero_core::ZeroStage;
//! use zero_sim::MemoryModel;
//!
//! // Figure 1's worked example: Ψ = 7.5B at N_d = 64.
//! let m = MemoryModel::default();
//! let gb = m.model_state_bytes(7.5e9, ZeroStage::Three, 64.0) / 1e9;
//! assert!((gb - 1.875).abs() < 0.01);
//! ```

pub mod cluster;
pub mod configs;
pub mod des;
pub mod fragmentation;
pub mod experiments;
pub mod memory;
pub mod perf;
pub mod pipeline;
pub mod recovery;

pub use cluster::ClusterSpec;
pub use des::{overlap_fraction, simulate_overlapped, simulate_serial, stage3_forward_prefetch, stage3_forward_serial, DesConfig, DesResult, Stage3Config};
pub use fragmentation::{simulate_training_fragmentation, FirstFitHeap, FragReport};
pub use memory::{MemoryModel, SimWorkload, ZeroRFlags, K_ADAM};
pub use perf::{PerfModel, RunConfig, StepBreakdown};
pub use pipeline::{compare_zero_vs_pp, PipelineConfig, PipelineScheme, PpComparison};
pub use recovery::{reshard_bytes, RecoveryModel, TierCostModel};
