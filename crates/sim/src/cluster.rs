//! Hardware model of the paper's testbed: 25 DGX-2 nodes, 400 V100 GPUs,
//! 800 Gbps internode fabric (§10.1).

use serde::{Deserialize, Serialize};

/// Cluster/topology constants used by the memory and throughput models.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Device memory per GPU, bytes (32 GB V100).
    pub gpu_mem_bytes: u64,
    /// GPUs per node (DGX-2: 16).
    pub gpus_per_node: usize,
    /// Peak fp16 tensor-core throughput per GPU, FLOP/s (V100: 125 T).
    pub peak_flops: f64,
    /// Effective per-GPU collective bandwidth inside a node, bytes/s
    /// (NVSwitch: 300 GB/s per link; ~150 GB/s effective for rings).
    pub intra_node_bw: f64,
    /// Aggregate internode bandwidth per node, bytes/s (800 Gbps = 100 GB/s).
    pub inter_node_bw_per_node: f64,
    /// Per-IB-link bandwidth, bytes/s (EDR: 12.5 GB/s) — the number the
    /// paper quotes for cross-node MP.
    pub inter_node_bw_per_link: f64,
    /// Host↔device (PCIe) bandwidth per GPU, bytes/s (~12 GB/s effective).
    pub pcie_bw: f64,
}

impl ClusterSpec {
    /// The paper's cluster: 32 GB V100s in DGX-2 nodes, NVSwitch inside,
    /// 800 Gbps Infiniband between nodes.
    pub fn dgx2_v100() -> ClusterSpec {
        ClusterSpec {
            gpu_mem_bytes: 32 * (1 << 30),
            gpus_per_node: 16,
            peak_flops: 125e12,
            intra_node_bw: 150e9,
            inter_node_bw_per_node: 100e9,
            inter_node_bw_per_link: 12.5e9,
            pcie_bw: 12e9,
        }
    }

    /// Effective per-GPU bandwidth for a collective whose group spans
    /// `group` ranks with `mp` ranks per replica packed contiguously.
    ///
    /// * group fits in a node → NVSwitch speed;
    /// * group crosses nodes and *every* GPU of each node participates in
    ///   some group simultaneously (the DP-across-nodes case) → the node's
    ///   aggregate 100 GB/s is shared by its 16 GPUs;
    /// * group crosses nodes with few participants per node (the cross-node
    ///   MP case) → bounded by the per-link rate.
    pub fn collective_bw(&self, group_size: usize, ranks_per_node_in_group: usize) -> f64 {
        if group_size <= 1 {
            return f64::INFINITY;
        }
        if group_size <= self.gpus_per_node && ranks_per_node_in_group == group_size {
            self.intra_node_bw
        } else if ranks_per_node_in_group >= self.gpus_per_node {
            // All GPUs of the node talk at once: share the NIC aggregate.
            self.inter_node_bw_per_node / self.gpus_per_node as f64
        } else {
            // Sparse cross-node traffic: per-link bound, shared by the
            // node's participants in this group.
            (self.inter_node_bw_per_node / self.gpus_per_node as f64)
                .max(self.inter_node_bw_per_link / ranks_per_node_in_group as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let c = ClusterSpec::dgx2_v100();
        assert_eq!(c.gpu_mem_bytes, 34_359_738_368);
        assert_eq!(c.gpus_per_node, 16);
        // 400 GPUs at 30% of peak is the paper's 15 Pflops.
        assert!((400.0 * c.peak_flops * 0.30 - 15e15).abs() < 1e14);
    }

    #[test]
    fn bandwidth_regimes() {
        let c = ClusterSpec::dgx2_v100();
        // MP of 16 inside a node: fast.
        assert_eq!(c.collective_bw(16, 16), 150e9);
        // DP across nodes with all 16 GPUs active: NIC shared.
        assert_eq!(c.collective_bw(25, 16), 100e9 / 16.0);
        // Cross-node MP with 2 participants per node: per-link bound.
        let bw = c.collective_bw(32, 2);
        assert!(bw <= 12.5e9 && bw > 0.0);
        // Intra-node is far faster than any cross-node regime — the cliff
        // behind Figure 2's baseline collapse.
        assert!(c.collective_bw(16, 16) > 10.0 * c.collective_bw(32, 2));
    }

    #[test]
    fn single_rank_groups_are_free() {
        let c = ClusterSpec::dgx2_v100();
        assert!(c.collective_bw(1, 1).is_infinite());
    }
}
