//! Memory-fragmentation simulation (§3.2, §6.3).
//!
//! The paper observes that interleaving short-lived tensors (recomputed
//! activations, activation gradients) with long-lived ones (checkpoints,
//! parameter gradients) fragments the device heap until "a request for
//! memory will fail if there isn't enough contiguous memory … even if the
//! total available memory is larger", with OOMs seen "with over 30% of
//! memory still available". MD fixes this by copying long-lived tensors
//! into a pre-allocated contiguous region, so the general heap only ever
//! sees short-lived traffic.
//!
//! This module contains a first-fit free-list allocator and a generator
//! for the training allocation pattern (per layer: one long-lived
//! checkpoint + several short-lived activations that die at the layer
//! boundary), and measures the largest satisfiable request with and
//! without MD.

/// A first-fit heap allocator over a fixed address space, modeling a
/// caching device allocator.
pub struct FirstFitHeap {
    capacity: usize,
    /// Allocated blocks as (offset, len), sorted by offset.
    blocks: Vec<(usize, usize)>,
}

/// A block handle (its offset, unique while allocated).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockId(usize);

impl FirstFitHeap {
    /// A heap of `capacity` units.
    pub fn new(capacity: usize) -> FirstFitHeap {
        FirstFitHeap {
            capacity,
            blocks: Vec::new(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Units currently allocated.
    pub fn used(&self) -> usize {
        self.blocks.iter().map(|(_, l)| l).sum()
    }

    /// Units free in total (not necessarily contiguous).
    pub fn free_total(&self) -> usize {
        self.capacity - self.used()
    }

    /// The largest single free extent — what the next big allocation can
    /// actually get.
    pub fn largest_free_extent(&self) -> usize {
        let mut largest = 0;
        let mut cursor = 0;
        for &(off, len) in &self.blocks {
            largest = largest.max(off - cursor);
            cursor = off + len;
        }
        largest.max(self.capacity - cursor)
    }

    /// Fragmentation ratio: the fraction of free memory that is unusable
    /// for a single allocation of the largest free extent's complement,
    /// i.e. `1 − largest_extent / free_total` (0 = perfectly compact).
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_total();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_extent() as f64 / free as f64
    }

    /// First-fit allocation; `None` when no extent is large enough (an
    /// OOM even if `free_total() >= len`).
    pub fn alloc(&mut self, len: usize) -> Option<BlockId> {
        assert!(len > 0, "zero-length allocation");
        let mut cursor = 0;
        let mut insert_at = 0;
        for (i, &(off, blen)) in self.blocks.iter().enumerate() {
            if off - cursor >= len {
                insert_at = i;
                self.blocks.insert(insert_at, (cursor, len));
                return Some(BlockId(cursor));
            }
            cursor = off + blen;
            insert_at = i + 1;
        }
        if self.capacity - cursor >= len {
            self.blocks.insert(insert_at, (cursor, len));
            return Some(BlockId(cursor));
        }
        None
    }

    /// Frees a block.
    ///
    /// # Panics
    /// Panics on an unknown handle (double free).
    pub fn free(&mut self, id: BlockId) {
        let i = self
            .blocks
            .iter()
            .position(|&(off, _)| off == id.0)
            .expect("free of unknown block");
        self.blocks.remove(i);
    }
}

/// Result of one fragmentation experiment.
#[derive(Clone, Copy, Debug)]
pub struct FragReport {
    /// Free units when the probe allocation was attempted.
    pub free_total: usize,
    /// Largest free extent at that moment.
    pub largest_extent: usize,
    /// Fragmentation ratio at that moment.
    pub fragmentation: f64,
    /// Whether the probe allocation (e.g. a fused gradient buffer)
    /// succeeded.
    pub probe_succeeded: bool,
}

/// Simulates a forward pass with activation checkpointing over `layers`
/// layers, then probes a large allocation (a fused buffer of
/// `probe` units).
///
/// Without MD (`md = false`), checkpoints (long-lived, `ckpt` units)
/// allocate from the same heap as the short-lived working activations
/// (`work` units each, `work_per_layer` of them), whose death at each
/// layer boundary leaves holes pinned open by the checkpoints.
///
/// With MD (`md = true`), checkpoints go to a pre-allocated contiguous
/// arena carved out up front, so the heap's free space stays compact.
pub fn simulate_training_fragmentation(
    capacity: usize,
    layers: usize,
    ckpt: usize,
    work: usize,
    work_per_layer: usize,
    probe: usize,
    md: bool,
) -> FragReport {
    let mut heap = FirstFitHeap::new(capacity);
    // MD: reserve the checkpoint region once, contiguously.
    let arena = if md {
        Some(heap.alloc(ckpt * layers).expect("arena must fit"))
    } else {
        None
    };
    let mut checkpoints = Vec::new();
    // SplitMix-style size jitter: real activation tensors vary per layer
    // and per op (attention maps, MLP intermediates, layernorm stats),
    // which is exactly what defeats hole reuse in a first-fit heap.
    let varied = |layer: usize, j: usize| -> usize {
        let mut z = (layer as u64 * 0x9E37_79B9 + j as u64 * 0x85EB_CA6B) ^ 0x1234_5678;
        z ^= z >> 15;
        z = z.wrapping_mul(0x2545_F491_4F6C_DD1D);
        z ^= z >> 28;
        work / 2 + (z as usize % work)
    };
    for layer in 0..layers {
        // First working tensor of the layer (e.g. the LN output feeding
        // attention) is live when the checkpoint gets written.
        let mut working = Vec::new();
        if let Some(b) = heap.alloc(varied(layer, 0)) {
            working.push(b);
        }
        if !md {
            // The checkpoint is allocated amid the working set and
            // outlives it — the §6.3 interleaving.
            if let Some(b) = heap.alloc(ckpt) {
                checkpoints.push(b);
            }
        }
        for j in 1..work_per_layer {
            if let Some(b) = heap.alloc(varied(layer, j)) {
                working.push(b);
            }
        }
        // Layer boundary: the working set dies; the checkpoint stays.
        for b in working {
            heap.free(b);
        }
    }
    let report = FragReport {
        free_total: heap.free_total(),
        largest_extent: heap.largest_free_extent(),
        fragmentation: heap.fragmentation(),
        probe_succeeded: heap.alloc(probe).is_some(),
    };
    // Tidy up (not strictly needed; keeps the allocator honest).
    for b in checkpoints {
        heap.free(b);
    }
    if let Some(a) = arena {
        heap.free(a);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_allocates_and_frees() {
        let mut h = FirstFitHeap::new(100);
        let a = h.alloc(30).unwrap();
        let b = h.alloc(30).unwrap();
        let _c = h.alloc(30).unwrap();
        assert_eq!(h.used(), 90);
        assert!(h.alloc(20).is_none(), "only 10 left");
        h.free(b);
        assert_eq!(h.free_total(), 40);
        // But the free space is split 30 + 10: a 40-unit request fails.
        assert_eq!(h.largest_free_extent(), 30);
        assert!(h.alloc(40).is_none(), "fragmented: 40 free but not contiguous");
        assert!(h.alloc(30).is_some(), "the hole is reusable");
        h.free(a);
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn double_free_detected() {
        let mut h = FirstFitHeap::new(10);
        let a = h.alloc(5).unwrap();
        h.free(a);
        h.free(a);
    }

    #[test]
    fn fragmentation_metric_bounds() {
        let mut h = FirstFitHeap::new(100);
        assert_eq!(h.fragmentation(), 0.0, "empty heap is compact");
        let a = h.alloc(10).unwrap();
        let b = h.alloc(10).unwrap();
        h.free(a);
        // Free = 90 split as 10 + 80.
        assert!((h.fragmentation() - (1.0 - 80.0 / 90.0)).abs() < 1e-12);
        h.free(b);
        assert_eq!(h.fragmentation(), 0.0);
    }

    #[test]
    fn training_pattern_fragments_without_md() {
        // 60 layers on a tight heap: checkpoints pin holes between dead
        // working sets until a fused-buffer-sized request cannot be
        // placed even though 40% of memory is free.
        let no_md = simulate_training_fragmentation(6_000, 60, 60, 90, 4, 2_000, false);
        let with_md = simulate_training_fragmentation(6_000, 60, 60, 90, 4, 2_000, true);
        // Same long-lived footprint…
        assert_eq!(no_md.free_total, with_md.free_total);
        // …but only MD keeps it contiguous.
        assert!(
            no_md.largest_extent < with_md.largest_extent,
            "{no_md:?} vs {with_md:?}"
        );
        assert!(!no_md.probe_succeeded, "the fused-buffer probe must OOM");
        assert!(with_md.probe_succeeded, "MD must satisfy the same probe");
        // The paper's headline: OOM with a large fraction of memory free.
        let free_frac = no_md.free_total as f64 / 6_000.0;
        assert!(
            free_frac > 0.3,
            "OOM should occur with >30% free, had {free_frac}"
        );
    }

    #[test]
    fn md_reduces_fragmentation_ratio() {
        let no_md = simulate_training_fragmentation(6_000, 60, 60, 90, 4, 2_000, false);
        let with_md = simulate_training_fragmentation(6_000, 60, 60, 90, 4, 2_000, true);
        assert!(no_md.fragmentation > with_md.fragmentation);
        assert!(with_md.fragmentation < 0.05, "MD heap nearly compact");
    }
}
