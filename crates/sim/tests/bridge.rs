//! Cross-validation between the two reproduction pillars: the volume
//! formulas the analytical `PerfModel` consumes must equal the bytes the
//! *functional engine* actually sends. If these drift, the simulator's
//! throughput claims stop being grounded in the implementation.

use zero_comm::{CollectiveKind, Grid};
use zero_core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero_model::ModelConfig;
use zero_sim::{PerfModel, RunConfig, SimWorkload, ZeroRFlags};

fn engine_bytes_per_step(stage: ZeroStage, nd: usize, steps: usize) -> f64 {
    let model = ModelConfig {
        vocab: 32,
        seq: 8,
        hidden: 16,
        layers: 3,
        heads: 2,
    };
    let setup = TrainSetup {
        model,
        zero: ZeroConfig {
            stage,
            fp16: true,
            initial_loss_scale: 1.0,
            checkpoint_activations: false,
            ..ZeroConfig::default()
        },
        grid: Grid::new(nd, 1),
        global_batch: 4,
        seed: 2,
    };
    let report = run_training(&setup, steps, 0);
    let t = &report.ranks[0].traffic;
    (t.bytes(CollectiveKind::AllReduce)
        + t.bytes(CollectiveKind::ReduceScatter)
        + t.bytes(CollectiveKind::AllGather)) as f64
        / steps as f64
}

/// The §7 volume the PerfModel charges, specialized to the engine's Ψ.
fn model_bytes_per_step(stage: ZeroStage, psi: usize, nd: usize) -> f64 {
    // PerfModel::dp_comm_time_raw charges factor·2bytes·Ψ·(nd−1)/nd; strip
    // the bandwidth division by reading the formula at bandwidth 1.
    let factor = match stage {
        ZeroStage::Three => 3.0,
        _ => 2.0,
    };
    factor * 2.0 * psi as f64 * (nd - 1) as f64 / nd as f64
}

#[test]
fn perf_model_volumes_match_engine_measurements() {
    let psi = ModelConfig {
        vocab: 32,
        seq: 8,
        hidden: 16,
        layers: 3,
        heads: 2,
    }
    .total_params();
    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        let measured = engine_bytes_per_step(stage, 4, 2);
        let predicted = model_bytes_per_step(stage, psi, 4);
        let rel = (measured - predicted).abs() / predicted;
        // Stage 3 gathers slightly less than 3Ψ (embedding backward needs
        // no parameters); everything else is ring-exact modulo the tiny
        // overflow-flag all-reduce.
        let tol = if stage == ZeroStage::Three { 0.12 } else { 0.01 };
        assert!(
            rel < tol,
            "{stage:?}: engine {measured:.0} B vs model {predicted:.0} B (rel {rel:.3})"
        );
    }
}

#[test]
fn perf_model_charges_stage3_premium_consistently() {
    // The 1.5x stage-3 premium must appear in both the volume inputs and
    // the simulated step times (at fixed batch where compute is equal).
    let perf = PerfModel::default();
    let mk = |stage| RunConfig {
        workload: SimWorkload {
            layers: 125,
            hidden: 8192,
            seq: 1024,
            batch_per_gpu: 32,
        },
        stage,
        nd: 25,
        mp: 16,
        flags: ZeroRFlags::with_pa(),
    };
    let v2 = perf.dp_comm_time_raw(&mk(ZeroStage::Two));
    let v3 = perf.dp_comm_time_raw(&mk(ZeroStage::Three));
    assert!((v3 / v2 - 1.5).abs() < 1e-9, "raw volume ratio {}", v3 / v2);
    let t2 = perf.step_time(&mk(ZeroStage::Two)).total;
    let t3 = perf.step_time(&mk(ZeroStage::Three)).total;
    assert!(t3 >= t2, "stage 3 cannot be faster at equal batch");
}
