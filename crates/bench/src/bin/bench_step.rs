//! Overlap win quantification: `results/BENCH_step.json`.
//!
//! For each ZeRO stage × DP degree, runs the same short training loop
//! twice — synchronous and overlap-centric — over a fabric with a
//! modeled per-hop link latency (the sleep sits on each rank's progress
//! thread, so asynchronous collectives can genuinely hide it, exactly
//! the §7 situation the overlap engine targets). Records step latency,
//! tokens/sec, and the per-kind wait-time vs in-flight-time split from
//! the comm stats: under overlap, wait time collapses while execution
//! time (on the progress thread) stays put.
//!
//! `--smoke` runs a single tiny configuration and skips the results
//! file — CI uses it to prove the bench path end-to-end without
//! churning the committed baseline.

use std::time::{Duration, Instant};

use serde::Serialize;
use zero_comm::{Grid, WorldConfig, ALL_KINDS};
use zero_core::{run_training_world, TrainReport, TrainSetup, ZeroConfig, ZeroStage};
use zero_model::ModelConfig;

/// Larger than `bench_model()`: overlap is only measurable when per-rank
/// compute is comparable to the link latency it must hide — a model this
/// size gives each backward block enough FLOPs to cover an in-flight
/// reduce-scatter at the modeled latency.
fn step_model() -> ModelConfig {
    ModelConfig { vocab: 64, seq: 32, hidden: 128, layers: 4, heads: 4 }
}

fn step_setup(stage: ZeroStage, dp: usize, overlap: bool) -> TrainSetup {
    TrainSetup {
        model: step_model(),
        zero: ZeroConfig {
            stage,
            fp16: true,
            initial_loss_scale: 1.0,
            // No recompute (checkpointing with interval 1 re-fetches each
            // unit exactly where it is used, leaving nothing to issue
            // ahead) and buckets small enough that a backward pass
            // produces several in-flight reduce-scatters.
            checkpoint_activations: false,
            bucket_elems: 32 * 1024,
            overlap,
            ..ZeroConfig::default()
        },
        grid: Grid::new(dp, 1),
        global_batch: 8,
        seed: 1,
    }
}

#[derive(Serialize)]
struct StepRow {
    stage: String,
    nd: usize,
    overlap: bool,
    steps: usize,
    secs_per_step: f64,
    tokens_per_sec: f64,
    /// Max over ranks: total blocking wait on collectives, ms per step.
    comm_wait_ms_per_step: f64,
    /// Max over ranks: total progress-thread execution, ms per step.
    comm_exec_ms_per_step: f64,
    /// Rank 0 per-kind wait ms/step, in `ALL_KINDS` order.
    rank0_wait_ms_by_kind: Vec<f64>,
    /// Rank 0 per-kind in-flight execution ms/step, in `ALL_KINDS` order.
    rank0_exec_ms_by_kind: Vec<f64>,
    /// Max over ranks: trace-measured wall-clock where compute and a
    /// byte-moving collective were simultaneously in flight, ms per step.
    trace_overlap_ms_per_step: f64,
    /// Rank 0: distinct compute∩collective overlap windows recorded.
    rank0_overlap_windows: usize,
}

#[derive(Serialize)]
struct Speedup {
    stage: String,
    nd: usize,
    sync_secs_per_step: f64,
    overlapped_secs_per_step: f64,
    /// sync / overlapped step latency; > 1 means overlap wins.
    speedup: f64,
}

#[derive(Serialize)]
struct BenchStep {
    link_latency_us: u64,
    steps: usize,
    global_batch: usize,
    rows: Vec<StepRow>,
    speedups: Vec<Speedup>,
}

fn run_one(stage: ZeroStage, nd: usize, overlap: bool, steps: usize, latency: Duration) -> (f64, TrainReport) {
    let setup = step_setup(stage, nd, overlap);
    let t0 = Instant::now();
    let report = run_training_world(&setup, steps, 0, WorldConfig::with_link_latency(latency));
    (t0.elapsed().as_secs_f64(), report)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (stages, dps, steps, trials, latency): (&[ZeroStage], &[usize], usize, usize, Duration) =
        if smoke {
            (&[ZeroStage::Three], &[2], 2, 1, Duration::from_micros(50))
        } else {
            (
                &[ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three],
                &[2, 4],
                10,
                2,
                Duration::from_micros(800),
            )
        };

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut global_batch = 0;
    for &stage in stages {
        for &nd in dps {
            let mut secs = [0.0f64; 2];
            let mut overlap_ms = [0.0f64; 2];
            for overlap in [false, true] {
                let setup = step_setup(stage, nd, overlap);
                global_batch = setup.global_batch;
                let tokens = (setup.global_batch * setup.model.seq * steps) as f64;
                // Best-of-`trials`: the in-process cluster shares one
                // host with the harness, so min wall-clock is the
                // scheduler-noise-free estimate.
                let (mut elapsed, mut report) = run_one(stage, nd, overlap, steps, latency);
                for _ in 1..trials {
                    let (e, r) = run_one(stage, nd, overlap, steps, latency);
                    if e < elapsed {
                        (elapsed, report) = (e, r);
                    }
                }
                secs[overlap as usize] = elapsed / steps as f64;
                let per_step_ms = |nanos: u64| nanos as f64 / 1e6 / steps as f64;
                let wait_max =
                    report.ranks.iter().map(|r| r.timing.total_wait_nanos()).max().unwrap_or(0);
                let exec_max =
                    report.ranks.iter().map(|r| r.timing.total_exec_nanos()).max().unwrap_or(0);
                let overlap_max = report
                    .ranks
                    .iter()
                    .map(|r| r.timeline.compute_collective_overlap_ns())
                    .max()
                    .unwrap_or(0);
                overlap_ms[overlap as usize] = per_step_ms(overlap_max);
                let r0 = &report.ranks[0].timing;
                rows.push(StepRow {
                    stage: stage.name().to_string(),
                    nd,
                    overlap,
                    steps,
                    secs_per_step: elapsed / steps as f64,
                    tokens_per_sec: tokens / elapsed,
                    comm_wait_ms_per_step: per_step_ms(wait_max),
                    comm_exec_ms_per_step: per_step_ms(exec_max),
                    rank0_wait_ms_by_kind: ALL_KINDS
                        .iter()
                        .map(|k| per_step_ms(r0.wait_nanos(*k)))
                        .collect(),
                    rank0_exec_ms_by_kind: ALL_KINDS
                        .iter()
                        .map(|k| per_step_ms(r0.exec_nanos(*k)))
                        .collect(),
                    trace_overlap_ms_per_step: overlap_ms[overlap as usize],
                    rank0_overlap_windows: report.ranks[0]
                        .timeline
                        .compute_collective_overlap()
                        .len(),
                });
            }
            println!(
                "{:<20} N={}  trace overlap: sync {:>6.2} ms/step, overlapped {:>6.2} ms/step",
                stage.name(),
                nd,
                overlap_ms[0],
                overlap_ms[1]
            );
            speedups.push(Speedup {
                stage: stage.name().to_string(),
                nd,
                sync_secs_per_step: secs[0],
                overlapped_secs_per_step: secs[1],
                speedup: secs[0] / secs[1],
            });
        }
    }

    for s in &speedups {
        println!(
            "{:<20} N={}  sync {:>8.2} ms/step  overlapped {:>8.2} ms/step  speedup {:.2}×",
            s.stage,
            s.nd,
            s.sync_secs_per_step * 1e3,
            s.overlapped_secs_per_step * 1e3,
            s.speedup
        );
    }

    if smoke {
        println!("smoke run complete (results file untouched)");
        return;
    }
    let out = BenchStep {
        link_latency_us: latency.as_micros() as u64,
        steps,
        global_batch,
        rows,
        speedups,
    };
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has a grandparent");
    let path = root.join("results/BENCH_step.json");
    let json = serde_json::to_string_pretty(&out).expect("serialize bench");
    std::fs::write(&path, json + "\n").expect("write BENCH_step.json");
    println!("wrote {}", path.display());
}
