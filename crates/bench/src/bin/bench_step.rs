//! Overlap win quantification: `results/BENCH_step.json`.
//!
//! For each ZeRO stage × DP degree, runs the same short training loop
//! twice — synchronous and overlap-centric — over a fabric with a
//! modeled per-hop link latency (the sleep sits on each rank's progress
//! thread, so asynchronous collectives can genuinely hide it, exactly
//! the §7 situation the overlap engine targets). Records step latency,
//! tokens/sec, and the per-kind wait-time vs in-flight-time split from
//! the comm stats: under overlap, wait time collapses while execution
//! time (on the progress thread) stays put.
//!
//! A second section runs stage 3 over a modeled **two-tier** link (fast
//! intra-node, slow shared inter-node) with and without the ZeRO++
//! compression levers (qwZ + hpZ + qgZ): the quantized / node-local
//! schedules move ~4× fewer logical bytes across the slow tier, and the
//! tiered fabric charges serialization by logical bytes, so the
//! compressed rows show a genuine measured wall-clock win.
//!
//! A third section prices memory-tier offload (ZeRO-Offload direction):
//! the same stage-3 config runs unconstrained and with optimizer,
//! gradient, and parameter shards resident on a modeled host tier
//! (throttled bandwidth + per-transfer latency). Losses must be bitwise
//! identical — offload moves residency, never values — and the offloaded
//! rows join the results file so the regression gate holds the tier path
//! to the same tolerance as the plain rows.
//!
//! `--smoke` runs a single tiny configuration and skips the results
//! file — CI uses it to prove the bench path end-to-end without
//! churning the committed baseline.
//!
//! `--check-against <path>` replays the (smoke-restricted) configs at
//! the baseline file's recorded link latency and step count, compares
//! each measured row's wall-clock against the matching baseline row, and
//! exits non-zero on a >10% per-step regression. The results file is
//! never rewritten in this mode.

use std::time::{Duration, Instant};

use serde::Serialize;
use zero_comm::{Grid, TieredLink, WorldConfig, ALL_KINDS};
use zero_core::{
    run_training_world, CompressionConfig, TierConfig, TrainReport, TrainSetup, ZeroConfig,
    ZeroStage,
};
use zero_model::ModelConfig;

/// Larger than `bench_model()`: overlap is only measurable when per-rank
/// compute is comparable to the link latency it must hide — a model this
/// size gives each backward block enough FLOPs to cover an in-flight
/// reduce-scatter at the modeled latency.
fn step_model() -> ModelConfig {
    ModelConfig { vocab: 64, seq: 32, hidden: 128, layers: 4, heads: 4 }
}

fn step_setup(stage: ZeroStage, dp: usize, overlap: bool) -> TrainSetup {
    TrainSetup {
        model: step_model(),
        zero: ZeroConfig {
            stage,
            fp16: true,
            initial_loss_scale: 1.0,
            // No recompute (checkpointing with interval 1 re-fetches each
            // unit exactly where it is used, leaving nothing to issue
            // ahead) and buckets small enough that a backward pass
            // produces several in-flight reduce-scatters.
            checkpoint_activations: false,
            bucket_elems: 32 * 1024,
            overlap,
            ..ZeroConfig::default()
        },
        grid: Grid::new(dp, 1),
        global_batch: 8,
        seed: 1,
    }
}

#[derive(Serialize)]
struct StepRow {
    stage: String,
    nd: usize,
    overlap: bool,
    steps: usize,
    secs_per_step: f64,
    tokens_per_sec: f64,
    /// Max over ranks: total blocking wait on collectives, ms per step.
    comm_wait_ms_per_step: f64,
    /// Max over ranks: total progress-thread execution, ms per step.
    comm_exec_ms_per_step: f64,
    /// Rank 0 per-kind wait ms/step, in `ALL_KINDS` order.
    rank0_wait_ms_by_kind: Vec<f64>,
    /// Rank 0 per-kind in-flight execution ms/step, in `ALL_KINDS` order.
    rank0_exec_ms_by_kind: Vec<f64>,
    /// Max over ranks: trace-measured wall-clock where compute and a
    /// byte-moving collective were simultaneously in flight, ms per step.
    trace_overlap_ms_per_step: f64,
    /// Rank 0: distinct compute∩collective overlap windows recorded.
    rank0_overlap_windows: usize,
}

#[derive(Serialize)]
struct Speedup {
    stage: String,
    nd: usize,
    sync_secs_per_step: f64,
    overlapped_secs_per_step: f64,
    /// sync / overlapped step latency; > 1 means overlap wins.
    speedup: f64,
}

/// One stage-3 run over the modeled two-tier link, raw or with all
/// ZeRO++ levers (qwZ + hpZ + qgZ) on.
#[derive(Serialize)]
struct TieredRow {
    nd: usize,
    node_size: usize,
    compressed: bool,
    overlap: bool,
    steps: usize,
    secs_per_step: f64,
    tokens_per_sec: f64,
}

/// One stage-3 run with the full model state on the modeled host tier,
/// paired with its unconstrained twin's step latency. The loss streams of
/// the pair are gated bitwise-identical before the row is recorded.
#[derive(Serialize)]
struct OffloadRow {
    nd: usize,
    overlap: bool,
    steps: usize,
    secs_per_step: f64,
    baseline_secs_per_step: f64,
    /// Rank-0 host→device bytes over the whole run.
    tier_fetch_bytes: u64,
    /// Rank-0 device→host bytes over the whole run.
    tier_spill_bytes: u64,
    /// Rank-0 modeled time on the host link, ms per step.
    tier_time_ms_per_step: f64,
    /// baseline / offloaded step latency; < 1 means offload costs time.
    relative_throughput: f64,
}

/// Wall-clock win of compression on the two-tier fabric.
#[derive(Serialize)]
struct CompressionSpeedup {
    nd: usize,
    node_size: usize,
    overlap: bool,
    raw_secs_per_step: f64,
    compressed_secs_per_step: f64,
    /// raw / compressed step latency; > 1 means compression wins.
    speedup: f64,
}

/// The modeled two-tier link parameters, recorded for reproducibility.
#[derive(Serialize)]
struct TieredLinkSpec {
    node_size: usize,
    intra_latency_us: u64,
    intra_gbytes_per_sec: f64,
    inter_latency_us: u64,
    inter_mbytes_per_sec: f64,
}

#[derive(Serialize)]
struct BenchStep {
    link_latency_us: u64,
    steps: usize,
    global_batch: usize,
    rows: Vec<StepRow>,
    speedups: Vec<Speedup>,
    offload_rows: Vec<OffloadRow>,
    tiered_link: TieredLinkSpec,
    compression_rows: Vec<TieredRow>,
    compression_speedups: Vec<CompressionSpeedup>,
}

/// The subset of a previously written `BENCH_step.json` that
/// `--check-against` compares; extra fields in the file are ignored so
/// older baselines stay loadable.
struct BaselineRow {
    stage: String,
    nd: usize,
    overlap: bool,
    secs_per_step: f64,
}

struct BaselineOffloadRow {
    nd: usize,
    overlap: bool,
    secs_per_step: f64,
}

struct Baseline {
    link_latency_us: u64,
    steps: usize,
    rows: Vec<BaselineRow>,
    offload_rows: Vec<BaselineOffloadRow>,
}

fn load_baseline(path: &str) -> Option<Baseline> {
    let text = std::fs::read_to_string(path).ok()?;
    let v = serde_json::from_str(&text).ok()?;
    let rows = v
        .get("rows")?
        .as_array()?
        .iter()
        .map(|r| {
            Some(BaselineRow {
                stage: r.get("stage")?.as_str()?.to_string(),
                nd: r.get("nd")?.as_u64()? as usize,
                overlap: r.get("overlap")?.as_bool()?,
                secs_per_step: r.get("secs_per_step")?.as_f64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    // Optional so baselines written before the offload section stay
    // loadable; their tier path simply goes ungated until regenerated.
    let offload_rows = v
        .get("offload_rows")
        .and_then(|rows| rows.as_array())
        .map(|rows| {
            rows.iter()
                .map(|r| {
                    Some(BaselineOffloadRow {
                        nd: r.get("nd")?.as_u64()? as usize,
                        overlap: r.get("overlap")?.as_bool()?,
                        secs_per_step: r.get("secs_per_step")?.as_f64()?,
                    })
                })
                .collect::<Option<Vec<_>>>()
        })
        .unwrap_or(Some(Vec::new()))?;
    Some(Baseline {
        link_latency_us: v.get("link_latency_us")?.as_u64()?,
        steps: v.get("steps")?.as_u64()? as usize,
        rows,
        offload_rows,
    })
}

/// The modeled two-tier fabric: NVLink-ish inside a node, a congested
/// shared link between nodes — slow enough that stage-3 inter-node
/// volume is a large share of the step, which is exactly the
/// low-bandwidth-cluster regime ZeRO++ targets.
fn tiered_link() -> TieredLink {
    TieredLink {
        node_size: 2,
        intra_latency: Duration::from_micros(5),
        intra_bytes_per_sec: 4e9,
        inter_latency: Duration::from_micros(150),
        inter_bytes_per_sec: 5e6,
    }
}

/// Stage 3 with (or without) the modeled host tier: PCIe-gen3-ish
/// bandwidth and a small per-transfer latency, no device cap (the budget
/// *proof* belongs to the tests and the CLI; the bench prices the link).
fn offload_setup(dp: usize, offload: bool, overlap: bool) -> TrainSetup {
    let mut setup = step_setup(ZeroStage::Three, dp, overlap);
    if offload {
        setup.zero.tier = TierConfig {
            enabled: true,
            device_budget: u64::MAX,
            host_bw: 8 << 30,
            host_lat: Duration::from_micros(10),
            depth: 1,
        };
    }
    setup
}

fn comp_setup(dp: usize, compressed: bool, overlap: bool) -> TrainSetup {
    let mut setup = step_setup(ZeroStage::Three, dp, overlap);
    if compressed {
        setup.zero.compression = CompressionConfig {
            qwz: true,
            hpz: true,
            qgz: true,
            node_size: tiered_link().node_size,
            block: 64,
        };
    }
    setup
}

fn run_one(stage: ZeroStage, nd: usize, overlap: bool, steps: usize, latency: Duration) -> (f64, TrainReport) {
    let setup = step_setup(stage, nd, overlap);
    let t0 = Instant::now();
    let report = run_training_world(&setup, steps, 0, WorldConfig::with_link_latency(latency));
    (t0.elapsed().as_secs_f64(), report)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    let check_path = argv
        .iter()
        .position(|a| a == "--check-against")
        .map(|i| argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--check-against needs a baseline file path");
            std::process::exit(2);
        }));
    let baseline: Option<Baseline> = check_path.as_ref().map(|p| {
        load_baseline(p).unwrap_or_else(|| {
            eprintln!("check: cannot read or parse baseline {p}");
            std::process::exit(2);
        })
    });

    let (stages, dps, mut steps, mut trials, mut latency): (&[ZeroStage], &[usize], usize, usize, Duration) =
        if smoke {
            (&[ZeroStage::Three], &[2], 2, 1, Duration::from_micros(50))
        } else {
            (
                &[ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three],
                &[2, 4],
                10,
                2,
                Duration::from_micros(800),
            )
        };
    if let Some(base) = &baseline {
        // Replay at the baseline's recorded conditions so the wall-clock
        // comparison is apples-to-apples, with best-of-2 trials to damp
        // scheduler noise.
        latency = Duration::from_micros(base.link_latency_us);
        steps = base.steps;
        trials = trials.max(2);
    }

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut global_batch = 0;
    for &stage in stages {
        for &nd in dps {
            let mut secs = [0.0f64; 2];
            let mut overlap_ms = [0.0f64; 2];
            for overlap in [false, true] {
                let setup = step_setup(stage, nd, overlap);
                global_batch = setup.global_batch;
                let tokens = (setup.global_batch * setup.model.seq * steps) as f64;
                // Best-of-`trials`: the in-process cluster shares one
                // host with the harness, so min wall-clock is the
                // scheduler-noise-free estimate.
                let (mut elapsed, mut report) = run_one(stage, nd, overlap, steps, latency);
                for _ in 1..trials {
                    let (e, r) = run_one(stage, nd, overlap, steps, latency);
                    if e < elapsed {
                        (elapsed, report) = (e, r);
                    }
                }
                secs[overlap as usize] = elapsed / steps as f64;
                let per_step_ms = |nanos: u64| nanos as f64 / 1e6 / steps as f64;
                let wait_max =
                    report.ranks.iter().map(|r| r.timing.total_wait_nanos()).max().unwrap_or(0);
                let exec_max =
                    report.ranks.iter().map(|r| r.timing.total_exec_nanos()).max().unwrap_or(0);
                let overlap_max = report
                    .ranks
                    .iter()
                    .map(|r| r.timeline.compute_collective_overlap_ns())
                    .max()
                    .unwrap_or(0);
                overlap_ms[overlap as usize] = per_step_ms(overlap_max);
                let r0 = &report.ranks[0].timing;
                rows.push(StepRow {
                    stage: stage.name().to_string(),
                    nd,
                    overlap,
                    steps,
                    secs_per_step: elapsed / steps as f64,
                    tokens_per_sec: tokens / elapsed,
                    comm_wait_ms_per_step: per_step_ms(wait_max),
                    comm_exec_ms_per_step: per_step_ms(exec_max),
                    rank0_wait_ms_by_kind: ALL_KINDS
                        .iter()
                        .map(|k| per_step_ms(r0.wait_nanos(*k)))
                        .collect(),
                    rank0_exec_ms_by_kind: ALL_KINDS
                        .iter()
                        .map(|k| per_step_ms(r0.exec_nanos(*k)))
                        .collect(),
                    trace_overlap_ms_per_step: overlap_ms[overlap as usize],
                    rank0_overlap_windows: report.ranks[0]
                        .timeline
                        .compute_collective_overlap()
                        .len(),
                });
            }
            println!(
                "{:<20} N={}  trace overlap: sync {:>6.2} ms/step, overlapped {:>6.2} ms/step",
                stage.name(),
                nd,
                overlap_ms[0],
                overlap_ms[1]
            );
            speedups.push(Speedup {
                stage: stage.name().to_string(),
                nd,
                sync_secs_per_step: secs[0],
                overlapped_secs_per_step: secs[1],
                speedup: secs[0] / secs[1],
            });
        }
    }

    for s in &speedups {
        println!(
            "{:<20} N={}  sync {:>8.2} ms/step  overlapped {:>8.2} ms/step  speedup {:.2}×",
            s.stage,
            s.nd,
            s.sync_secs_per_step * 1e3,
            s.overlapped_secs_per_step * 1e3,
            s.speedup
        );
    }

    // Memory-tier offload: the same stage-3 config with and without the
    // modeled host tier. The bitwise loss gate runs in every mode
    // (including --smoke); the rows only reach the results file on a
    // full run.
    let off_dp = if smoke { 2 } else { 4 };
    let mut offload_rows = Vec::new();
    for overlap in [false, true] {
        let mut secs = [0.0f64; 2];
        let mut reports: [Option<TrainReport>; 2] = [None, None];
        for offload in [false, true] {
            let setup = offload_setup(off_dp, offload, overlap);
            let run = || {
                let t0 = Instant::now();
                let r = run_training_world(
                    &setup,
                    steps,
                    0,
                    WorldConfig::with_link_latency(latency),
                );
                (t0.elapsed().as_secs_f64(), r)
            };
            let (mut elapsed, mut report) = run();
            for _ in 1..trials {
                let (e, r) = run();
                if e < elapsed {
                    (elapsed, report) = (e, r);
                }
            }
            secs[offload as usize] = elapsed / steps as f64;
            reports[offload as usize] = Some(report);
        }
        let base_run = reports[0].take().expect("baseline run recorded");
        let off_run = reports[1].take().expect("offloaded run recorded");
        let identical = base_run.losses.len() == off_run.losses.len()
            && base_run
                .losses
                .iter()
                .zip(&off_run.losses)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if !identical {
            eprintln!(
                "offload: FAIL — losses diverge from the unconstrained run \
                 (N={off_dp} overlap={overlap})\n  offloaded: {:?}\n  baseline:  {:?}",
                off_run.losses, base_run.losses
            );
            std::process::exit(1);
        }
        let r0 = &off_run.ranks[0];
        println!(
            "ZeRO-3 tier offload  N={off_dp} overlap={overlap}  plain {:>8.2} ms/step  \
             offloaded {:>8.2} ms/step  (tier {:.2} ms/step, {} B moved, losses bitwise equal)",
            secs[0] * 1e3,
            secs[1] * 1e3,
            r0.tier_time.as_secs_f64() * 1e3 / steps as f64,
            r0.tier.total_bytes(),
        );
        offload_rows.push(OffloadRow {
            nd: off_dp,
            overlap,
            steps,
            secs_per_step: secs[1],
            baseline_secs_per_step: secs[0],
            tier_fetch_bytes: r0.tier.fetch_bytes,
            tier_spill_bytes: r0.tier.spill_bytes,
            tier_time_ms_per_step: r0.tier_time.as_secs_f64() * 1e3 / steps as f64,
            relative_throughput: secs[0] / secs[1],
        });
    }

    if let Some(base) = &baseline {
        let mut compared = 0usize;
        let mut fails = Vec::new();
        for row in &rows {
            let Some(b) = base
                .rows
                .iter()
                .find(|b| b.stage == row.stage && b.nd == row.nd && b.overlap == row.overlap)
            else {
                continue;
            };
            compared += 1;
            if row.secs_per_step > b.secs_per_step * 1.10 {
                fails.push(format!(
                    "{} N={} overlap={}: {:.2} ms/step vs baseline {:.2} ms/step \
                     (+{:.0}% > 10%)",
                    row.stage,
                    row.nd,
                    row.overlap,
                    row.secs_per_step * 1e3,
                    b.secs_per_step * 1e3,
                    (row.secs_per_step / b.secs_per_step - 1.0) * 100.0
                ));
            }
        }
        for row in &offload_rows {
            let Some(b) = base
                .offload_rows
                .iter()
                .find(|b| b.nd == row.nd && b.overlap == row.overlap)
            else {
                continue;
            };
            compared += 1;
            if row.secs_per_step > b.secs_per_step * 1.10 {
                fails.push(format!(
                    "offload N={} overlap={}: {:.2} ms/step vs baseline {:.2} ms/step \
                     (+{:.0}% > 10%)",
                    row.nd,
                    row.overlap,
                    row.secs_per_step * 1e3,
                    b.secs_per_step * 1e3,
                    (row.secs_per_step / b.secs_per_step - 1.0) * 100.0
                ));
            }
        }
        if compared == 0 {
            eprintln!("check: FAIL — no measured row matched a baseline row");
            std::process::exit(1);
        }
        if !fails.is_empty() {
            for f in &fails {
                eprintln!("check: FAIL — {f}");
            }
            std::process::exit(1);
        }
        println!(
            "check: OK — {compared} rows within 10% of baseline (results file untouched)"
        );
        return;
    }
    if smoke {
        println!("smoke run complete (results file untouched)");
        return;
    }

    // Compression on the two-tier fabric: stage 3 across two modeled
    // nodes, raw vs all ZeRO++ levers, sync and overlapped.
    let link = tiered_link();
    let comp_dp = 4;
    let mut compression_rows = Vec::new();
    let mut compression_speedups = Vec::new();
    for overlap in [false, true] {
        let mut secs = [0.0f64; 2];
        for compressed in [false, true] {
            let setup = comp_setup(comp_dp, compressed, overlap);
            let tokens = (setup.global_batch * setup.model.seq * steps) as f64;
            let run = || {
                let t0 = Instant::now();
                run_training_world(&setup, steps, 0, WorldConfig::with_tiered_link(link));
                t0.elapsed().as_secs_f64()
            };
            let mut elapsed = run();
            for _ in 1..trials {
                elapsed = elapsed.min(run());
            }
            secs[compressed as usize] = elapsed / steps as f64;
            compression_rows.push(TieredRow {
                nd: comp_dp,
                node_size: link.node_size,
                compressed,
                overlap,
                steps,
                secs_per_step: elapsed / steps as f64,
                tokens_per_sec: tokens / elapsed,
            });
        }
        println!(
            "ZeRO-3 tiered link   N={comp_dp} G={} overlap={overlap}  raw {:>8.2} ms/step  \
             qwZ+hpZ+qgZ {:>8.2} ms/step  speedup {:.2}×",
            link.node_size,
            secs[0] * 1e3,
            secs[1] * 1e3,
            secs[0] / secs[1]
        );
        compression_speedups.push(CompressionSpeedup {
            nd: comp_dp,
            node_size: link.node_size,
            overlap,
            raw_secs_per_step: secs[0],
            compressed_secs_per_step: secs[1],
            speedup: secs[0] / secs[1],
        });
    }

    let out = BenchStep {
        link_latency_us: latency.as_micros() as u64,
        steps,
        global_batch,
        rows,
        speedups,
        offload_rows,
        tiered_link: TieredLinkSpec {
            node_size: link.node_size,
            intra_latency_us: link.intra_latency.as_micros() as u64,
            intra_gbytes_per_sec: link.intra_bytes_per_sec / 1e9,
            inter_latency_us: link.inter_latency.as_micros() as u64,
            inter_mbytes_per_sec: link.inter_bytes_per_sec / 1e6,
        },
        compression_rows,
        compression_speedups,
    };
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has a grandparent");
    let path = root.join("results/BENCH_step.json");
    let json = serde_json::to_string_pretty(&out).expect("serialize bench");
    std::fs::write(&path, json + "\n").expect("write BENCH_step.json");
    println!("wrote {}", path.display());
}
