//! Collective-traffic baseline: `results/BENCH_collectives.json`.
//!
//! For each ZeRO stage at the standard bench model and DP degree, runs a
//! short training loop and records per-rank communication volume
//! (measured by the fabric's traffic counters *and* predicted by the
//! declarative `CommPlan` — the two must agree exactly) together with
//! wall-clock throughput in bytes/sec. The JSON is a committed baseline:
//! a schedule change that moves more bytes than the plan predicts shows
//! up as a diff here before it shows up as a regression on hardware.

use std::time::Instant;

use serde::Serialize;
use zero_bench::bench_setup;
use zero_comm::ALL_KINDS;
use zero_core::{run_training, CommPlan, StepShape, ZeroStage};
use zero_model::Layout;

#[derive(Serialize)]
struct StageRow {
    stage: String,
    psi: usize,
    nd: usize,
    steps: usize,
    /// Measured bytes sent per rank per step (max over ranks).
    bytes_per_rank_per_step: f64,
    /// The CommPlan's analytic prediction for the same quantity.
    plan_bytes_per_rank_per_step: f64,
    /// Measured aggregate send throughput (all ranks) over the run.
    bytes_per_sec: f64,
    /// Wall-clock seconds per training step.
    secs_per_step: f64,
    /// Per-kind bytes for rank 0 per step, in discriminant order
    /// (all-reduce, reduce-scatter, all-gather, broadcast, reduce, p2p).
    rank0_bytes_by_kind: Vec<f64>,
}

fn main() {
    let nd = 4;
    let steps = 5;
    let mut rows = Vec::new();

    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        let setup = bench_setup(stage, nd);
        let layout = Layout::build(&setup.model);
        let psi = layout.total_params();
        let local_batch = setup.global_batch / nd;
        let act_elems = local_batch * setup.model.seq * setup.model.hidden;

        let t0 = Instant::now();
        let report = run_training(&setup, steps, 0);
        let elapsed = t0.elapsed().as_secs_f64();

        // Analytic per-rank volume from the plan, shaped by the observed
        // skip flags (max over ranks, matching the measured statistic).
        let plan_bytes = |rank: usize| -> u64 {
            report
                .skipped
                .iter()
                .map(|&skipped| {
                    CommPlan::train_step(
                        &layout,
                        &setup.zero,
                        setup.grid,
                        &StepShape { micro_batches: 1, act_elems, skipped },
                    )
                    .total_rank_bytes(rank)
                })
                .sum()
        };

        let measured_max = report
            .ranks
            .iter()
            .map(|r| r.traffic.total_bytes())
            .max()
            .unwrap_or(0);
        let plan_max = (0..nd).map(plan_bytes).max().unwrap_or(0);
        let total: u64 = report.ranks.iter().map(|r| r.traffic.total_bytes()).sum();
        let rank0 = &report.ranks[0].traffic;

        rows.push(StageRow {
            stage: stage.name().to_string(),
            psi,
            nd,
            steps,
            bytes_per_rank_per_step: measured_max as f64 / steps as f64,
            plan_bytes_per_rank_per_step: plan_max as f64 / steps as f64,
            bytes_per_sec: total as f64 / elapsed,
            secs_per_step: elapsed / steps as f64,
            rank0_bytes_by_kind: ALL_KINDS
                .iter()
                .map(|k| rank0.bytes(*k) as f64 / steps as f64)
                .collect(),
        });
    }

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has a grandparent");
    let out = root.join("results/BENCH_collectives.json");
    let json = serde_json::to_string_pretty(&rows).expect("serialize rows");
    std::fs::write(&out, json + "\n").expect("write BENCH_collectives.json");
    println!("wrote {}", out.display());
    for row in &rows {
        println!(
            "{:<20} bytes/rank/step {:>12.0} (plan {:>12.0})  {:>10.2e} B/s",
            row.stage, row.bytes_per_rank_per_step, row.plan_bytes_per_rank_per_step, row.bytes_per_sec
        );
    }
}
