//! Serving throughput and memory: `results/BENCH_serve.json`.
//!
//! For each serving world size N, runs the same request batch twice
//! through the shard-hosted engine — continuous batching (several KV
//! slots) and one-at-a-time (a single slot, the serial baseline) — and
//! records throughput, p50/p99 request latency, and the per-rank
//! parameter footprint against the §5.3 bound 4Ψ·(2/N + ε). Both
//! configurations must produce bitwise-identical greedy outputs, and
//! both must match the single-process `IncrementalDecoder`: batching
//! and sharding are performance knobs, never accuracy knobs.
//!
//! `--smoke` runs one tiny configuration; with `--out PATH` the smoke
//! still writes its JSON there (CI uses a temp file), otherwise the
//! committed results file is left untouched.

use std::time::Instant;

use serde::Serialize;
use zero_model::{argmax, Gpt, IncrementalDecoder, ModelConfig};
use zero_serve::{serve, ServeConfig, ServeRequest, ServeResponse};

/// Deep enough (8 blocks) that the largest gather unit is a small
/// fraction of Ψ — the transient double-buffer window has to fit inside
/// the ε of the memory bound even at N = 4.
fn serve_model() -> ModelConfig {
    ModelConfig { vocab: 64, seq: 32, hidden: 64, layers: 8, heads: 4 }
}

fn requests(n_req: usize, max_new: usize, vocab: usize) -> Vec<ServeRequest> {
    (0..n_req)
        .map(|i| ServeRequest {
            id: i as u64,
            prompt: (0..3 + i % 4).map(|j| ((i * 11 + j * 5 + 1) % vocab) as u32).collect(),
            max_new_tokens: max_new,
        })
        .collect()
}

fn reference_greedy(model: &ModelConfig, params: &[f32], req: &ServeRequest) -> Vec<u32> {
    let gpt = Gpt::new(*model);
    let mut dec = IncrementalDecoder::new(&gpt, params);
    let mut last = Vec::new();
    for &t in &req.prompt {
        last = dec.feed(t).expect("bench prompt is well-formed");
    }
    let mut out = vec![argmax(&last) as u32];
    while out.len() < req.max_new_tokens {
        last = dec.feed(*out.last().unwrap()).expect("bench decode");
        out.push(argmax(&last) as u32);
    }
    out
}

fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    assert!(!sorted_ns.is_empty());
    let idx = (q * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

#[derive(Serialize)]
struct ServeRow {
    ranks: usize,
    slots: usize,
    requests: usize,
    tokens: u64,
    wall_secs: f64,
    tokens_per_sec: f64,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    batch_steps: u64,
    /// Max over ranks: persistent shard + transient gather window, bytes.
    param_bytes_peak: u64,
    /// The §5.3 acceptance bound: 4Ψ·(2/N + ε) bytes.
    param_bound_bytes: u64,
    kv_slab_bytes: u64,
    /// Rank 0 all-gather traffic — byte-exact against the static plan.
    gather_bytes: u64,
}

#[derive(Serialize)]
struct ServeSpeedup {
    ranks: usize,
    serial_tokens_per_sec: f64,
    batched_tokens_per_sec: f64,
    /// batched / serial throughput; > 1 means batching wins.
    speedup: f64,
}

#[derive(Serialize)]
struct BenchServe {
    model_params: usize,
    full_replica_bytes: u64,
    epsilon: f64,
    max_new_tokens: usize,
    rows: Vec<ServeRow>,
    speedups: Vec<ServeSpeedup>,
}

fn run_one(
    model: &ModelConfig,
    shards: &[Vec<f32>],
    reqs: &[ServeRequest],
    slots: usize,
    trials: usize,
) -> (f64, Vec<ServeResponse>, u64, u64, u64, u64) {
    let cfg = ServeConfig { slots, overlap: true };
    let mut best: Option<(f64, _)> = None;
    for _ in 0..trials {
        let t0 = Instant::now();
        let report = serve(model, shards, reqs, &cfg);
        let dt = t0.elapsed().as_secs_f64();
        report.check_ranks_agree().expect("serving ranks agree");
        if best.as_ref().is_none_or(|(b, _)| dt < *b) {
            best = Some((dt, report));
        }
    }
    let (secs, report) = best.unwrap();
    let responses: Vec<ServeResponse> =
        report.outcomes().iter().map(|o| o.response().expect("bench request admitted").clone()).collect();
    let peak = report.ranks.iter().map(|r| r.param_bytes_peak).max().unwrap();
    (
        secs,
        responses,
        report.ranks[0].batch_steps,
        peak,
        report.ranks[0].kv_slab_bytes,
        report.ranks[0].gather_bytes,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path: Option<String> = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    const EPSILON: f64 = 0.10;
    let model = serve_model();
    let (worlds, slots, n_req, max_new, trials): (&[usize], usize, usize, usize, usize) =
        if smoke { (&[2], 4, 6, 4, 1) } else { (&[2, 4], 4, 16, 8, 2) };

    let params = zero_model::init_full_params(&model, 7);
    let full_bytes = 4 * params.len() as u64;
    let reqs = requests(n_req, max_new, model.vocab);
    let reference: Vec<Vec<u32>> =
        reqs.iter().map(|r| reference_greedy(&model, &params, r)).collect();

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &n in worlds {
        let part = zero_core::Partitioner::new(params.len(), n);
        let shards: Vec<Vec<f32>> =
            (0..n).map(|r| params[part.shard_range(r)].to_vec()).collect();
        let bound = (full_bytes as f64 * (2.0 / n as f64 + EPSILON)) as u64;

        let mut tps = [0.0f64; 2];
        for (i, slot_count) in [1, slots].into_iter().enumerate() {
            let (secs, responses, steps, peak, kv, gather) =
                run_one(&model, &shards, &reqs, slot_count, trials);
            for (resp, want) in responses.iter().zip(&reference) {
                assert_eq!(
                    &resp.tokens, want,
                    "served tokens diverge from the incremental-decoder reference \
                     (N={n}, slots={slot_count}, request {})",
                    resp.id
                );
            }
            assert!(
                peak <= bound,
                "N={n}, slots={slot_count}: {peak} param bytes exceeds 4Ψ(2/N+ε) = {bound}"
            );
            let tokens: u64 = responses.iter().map(|r| r.decode_steps).sum();
            let mut lat: Vec<u64> = responses.iter().map(|r| r.latency_ns).collect();
            lat.sort_unstable();
            tps[i] = tokens as f64 / secs;
            println!(
                "N={n} slots={slot_count}: {:>7.1} tok/s  p50 {:>7.2} ms  p99 {:>7.2} ms  \
                 peak {peak} B (bound {bound} B)",
                tps[i],
                percentile_ms(&lat, 0.50),
                percentile_ms(&lat, 0.99),
            );
            rows.push(ServeRow {
                ranks: n,
                slots: slot_count,
                requests: reqs.len(),
                tokens,
                wall_secs: secs,
                tokens_per_sec: tps[i],
                p50_latency_ms: percentile_ms(&lat, 0.50),
                p99_latency_ms: percentile_ms(&lat, 0.99),
                batch_steps: steps,
                param_bytes_peak: peak,
                param_bound_bytes: bound,
                kv_slab_bytes: kv,
                gather_bytes: gather,
            });
        }
        println!("N={n}: batching speedup {:.2}×", tps[1] / tps[0]);
        speedups.push(ServeSpeedup {
            ranks: n,
            serial_tokens_per_sec: tps[0],
            batched_tokens_per_sec: tps[1],
            speedup: tps[1] / tps[0],
        });
    }

    if !smoke {
        assert!(
            speedups.iter().all(|s| s.speedup > 1.0),
            "continuous batching must beat one-at-a-time serving"
        );
    }

    let out = BenchServe {
        model_params: params.len(),
        full_replica_bytes: full_bytes,
        epsilon: EPSILON,
        max_new_tokens: max_new,
        rows,
        speedups,
    };
    let json = serde_json::to_string_pretty(&out).expect("serialize bench");
    let path = match (&out_path, smoke) {
        (Some(p), _) => std::path::PathBuf::from(p),
        (None, true) => {
            println!("smoke run complete (results file untouched)");
            return;
        }
        (None, false) => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("manifest dir has a grandparent")
            .join("results/BENCH_serve.json"),
    };
    std::fs::write(&path, json + "\n").expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
