//! Serving throughput and memory: `results/BENCH_serve.json`.
//!
//! **Closed-loop section.** For each serving world size N, runs the same
//! request batch twice through the shard-hosted engine — continuous
//! batching (several KV slots) and one-at-a-time (a single slot, the
//! serial baseline) — and records throughput, p50/p99 request latency,
//! and the per-rank parameter footprint against the §5.3 bound
//! 4Ψ·(2/N + ε).
//!
//! **Open-loop section.** Replays seeded arrival schedules
//! (`zero_serve::load`) through the engine under several KV and SLO
//! configurations and records goodput at saturation, step-indexed
//! latency percentiles, shed counts, and the prefix-reuse hit rate. The
//! step-indexed fields are deterministic — byte-identical run to run —
//! which is what `--check-against` exploits: it re-runs one schedule and
//! compares every deterministic field against the committed results
//! file, turning the bench into a scheduler-regression gate.
//!
//! In every mode, every completed request's greedy tokens are asserted
//! bitwise identical to the single-process `IncrementalDecoder`:
//! batching, sharding, paging, prefix reuse, and load shedding are
//! performance knobs, never accuracy knobs.
//!
//! `--smoke` runs one tiny closed-loop configuration; with `--out PATH`
//! the smoke still writes its JSON there (CI uses a temp file),
//! otherwise the committed results file is left untouched.
//! `--arrivals DESC [--seed S] [--kv-block B] [--prefix-reuse]
//! [--slo-steps N] [--check-against PATH]` runs one open-loop schedule.

use std::time::Instant;

use serde::Serialize;
use zero_model::{argmax, Gpt, IncrementalDecoder, ModelConfig};
use zero_serve::{
    generate, serve, Arrivals, KvBackend, LoadConfig, ServeConfig, ServeError, ServeRequest,
    ServeResponse,
};

/// Deep enough (8 blocks) that the largest gather unit is a small
/// fraction of Ψ — the transient double-buffer window has to fit inside
/// the ε of the memory bound even at N = 4.
fn serve_model() -> ModelConfig {
    ModelConfig { vocab: 64, seq: 32, hidden: 64, layers: 8, heads: 4 }
}

fn requests(n_req: usize, max_new: usize, vocab: usize) -> Vec<ServeRequest> {
    (0..n_req)
        .map(|i| {
            ServeRequest::new(
                i as u64,
                (0..3 + i % 4).map(|j| ((i * 11 + j * 5 + 1) % vocab) as u32).collect(),
                max_new,
            )
        })
        .collect()
}

fn reference_greedy(model: &ModelConfig, params: &[f32], req: &ServeRequest) -> Vec<u32> {
    let gpt = Gpt::new(*model);
    let mut dec = IncrementalDecoder::new(&gpt, params);
    let mut last = Vec::new();
    for &t in &req.prompt {
        last = dec.feed(t).expect("bench prompt is well-formed");
    }
    let mut out = vec![argmax(&last) as u32];
    while out.len() < req.max_new_tokens {
        last = dec.feed(*out.last().unwrap()).expect("bench decode");
        out.push(argmax(&last) as u32);
    }
    out
}

/// Nearest-rank percentile (inclusive): the smallest sample such that at
/// least `q` of the distribution is ≤ it — `sorted[⌈q·n⌉ − 1]`.
///
/// The old implementation indexed `round(q·(n−1))`, which is not any
/// standard percentile definition: at the half-points it jumps to the
/// *next* sample (p50 of 20 samples returned the 11th, not the 10th),
/// and two baselines computed with different sample counts weren't
/// comparing the same statistic. Nearest-rank is the textbook
/// definition: p100 is exactly the maximum, p50 the lower median, and
/// the reported value is always an observed sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn percentile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    percentile(sorted_ns, q) as f64 / 1e6
}

#[derive(Serialize)]
struct ServeRow {
    ranks: usize,
    slots: usize,
    requests: usize,
    tokens: u64,
    wall_secs: f64,
    tokens_per_sec: f64,
    p50_latency_ms: f64,
    p99_latency_ms: f64,
    batch_steps: u64,
    /// Max over ranks: persistent shard + transient gather window, bytes.
    param_bytes_peak: u64,
    /// The §5.3 acceptance bound: 4Ψ·(2/N + ε) bytes.
    param_bound_bytes: u64,
    kv_arena_bytes: u64,
    /// Rank 0 all-gather traffic — byte-exact against the static plan.
    gather_bytes: u64,
}

#[derive(Serialize)]
struct ServeSpeedup {
    ranks: usize,
    serial_tokens_per_sec: f64,
    batched_tokens_per_sec: f64,
    /// batched / serial throughput; > 1 means batching wins.
    speedup: f64,
}

/// One open-loop schedule replayed through the engine. Every field except
/// the `wall_*` pair is a deterministic function of (schedule, config) —
/// `--check-against` compares them exactly.
#[derive(Serialize)]
struct OpenLoopRow {
    /// Arrival-process descriptor (`poisson:0.5`, `burst:8@16`, …).
    arrivals: String,
    seed: u64,
    ranks: usize,
    slots: usize,
    /// Paged-KV block positions; 0 means the slab backend.
    kv_block: usize,
    prefix_reuse: bool,
    /// Admission SLO in batch steps; 0 means never shed.
    slo_steps: u64,
    requests: usize,
    admitted: u64,
    shed: u64,
    completed_tokens: u64,
    batch_steps: u64,
    p50_latency_steps: u64,
    p99_latency_steps: u64,
    /// Prompt positions served from shared prefix blocks.
    prefix_hit_rows: u64,
    /// Prompt positions across all admitted requests (`Σ prompt_len − 1`).
    prompt_rows: u64,
    /// `prefix_hit_rows / prompt_rows`.
    prefix_hit_rate: f64,
    /// KV bytes actually allocated over the run (slab: the full arena).
    kv_bytes_allocated: u64,
    wall_secs: f64,
    /// Completed (not merely attempted) tokens per second — the number
    /// saturation protects.
    wall_goodput_tokens_per_sec: f64,
}

#[derive(Serialize)]
struct BenchServe {
    model_params: usize,
    full_replica_bytes: u64,
    epsilon: f64,
    max_new_tokens: usize,
    rows: Vec<ServeRow>,
    speedups: Vec<ServeSpeedup>,
    open_loop: Vec<OpenLoopRow>,
}

fn run_one(
    model: &ModelConfig,
    shards: &[Vec<f32>],
    reqs: &[ServeRequest],
    slots: usize,
    trials: usize,
) -> (f64, Vec<ServeResponse>, u64, u64, u64, u64) {
    let cfg = ServeConfig { slots, ..ServeConfig::default() };
    let mut best: Option<(f64, _)> = None;
    for _ in 0..trials {
        let t0 = Instant::now();
        let report = serve(model, shards, reqs, &cfg);
        let dt = t0.elapsed().as_secs_f64();
        report.check_ranks_agree().expect("serving ranks agree");
        if best.as_ref().is_none_or(|(b, _)| dt < *b) {
            best = Some((dt, report));
        }
    }
    let (secs, report) = best.unwrap();
    let responses: Vec<ServeResponse> =
        report.outcomes().iter().map(|o| o.response().expect("bench request admitted").clone()).collect();
    let peak = report.ranks.iter().map(|r| r.param_bytes_peak).max().unwrap();
    (
        secs,
        responses,
        report.ranks[0].batch_steps,
        peak,
        report.ranks[0].kv_arena_bytes,
        report.ranks[0].gather_bytes,
    )
}

/// One open-loop configuration: which schedule, which engine knobs.
#[derive(Clone)]
struct OpenSpec {
    arrivals: Arrivals,
    seed: u64,
    ranks: usize,
    slots: usize,
    kv_block: usize,
    prefix_reuse: bool,
    slo_steps: Option<u64>,
    n_requests: usize,
}

/// The one schedule shape every open-loop run uses, so rows are keyed by
/// `(arrivals, seed, config)` alone.
fn open_load(spec: &OpenSpec, vocab: usize) -> LoadConfig {
    LoadConfig {
        n_requests: spec.n_requests,
        arrivals: spec.arrivals,
        prompt_len: (4, 12),
        max_new: (4, 8),
        vocab,
        seed: spec.seed,
        shared_prefixes: 3,
        prefix_len: 8,
    }
}

fn run_open(model: &ModelConfig, params: &[f32], spec: &OpenSpec) -> OpenLoopRow {
    let reqs = generate(&open_load(spec, model.vocab));
    let part = zero_core::Partitioner::new(params.len(), spec.ranks);
    let shards: Vec<Vec<f32>> =
        (0..spec.ranks).map(|r| params[part.shard_range(r)].to_vec()).collect();
    let cfg = ServeConfig {
        slots: spec.slots,
        overlap: true,
        kv: if spec.kv_block == 0 {
            KvBackend::Slab
        } else {
            KvBackend::Paged { block: spec.kv_block, prefix_reuse: spec.prefix_reuse }
        },
        slo_steps: spec.slo_steps,
    };
    let t0 = Instant::now();
    let report = serve(model, &shards, &reqs, &cfg);
    let secs = t0.elapsed().as_secs_f64();
    report.check_ranks_agree().expect("open-loop ranks agree");

    let mut admitted = 0u64;
    let mut shed = 0u64;
    let mut tokens = 0u64;
    let mut prompt_rows = 0u64;
    let mut lat_steps: Vec<u64> = Vec::new();
    for (req, out) in reqs.iter().zip(report.outcomes()) {
        match out {
            zero_serve::ServeOutcome::Completed(resp) => {
                assert_eq!(
                    resp.tokens,
                    reference_greedy(model, params, req),
                    "open-loop tokens diverge from the incremental decoder \
                     ({} request {})",
                    spec.arrivals.describe(),
                    req.id
                );
                admitted += 1;
                tokens += resp.decode_steps;
                prompt_rows += (req.prompt.len() - 1) as u64;
                lat_steps.push(resp.latency_steps);
            }
            zero_serve::ServeOutcome::Rejected { error, .. } => {
                assert!(
                    matches!(error, ServeError::Overloaded { .. }),
                    "generated requests are well-formed; only the SLO may reject them"
                );
                shed += 1;
            }
        }
    }
    assert!(admitted > 0, "schedule must complete at least one request");
    lat_steps.sort_unstable();
    let meters = report.ranks[0].kv_meters;
    OpenLoopRow {
        arrivals: spec.arrivals.describe(),
        seed: spec.seed,
        ranks: spec.ranks,
        slots: spec.slots,
        kv_block: spec.kv_block,
        prefix_reuse: spec.prefix_reuse,
        slo_steps: spec.slo_steps.unwrap_or(0),
        requests: reqs.len(),
        admitted,
        shed,
        completed_tokens: tokens,
        batch_steps: report.ranks[0].batch_steps,
        p50_latency_steps: percentile(&lat_steps, 0.50),
        p99_latency_steps: percentile(&lat_steps, 0.99),
        prefix_hit_rows: meters.prefix_hit_rows,
        prompt_rows,
        prefix_hit_rate: meters.prefix_hit_rows as f64 / prompt_rows.max(1) as f64,
        kv_bytes_allocated: meters.bytes_allocated,
        wall_secs: secs,
        wall_goodput_tokens_per_sec: tokens as f64 / secs,
    }
}

/// Compares `row` against the matching row of a committed results file.
/// Every step-indexed field must match exactly; wall-clock fields are
/// informational and not compared. Panics (non-zero exit) on mismatch or
/// if the baseline has no matching configuration.
fn check_against(path: &str, row: &OpenLoopRow) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let v: serde_json::Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad JSON in {path}: {e}"));
    let rows = v
        .get("open_loop")
        .and_then(|r| r.as_array())
        .unwrap_or_else(|| panic!("{path} has no open_loop section"));
    let base = rows
        .iter()
        .find(|r| {
            r.get("arrivals").and_then(|x| x.as_str()) == Some(row.arrivals.as_str())
                && r.get("seed").and_then(|x| x.as_u64()) == Some(row.seed)
                && r.get("ranks").and_then(|x| x.as_u64()) == Some(row.ranks as u64)
                && r.get("slots").and_then(|x| x.as_u64()) == Some(row.slots as u64)
                && r.get("kv_block").and_then(|x| x.as_u64()) == Some(row.kv_block as u64)
                && r.get("prefix_reuse").and_then(|x| x.as_bool()) == Some(row.prefix_reuse)
                && r.get("slo_steps").and_then(|x| x.as_u64()) == Some(row.slo_steps)
                && r.get("requests").and_then(|x| x.as_u64()) == Some(row.requests as u64)
        })
        .unwrap_or_else(|| {
            panic!(
                "{path} has no open_loop row for arrivals={} seed={} ranks={} slots={} \
                 kv_block={} prefix_reuse={} slo_steps={} requests={}",
                row.arrivals, row.seed, row.ranks, row.slots, row.kv_block, row.prefix_reuse,
                row.slo_steps, row.requests
            )
        });
    let fields: [(&str, u64); 8] = [
        ("admitted", row.admitted),
        ("shed", row.shed),
        ("completed_tokens", row.completed_tokens),
        ("batch_steps", row.batch_steps),
        ("p50_latency_steps", row.p50_latency_steps),
        ("p99_latency_steps", row.p99_latency_steps),
        ("prefix_hit_rows", row.prefix_hit_rows),
        ("kv_bytes_allocated", row.kv_bytes_allocated),
    ];
    for (name, got) in fields {
        let want = base
            .get(name)
            .and_then(|x| x.as_u64())
            .unwrap_or_else(|| panic!("baseline row lacks {name}"));
        assert_eq!(
            got, want,
            "deterministic open-loop field {name} drifted from {path} \
             (schedule {} seed {})",
            row.arrivals, row.seed
        );
    }
    println!("open-loop row matches baseline {path} on all deterministic fields");
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = arg_value(&args, "--out");

    const EPSILON: f64 = 0.10;
    let model = serve_model();
    let params = zero_model::init_full_params(&model, 7);
    let full_bytes = 4 * params.len() as u64;

    // Open-loop one-shot mode: replay one schedule, print the row,
    // optionally gate it against the committed results.
    if let Some(desc) = arg_value(&args, "--arrivals") {
        let arrivals = Arrivals::parse(&desc).unwrap_or_else(|e| panic!("{e}"));
        let spec = OpenSpec {
            arrivals,
            seed: arg_value(&args, "--seed").map_or(42, |s| s.parse().expect("bad --seed")),
            ranks: arg_value(&args, "--ranks").map_or(2, |s| s.parse().expect("bad --ranks")),
            slots: arg_value(&args, "--slots").map_or(4, |s| s.parse().expect("bad --slots")),
            kv_block: arg_value(&args, "--kv-block")
                .map_or(0, |s| s.parse().expect("bad --kv-block")),
            prefix_reuse: args.iter().any(|a| a == "--prefix-reuse"),
            slo_steps: arg_value(&args, "--slo-steps")
                .map(|s| s.parse().expect("bad --slo-steps")),
            n_requests: arg_value(&args, "--requests")
                .map_or(32, |s| s.parse().expect("bad --requests")),
        };
        let row = run_open(&model, &params, &spec);
        println!(
            "{} seed={}: {}/{} admitted ({} shed), {} tokens in {} steps, \
             p50 {} / p99 {} steps, prefix hit rate {:.2}, goodput {:.1} tok/s",
            row.arrivals, row.seed, row.admitted, row.requests, row.shed, row.completed_tokens,
            row.batch_steps, row.p50_latency_steps, row.p99_latency_steps, row.prefix_hit_rate,
            row.wall_goodput_tokens_per_sec
        );
        if let Some(path) = arg_value(&args, "--check-against") {
            check_against(&path, &row);
        }
        return;
    }

    let (worlds, slots, n_req, max_new, trials): (&[usize], usize, usize, usize, usize) =
        if smoke { (&[2], 4, 6, 4, 1) } else { (&[2, 4], 4, 16, 8, 2) };

    let reqs = requests(n_req, max_new, model.vocab);
    let reference: Vec<Vec<u32>> =
        reqs.iter().map(|r| reference_greedy(&model, &params, r)).collect();

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &n in worlds {
        let part = zero_core::Partitioner::new(params.len(), n);
        let shards: Vec<Vec<f32>> =
            (0..n).map(|r| params[part.shard_range(r)].to_vec()).collect();
        let bound = (full_bytes as f64 * (2.0 / n as f64 + EPSILON)) as u64;

        let mut tps = [0.0f64; 2];
        for (i, slot_count) in [1, slots].into_iter().enumerate() {
            let (secs, responses, steps, peak, kv, gather) =
                run_one(&model, &shards, &reqs, slot_count, trials);
            for (resp, want) in responses.iter().zip(&reference) {
                assert_eq!(
                    &resp.tokens, want,
                    "served tokens diverge from the incremental-decoder reference \
                     (N={n}, slots={slot_count}, request {})",
                    resp.id
                );
            }
            assert!(
                peak <= bound,
                "N={n}, slots={slot_count}: {peak} param bytes exceeds 4Ψ(2/N+ε) = {bound}"
            );
            let tokens: u64 = responses.iter().map(|r| r.decode_steps).sum();
            let mut lat: Vec<u64> = responses.iter().map(|r| r.latency_ns).collect();
            lat.sort_unstable();
            tps[i] = tokens as f64 / secs;
            println!(
                "N={n} slots={slot_count}: {:>7.1} tok/s  p50 {:>7.2} ms  p99 {:>7.2} ms  \
                 peak {peak} B (bound {bound} B)",
                tps[i],
                percentile_ms(&lat, 0.50),
                percentile_ms(&lat, 0.99),
            );
            rows.push(ServeRow {
                ranks: n,
                slots: slot_count,
                requests: reqs.len(),
                tokens,
                wall_secs: secs,
                tokens_per_sec: tps[i],
                p50_latency_ms: percentile_ms(&lat, 0.50),
                p99_latency_ms: percentile_ms(&lat, 0.99),
                batch_steps: steps,
                param_bytes_peak: peak,
                param_bound_bytes: bound,
                kv_arena_bytes: kv,
                gather_bytes: gather,
            });
        }
        println!("N={n}: batching speedup {:.2}×", tps[1] / tps[0]);
        speedups.push(ServeSpeedup {
            ranks: n,
            serial_tokens_per_sec: tps[0],
            batched_tokens_per_sec: tps[1],
            speedup: tps[1] / tps[0],
        });
    }

    if !smoke {
        assert!(
            speedups.iter().all(|s| s.speedup > 1.0),
            "continuous batching must beat one-at-a-time serving"
        );
    }

    // Open-loop section: the committed rows the CI smoke checks against.
    // Same Poisson schedule through slab and paged+reuse (whose
    // deterministic admission metrics must agree — the backends differ
    // only in memory), plus a saturating burst schedule with an SLO.
    let mut open_loop = Vec::new();
    if !smoke {
        let base = OpenSpec {
            arrivals: Arrivals::Poisson { rate: 0.5 },
            seed: 42,
            ranks: 2,
            slots: 4,
            kv_block: 0,
            prefix_reuse: false,
            slo_steps: None,
            n_requests: 32,
        };
        let specs = [
            base.clone(),
            OpenSpec { kv_block: 8, prefix_reuse: true, ..base.clone() },
            OpenSpec {
                arrivals: Arrivals::Burst { size: 8, period: 16 },
                slo_steps: Some(48),
                ..base.clone()
            },
        ];
        for spec in &specs {
            let row = run_open(&model, &params, spec);
            println!(
                "open-loop {} kv_block={} reuse={} slo={}: {}/{} admitted, {} tokens, \
                 p99 {} steps, hit rate {:.2}, {:.1} tok/s goodput",
                row.arrivals, row.kv_block, row.prefix_reuse, row.slo_steps, row.admitted,
                row.requests, row.completed_tokens, row.p99_latency_steps, row.prefix_hit_rate,
                row.wall_goodput_tokens_per_sec
            );
            open_loop.push(row);
        }
        // The paged+reuse run must actually reuse prefixes, and its
        // scheduler-visible outcomes must match the slab run exactly.
        assert!(open_loop[1].prefix_hit_rows > 0, "shared prefixes must hit the cache");
        assert_eq!(open_loop[0].completed_tokens, open_loop[1].completed_tokens);
        assert_eq!(open_loop[0].admitted, open_loop[1].admitted);
        assert!(open_loop[2].shed > 0, "the burst schedule must saturate the SLO");
    }

    let out = BenchServe {
        model_params: params.len(),
        full_replica_bytes: full_bytes,
        epsilon: EPSILON,
        max_new_tokens: max_new,
        rows,
        speedups,
        open_loop,
    };
    let json = serde_json::to_string_pretty(&out).expect("serialize bench");
    let path = match (&out_path, smoke) {
        (Some(p), _) => std::path::PathBuf::from(p),
        (None, true) => {
            println!("smoke run complete (results file untouched)");
            return;
        }
        (None, false) => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("manifest dir has a grandparent")
            .join("results/BENCH_serve.json"),
    };
    std::fs::write(&path, json + "\n").expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::percentile;

    /// Pins the nearest-rank definition on small known samples — the
    /// regression the old round()-based index computation failed.
    #[test]
    fn percentiles_use_nearest_rank_with_ceil() {
        // 20 samples 1..=20: p50 = 10th sample, p99 = ⌈19.8⌉ = 20th,
        // p100 = max. round() gave p99 = sorted[round(0.99·19)] = 19.
        let v: Vec<u64> = (1..=20).collect();
        assert_eq!(percentile(&v, 0.50), 10);
        assert_eq!(percentile(&v, 0.99), 20);
        assert_eq!(percentile(&v, 1.00), 20);
        assert_eq!(percentile(&v, 0.0), 1);

        // 34 samples: p50 = ⌈17⌉ = 17th, p90 = ⌈30.6⌉ = 31st.
        let v: Vec<u64> = (1..=34).collect();
        assert_eq!(percentile(&v, 0.50), 17);
        assert_eq!(percentile(&v, 0.90), 31);

        // 50 samples: p99 = ⌈49.5⌉ = 50th — the tail is the tail.
        let v: Vec<u64> = (1..=50).collect();
        assert_eq!(percentile(&v, 0.99), 50);
        // The old round(q·(n−1)) formula overshot the median on even
        // sample counts: round(0.5·19) = 10 → the 11th sample, not the
        // 10th that nearest-rank (and any median definition) picks.
        let v: Vec<u64> = (1..=20).collect();
        let old = (0.50 * (v.len() - 1) as f64).round() as usize;
        assert_eq!(v[old], 11, "documented: the bug this replaces reported 11");
        assert_eq!(percentile(&v, 0.50), 10);

        // Singleton: every percentile is the sample.
        assert_eq!(percentile(&[7], 0.01), 7);
        assert_eq!(percentile(&[7], 1.0), 7);
    }
}
