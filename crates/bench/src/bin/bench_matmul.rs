//! Panel-packing micro-benchmark: `results/BENCH_matmul.json`.
//!
//! Times `sgemm_tn` (the weight-gradient GEMM `dW = X^T · dY`, the one
//! kernel whose transposed operand was read with stride-`m` gathers)
//! against the retained pre-packing baseline `sgemm_tn_unpacked` at
//! training-relevant shapes. The packed kernel's results are bit-exact
//! vs the baseline (asserted here on every shape), so the speedup is
//! free of numerical caveats.

use std::time::Instant;

use serde::Serialize;
use zero_tensor::ops::matmul::{sgemm_tn, sgemm_tn_unpacked};

#[derive(Serialize)]
struct MatmulRow {
    m: usize,
    k: usize,
    n: usize,
    reps: usize,
    unpacked_secs: f64,
    packed_secs: f64,
    /// unpacked / packed; > 1 means the panel pack wins.
    speedup: f64,
    gflops_packed: f64,
}

fn fill(len: usize, scale: f32) -> Vec<f32> {
    (0..len).map(|i| ((i * 7 % 13) as f32 - 6.0) * scale).collect()
}

fn time_reps(reps: usize, mut f: impl FnMut()) -> f64 {
    // Best of 3 trials: min wall-clock is the scheduler-noise-free
    // estimate on a shared host.
    (0..3)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..reps {
                f();
            }
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // (m, k, n): dW[m×n] = X^T[k×m]^T · dY[k×n] with k = batch·seq rows.
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(64, 128, 64)]
    } else {
        &[(64, 128, 64), (64, 512, 256), (256, 1024, 256), (512, 2048, 512)]
    };
    let mut rows = Vec::new();
    for &(m, k, n) in shapes {
        let a = fill(k * m, 0.02);
        let b = fill(k * n, 0.03);
        let mut c_packed = vec![0.0f32; m * n];
        let mut c_unpacked = vec![0.0f32; m * n];
        // Correctness gate before timing: bit-exact, not approximate.
        sgemm_tn(&a, &b, &mut c_packed, m, k, n);
        sgemm_tn_unpacked(&a, &b, &mut c_unpacked, m, k, n);
        for (x, y) in c_packed.iter().zip(&c_unpacked) {
            assert_eq!(x.to_bits(), y.to_bits(), "packed kernel diverged at ({m},{k},{n})");
        }
        let reps = if smoke { 3 } else { (1 << 27) / (2 * m * k * n) + 3 };
        // Warm both paths once, then time.
        let unpacked_secs =
            time_reps(reps, || sgemm_tn_unpacked(&a, &b, &mut c_unpacked, m, k, n));
        let packed_secs = time_reps(reps, || sgemm_tn(&a, &b, &mut c_packed, m, k, n));
        let flops = (2 * m * k * n * reps) as f64;
        rows.push(MatmulRow {
            m,
            k,
            n,
            reps,
            unpacked_secs,
            packed_secs,
            speedup: unpacked_secs / packed_secs,
            gflops_packed: flops / packed_secs / 1e9,
        });
    }
    for r in &rows {
        println!(
            "tn {:>4}x{:>4}x{:>4}  unpacked {:>8.3} ms  packed {:>8.3} ms  speedup {:.2}×  {:.2} GFLOP/s",
            r.m,
            r.k,
            r.n,
            r.unpacked_secs * 1e3 / r.reps as f64,
            r.packed_secs * 1e3 / r.reps as f64,
            r.speedup,
            r.gflops_packed
        );
    }
    if smoke {
        println!("smoke run complete (results file untouched)");
        return;
    }
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("manifest dir has a grandparent");
    let path = root.join("results/BENCH_matmul.json");
    let json = serde_json::to_string_pretty(&rows).expect("serialize rows");
    std::fs::write(&path, json + "\n").expect("write BENCH_matmul.json");
    println!("wrote {}", path.display());
}
