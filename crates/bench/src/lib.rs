//! # zero-bench
//!
//! Criterion benchmark harness for the ZeRO reproduction. The library
//! itself only hosts shared fixtures; the benches live under `benches/`:
//!
//! * `collectives` — ring all-reduce / reduce-scatter / all-gather
//!   latency scaling (the §7 primitives).
//! * `kernels` — GEMM/layernorm/softmax/attention substrate.
//! * `train_step` — full engine step per ZeRO stage.
//! * `paper_tables` — one target per paper table/figure, timing the
//!   regeneration drivers.
//! * `ablations` — bucket-size (CB), checkpointing, and P_a ablations.

use zero_comm::Grid;
use zero_core::{TrainSetup, ZeroConfig, ZeroStage};
use zero_model::ModelConfig;

/// The standard small benchmark model (large enough that per-step work
/// dominates harness overhead, small enough for quick iterations).
pub fn bench_model() -> ModelConfig {
    ModelConfig {
        vocab: 64,
        seq: 16,
        hidden: 64,
        layers: 2,
        heads: 4,
    }
}

/// A ready-to-run setup for a stage at a DP degree.
pub fn bench_setup(stage: ZeroStage, dp: usize) -> TrainSetup {
    TrainSetup {
        model: bench_model(),
        zero: ZeroConfig {
            stage,
            fp16: true,
            initial_loss_scale: 1.0,
            ..ZeroConfig::default()
        },
        grid: Grid::new(dp, 1),
        global_batch: 8,
        seed: 1,
    }
}
