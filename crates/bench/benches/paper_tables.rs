//! One bench target per paper table/figure: times the regeneration
//! drivers (the analytical ones are microseconds; `fig5` — the real
//! training run — is exercised with a 4-step budget here and in full by
//! `cargo run --release -p zero-sim --bin fig5`).

use criterion::{criterion_group, criterion_main, Criterion};
use zero_comm::Grid;
use zero_core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero_model::ModelConfig;
use zero_sim::experiments;

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1", |b| b.iter(experiments::table1));
    c.bench_function("table2", |b| b.iter(experiments::table2));
}

fn bench_figures(c: &mut Criterion) {
    c.bench_function("fig1", |b| b.iter(experiments::fig1));
    c.bench_function("fig2", |b| b.iter(experiments::fig2));
    c.bench_function("fig3", |b| b.iter(experiments::fig3));
    c.bench_function("fig4", |b| b.iter(experiments::fig4));
    c.bench_function("fig6", |b| b.iter(experiments::fig6));
    c.bench_function("fig7", |b| b.iter(experiments::fig7));
    c.bench_function("fig8", |b| b.iter(experiments::fig8));
}

fn bench_fig5_training(c: &mut Criterion) {
    // A 4-step slice of the Figure 5 substitute's real training loop.
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("train_4steps_small_model", |b| {
        let setup = TrainSetup {
            model: ModelConfig {
                vocab: 64,
                seq: 32,
                hidden: 48,
                layers: 2,
                heads: 4,
            },
            zero: ZeroConfig {
                stage: ZeroStage::Two,
                fp16: true,
                initial_loss_scale: 128.0,
                ..ZeroConfig::default()
            },
            grid: Grid::new(2, 1),
            global_batch: 8,
            seed: 11,
        };
        b.iter(|| run_training(&setup, 4, 0).losses[3]);
    });
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures, bench_fig5_training);
criterion_main!(benches);
