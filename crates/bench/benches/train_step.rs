//! Full-engine training-step benchmarks: per ZeRO stage and per DP degree.
//!
//! Wall-clock here measures the *functional* engine (CPU threads), not the
//! paper's GPUs; the interesting comparisons are relative — stage overheads
//! and the cost of stage 3's extra parameter gathers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zero_bench::bench_setup;
use zero_core::{run_training, ZeroStage};

fn bench_stages(c: &mut Criterion) {
    let mut g = c.benchmark_group("train_step_by_stage");
    g.sample_size(10);
    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        g.bench_with_input(
            BenchmarkId::from_parameter(stage.name()),
            &stage,
            |b, &stage| {
                let setup = bench_setup(stage, 4);
                b.iter(|| run_training(&setup, 2, 0).losses[1]);
            },
        );
    }
    g.finish();
}

fn bench_dp_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("train_step_by_dp");
    g.sample_size(10);
    for dp in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(dp), &dp, |b, &dp| {
            let mut setup = bench_setup(ZeroStage::Two, dp);
            setup.global_batch = 8; // fixed global batch: strong scaling
            b.iter(|| run_training(&setup, 2, 0).losses[1]);
        });
    }
    g.finish();
}

fn bench_mp(c: &mut Criterion) {
    let mut g = c.benchmark_group("train_step_mp");
    g.sample_size(10);
    for (dp, mp) in [(4usize, 1usize), (2, 2), (1, 4)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("dp{dp}xmp{mp}")),
            &(dp, mp),
            |b, &(dp, mp)| {
                let mut setup = bench_setup(ZeroStage::Two, dp);
                setup.grid = zero_comm::Grid::new(dp, mp);
                b.iter(|| run_training(&setup, 2, 0).losses[1]);
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_stages, bench_dp_scaling, bench_mp);
criterion_main!(benches);
