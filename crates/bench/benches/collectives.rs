//! Ring-collective microbenchmarks: the §7 primitives.
//!
//! Verifies the performance premise behind the paper's volume analysis:
//! all-reduce ≈ reduce-scatter + all-gather in cost, and per-rank work
//! scales with buffer size, not rank count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zero_comm::{launch, Precision, ReduceOp};

fn bench_all_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("all_reduce");
    for &len in &[1usize << 10, 1 << 14, 1 << 18] {
        g.throughput(Throughput::Bytes((len * 4) as u64));
        g.bench_with_input(BenchmarkId::new("ranks4", len), &len, |b, &len| {
            b.iter(|| {
                launch(4, |mut comm| {
                    let mut buf = vec![comm.rank() as f32; len];
                    comm.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp32).unwrap();
                    buf[0]
                })
            });
        });
    }
    g.finish();
}

fn bench_reduce_scatter_plus_all_gather(c: &mut Criterion) {
    // §7.1: an all-reduce is a reduce-scatter followed by an all-gather;
    // the pair should cost about the same as the fused all-reduce.
    let len = 1usize << 14;
    let mut g = c.benchmark_group("rs_plus_ag_vs_allreduce");
    g.throughput(Throughput::Bytes((len * 4) as u64));
    g.bench_function("rs_then_ag", |b| {
        b.iter(|| {
            launch(4, |mut comm| {
                let input = vec![comm.rank() as f32; len];
                let shard_len = zero_comm::chunk_range(len, 4, comm.rank()).len();
                let mut shard = vec![0.0; shard_len];
                comm.reduce_scatter(&input, &mut shard, ReduceOp::Sum, Precision::Fp32).unwrap();
                let mut out = vec![0.0; len];
                comm.all_gather(&shard, &mut out, Precision::Fp32).unwrap();
                out[0]
            })
        });
    });
    g.bench_function("fused_allreduce", |b| {
        b.iter(|| {
            launch(4, |mut comm| {
                let mut buf = vec![comm.rank() as f32; len];
                comm.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp32).unwrap();
                buf[0]
            })
        });
    });
    g.finish();
}

fn bench_rank_scaling(c: &mut Criterion) {
    let len = 1usize << 14;
    let mut g = c.benchmark_group("all_reduce_rank_scaling");
    for &n in &[2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                launch(n, |mut comm| {
                    let mut buf = vec![1.0_f32; len];
                    comm.all_reduce(&mut buf, ReduceOp::Sum, Precision::Fp32).unwrap();
                    buf[0]
                })
            });
        });
    }
    g.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let len = 1usize << 14;
    c.bench_function("broadcast_4ranks_64KB", |b| {
        b.iter(|| {
            launch(4, |mut comm| {
                let mut buf = vec![comm.rank() as f32; len];
                comm.broadcast(0, &mut buf, Precision::Fp32).unwrap();
                buf[0]
            })
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all_reduce,
        bench_reduce_scatter_plus_all_gather,
        bench_rank_scaling,
        bench_broadcast
);
criterion_main!(benches);
