//! Compute-substrate microbenchmarks: the kernels whose GEMM efficiency
//! curve the throughput model (`zero-sim::PerfModel`) parameterizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use zero_model::{BlockDims, Layout, ModelConfig};
use zero_tensor::init::normal_init;
use zero_tensor::ops::matmul::{sgemm, sgemm_nt};
use zero_tensor::ops::norm::layernorm_forward;
use zero_tensor::ops::softmax::causal_softmax_forward;

fn bench_sgemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("sgemm");
    for &n in &[64usize, 128, 256] {
        let flops = 2 * n * n * n;
        g.throughput(Throughput::Elements(flops as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut a = vec![0.0; n * n];
            let mut bb = vec![0.0; n * n];
            normal_init(&mut a, 1.0, 1);
            normal_init(&mut bb, 1.0, 2);
            let mut cc = vec![0.0; n * n];
            b.iter(|| sgemm(&a, &bb, &mut cc, n, n, n));
        });
    }
    g.finish();
}

fn bench_sgemm_nt(c: &mut Criterion) {
    // The y = x·W^T layout used by every linear layer.
    let (t, h, o) = (256usize, 128usize, 512usize);
    let mut x = vec![0.0; t * h];
    let mut w = vec![0.0; o * h];
    normal_init(&mut x, 1.0, 1);
    normal_init(&mut w, 0.02, 2);
    let mut y = vec![0.0; t * o];
    c.bench_function("sgemm_nt_linear_256x128x512", |b| {
        b.iter(|| sgemm_nt(&x, &w, &mut y, t, h, o));
    });
}

fn bench_layernorm(c: &mut Criterion) {
    let (rows, dim) = (512usize, 256usize);
    let mut x = vec![0.0; rows * dim];
    normal_init(&mut x, 1.0, 3);
    let gamma = vec![1.0; dim];
    let beta = vec![0.0; dim];
    let mut y = vec![0.0; rows * dim];
    let mut mean = vec![0.0; rows];
    let mut rstd = vec![0.0; rows];
    c.bench_function("layernorm_512x256", |b| {
        b.iter(|| {
            layernorm_forward(&x, &gamma, &beta, &mut y, &mut mean, &mut rstd, rows, dim, 1e-5)
        });
    });
}

fn bench_causal_softmax(c: &mut Criterion) {
    let (maps, seq) = (16usize, 64usize);
    let mut x = vec![0.0; maps * seq * seq];
    normal_init(&mut x, 1.0, 4);
    let mut y = vec![0.0; maps * seq * seq];
    c.bench_function("causal_softmax_16maps_64seq", |b| {
        b.iter(|| causal_softmax_forward(&x, &mut y, maps, seq));
    });
}

fn bench_transformer_block(c: &mut Criterion) {
    let cfg = ModelConfig {
        vocab: 64,
        seq: 32,
        hidden: 128,
        layers: 1,
        heads: 8,
    };
    let layout = Layout::build(&cfg);
    let mut params = vec![0.0; cfg.block_params()];
    normal_init(&mut params, 0.02, 5);
    let off = layout.block_offsets(0);
    for v in &mut params[off.ln1_g.clone()] {
        *v = 1.0;
    }
    for v in &mut params[off.ln2_g.clone()] {
        *v = 1.0;
    }
    let dims = BlockDims {
        hidden: cfg.hidden,
        local_heads: cfg.heads,
        head_dim: cfg.head_dim(),
        ffn: 4 * cfg.hidden,
        batch: 4,
        seq: cfg.seq,
    };
    let t = dims.rows();
    let mut x = vec![0.0; t * cfg.hidden];
    normal_init(&mut x, 1.0, 6);
    let mut y = vec![0.0; t * cfg.hidden];
    let mut g = c.benchmark_group("transformer_block");
    g.bench_function("forward", |b| {
        b.iter(|| {
            zero_model::block::block_forward(&dims, &params, &off, &x, &mut y, &mut |_| {})
        });
    });
    g.bench_function("forward_backward", |b| {
        let dy = x.clone();
        let mut dx = vec![0.0; t * cfg.hidden];
        let mut grads = vec![0.0; params.len()];
        b.iter(|| {
            let saved =
                zero_model::block::block_forward(&dims, &params, &off, &x, &mut y, &mut |_| {});
            zero_model::block::block_backward(
                &dims, &params, &off, &saved, &dy, &mut dx, &mut grads, &mut |_| {},
            );
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sgemm, bench_sgemm_nt, bench_layernorm, bench_causal_softmax, bench_transformer_block
);
criterion_main!(benches);
