//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! CB bucket size, activation checkpointing, P_a, and the MD arena.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use zero_bench::bench_setup;
use zero_comm::Grid;
use zero_core::{run_training, ZeroStage};

fn bench_bucket_size(c: &mut Criterion) {
    // §6.2: the constant buffer must be "large enough to remain
    // efficient" — small buckets mean many small collectives.
    let mut g = c.benchmark_group("cb_bucket_size");
    g.sample_size(10);
    for bucket in [256usize, 4096, 1 << 16] {
        g.bench_with_input(BenchmarkId::from_parameter(bucket), &bucket, |b, &bucket| {
            let mut setup = bench_setup(ZeroStage::Two, 4);
            setup.zero.bucket_elems = bucket;
            b.iter(|| run_training(&setup, 2, 0).losses[1]);
        });
    }
    g.finish();
}

fn bench_checkpointing(c: &mut Criterion) {
    // §3.2: checkpointing trades ~33% recompute for memory.
    let mut g = c.benchmark_group("activation_checkpointing");
    g.sample_size(10);
    for ckpt in [false, true] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if ckpt { "recompute" } else { "stash" }),
            &ckpt,
            |b, &ckpt| {
                let mut setup = bench_setup(ZeroStage::Two, 2);
                setup.zero.checkpoint_activations = ckpt;
                b.iter(|| run_training(&setup, 2, 0).losses[1]);
            },
        );
    }
    g.finish();
}

fn bench_pa(c: &mut Criterion) {
    // §6.1: P_a adds one MP all-gather per block per step.
    let mut g = c.benchmark_group("partitioned_activations");
    g.sample_size(10);
    for pa in [false, true] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if pa { "pa" } else { "replicated" }),
            &pa,
            |b, &pa| {
                let mut setup = bench_setup(ZeroStage::Two, 2);
                setup.grid = Grid::new(2, 2);
                setup.zero.checkpoint_activations = true;
                setup.zero.partition_activations = pa;
                b.iter(|| run_training(&setup, 2, 0).losses[1]);
            },
        );
    }
    g.finish();
}

fn bench_arena(c: &mut Criterion) {
    // §6.3: the MD arena avoids allocator churn for checkpoints.
    let mut g = c.benchmark_group("md_arena");
    g.sample_size(10);
    for arena in [false, true] {
        g.bench_with_input(
            BenchmarkId::from_parameter(if arena { "arena" } else { "malloc" }),
            &arena,
            |b, &arena| {
                let mut setup = bench_setup(ZeroStage::Two, 2);
                setup.zero.checkpoint_activations = true;
                setup.zero.use_arena = arena;
                b.iter(|| run_training(&setup, 2, 0).losses[1]);
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_bucket_size, bench_checkpointing, bench_pa, bench_arena);
criterion_main!(benches);
