//! Run-to-run determinism: identical seeds must give bit-identical
//! results — losses, parameters, memory, and traffic — across every
//! stage, even with fp16, dropout, and multi-threaded ring collectives
//! (the SPMD schedule fixes the reduction order).

use zero::comm::Grid;
use zero::core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero::model::ModelConfig;

fn setup(stage: ZeroStage) -> TrainSetup {
    TrainSetup {
        model: ModelConfig {
            vocab: 32,
            seq: 8,
            hidden: 16,
            layers: 2,
            heads: 2,
        },
        zero: ZeroConfig {
            stage,
            fp16: true,
            initial_loss_scale: 32.0,
            dropout: 0.1,
            ..ZeroConfig::default()
        },
        grid: Grid::new(4, 1),
        global_batch: 4,
        seed: 77,
    }
}

#[test]
fn identical_seeds_are_bit_identical() {
    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        let s = setup(stage);
        let a = run_training(&s, 4, 2);
        let b = run_training(&s, 4, 2);
        assert_eq!(a.losses, b.losses, "{stage:?}: losses");
        assert_eq!(a.val_losses, b.val_losses, "{stage:?}: val losses");
        assert_eq!(
            a.gather_master_mp1(),
            b.gather_master_mp1(),
            "{stage:?}: parameters"
        );
        for (x, y) in a.ranks.iter().zip(&b.ranks) {
            assert_eq!(x.peak_model_state_bytes, y.peak_model_state_bytes);
            assert_eq!(x.traffic, y.traffic, "{stage:?}: traffic");
        }
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_training(&setup(ZeroStage::Two), 3, 0);
    let mut s = setup(ZeroStage::Two);
    s.seed = 78;
    let b = run_training(&s, 3, 0);
    assert_ne!(a.losses, b.losses, "seed must matter");
}
