//! Strong Megatron-MP correctness: after training, each MP rank's
//! parameters must equal the *sharding of the single-process model's
//! parameters* — not merely produce the same loss. This pins down the
//! column/row-parallel backward passes and the replicated-field gradient
//! consistency (layernorms, row-parallel biases, embeddings, head).

use zero::comm::{launch, Grid};
use zero::core::{RankEngine, ZeroConfig, ZeroStage};
use zero::model::{init_full_params, shard_params, Gpt, ModelConfig, SyntheticCorpus};

fn model() -> ModelConfig {
    ModelConfig {
        vocab: 32,
        seq: 8,
        hidden: 16,
        layers: 2,
        heads: 4,
    }
}

/// Runs `steps` of single-process training and returns the full params.
fn single_reference(cfg: ModelConfig, steps: usize, global_batch: usize) -> Vec<f32> {
    let corpus = SyntheticCorpus::generate(cfg.vocab, 5000, 33);
    let corpus = &corpus;
    let out = launch(1, move |comm| {
        let gpt = Gpt::new(cfg);
        let params = init_full_params(&cfg, 19);
        let zcfg = ZeroConfig::fp32_exact(ZeroStage::Ddp);
        let mut engine = RankEngine::new(gpt, &params, zcfg, Grid::new(1, 1), comm);
        for step in 0..steps {
            let (ids, tg) = corpus.batch(step, global_batch, cfg.seq);
            engine.train_step(&ids, &tg, global_batch);
        }
        engine.master_params().to_vec()
    });
    out.into_iter().next().unwrap()
}

#[test]
fn mp_shards_equal_sharded_single_process_parameters() {
    let cfg = model();
    let steps = 3;
    let global_batch = 4;
    let reference = single_reference(cfg, steps, global_batch);

    // Pure MP (dp = 1, mp = 2): each rank's master covers its whole MP
    // shard (DP shard = everything at dp = 1).
    let corpus = SyntheticCorpus::generate(cfg.vocab, 5000, 33);
    let corpus = &corpus;
    let mp = 2;
    let shards = launch(mp, move |comm| {
        let gpt = Gpt::new_mp(cfg, mp);
        let full = init_full_params(&cfg, 19);
        let my = shard_params(&cfg, &full, mp, comm.rank());
        let zcfg = ZeroConfig::fp32_exact(ZeroStage::Ddp);
        let mut engine = RankEngine::new(gpt, &my, zcfg, Grid::new(1, mp), comm);
        for step in 0..steps {
            // MP ranks see identical data.
            let (ids, tg) = corpus.batch(step, global_batch, cfg.seq);
            engine.train_step(&ids, &tg, global_batch);
        }
        engine.master_params().to_vec()
    });

    for (rank, got) in shards.iter().enumerate() {
        let want = shard_params(&cfg, &reference, mp, rank);
        assert_eq!(got.len(), want.len(), "rank {rank} shard length");
        let mut worst = 0.0_f32;
        for (a, b) in got.iter().zip(&want) {
            worst = worst.max((a - b).abs());
        }
        assert!(
            worst < 2e-4,
            "rank {rank}: MP shard diverged from sharded reference by {worst}"
        );
    }
}

#[test]
fn replicated_fields_stay_identical_across_mp_ranks() {
    // Layernorms, row-parallel biases, embeddings and the head are
    // replicated under MP; after training they must remain bit-identical
    // across MP ranks (their gradients are computed redundantly but
    // deterministically from the same all-reduced activations).
    let cfg = model();
    let corpus = SyntheticCorpus::generate(cfg.vocab, 5000, 8);
    let corpus = &corpus;
    let mp = 2;
    let shards = launch(mp, move |comm| {
        let gpt = Gpt::new_mp(cfg, mp);
        let full = init_full_params(&cfg, 3);
        let my = shard_params(&cfg, &full, mp, comm.rank());
        let zcfg = ZeroConfig::fp32_exact(ZeroStage::Ddp);
        let mut engine = RankEngine::new(gpt, &my, zcfg, Grid::new(1, mp), comm);
        for step in 0..4 {
            let (ids, tg) = corpus.batch(step, 2, cfg.seq);
            engine.train_step(&ids, &tg, 2);
        }
        engine.master_params().to_vec()
    });

    let layout = zero::model::Layout::build_mp(&cfg, mp);
    for field in layout.fields() {
        if field.replicated_under_mp() {
            let a = &shards[0][field.range.clone()];
            let b = &shards[1][field.range.clone()];
            assert_eq!(a, b, "replicated field {} diverged across MP ranks", field.name);
        }
    }
    // And the sharded fields genuinely differ (they hold different heads).
    let qkv = layout.field_range("block0.w_qkv");
    assert_ne!(&shards[0][qkv.clone()], &shards[1][qkv]);
}
