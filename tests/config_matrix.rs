//! Combinatorial smoke matrix: every ZeRO stage × precision ×
//! checkpointing mode × activation partitioning × grid shape must train
//! two steps to a finite loss. Catches interaction bugs between features
//! that the focused tests exercise one at a time.

use zero::comm::Grid;
use zero::core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero::model::ModelConfig;

#[test]
fn every_supported_configuration_trains() {
    let model = ModelConfig {
        vocab: 32,
        seq: 8,
        hidden: 16,
        layers: 2,
        heads: 2,
    };
    let mut tried = 0;
    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        for fp16 in [false, true] {
            for (ckpt, interval) in [(false, 1usize), (true, 1), (true, 2)] {
                for (dp, mp, pa) in [(2usize, 1usize, false), (2, 2, false), (2, 2, true)] {
                    if pa && !ckpt {
                        continue; // invalid by construction
                    }
                    let setup = TrainSetup {
                        model,
                        zero: ZeroConfig {
                            stage,
                            fp16,
                            initial_loss_scale: if fp16 { 16.0 } else { 1.0 },
                            checkpoint_activations: ckpt,
                            checkpoint_interval: interval,
                            partition_activations: pa,
                            bucket_elems: 777,
                            ..ZeroConfig::default()
                        },
                        grid: Grid::new(dp, mp),
                        global_batch: 4,
                        seed: 5,
                    };
                    let report = run_training(&setup, 2, 0);
                    assert!(
                        report.losses.iter().all(|l| l.is_finite()),
                        "non-finite loss: {stage:?} fp16={fp16} ckpt={ckpt}/{interval} dp={dp} mp={mp} pa={pa}"
                    );
                    assert!(
                        report.skipped.iter().all(|&s| !s),
                        "unexpected overflow skip: {stage:?} fp16={fp16}"
                    );
                    tried += 1;
                }
            }
        }
    }
    assert!(tried >= 60, "matrix shrank unexpectedly: {tried} configs");
}

#[test]
fn dropout_and_accumulation_compose_with_every_stage() {
    let model = ModelConfig {
        vocab: 32,
        seq: 8,
        hidden: 16,
        layers: 2,
        heads: 2,
    };
    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        let setup = TrainSetup {
            model,
            zero: ZeroConfig {
                stage,
                fp16: true,
                initial_loss_scale: 16.0,
                dropout: 0.1,
                ..ZeroConfig::default()
            },
            grid: Grid::new(2, 1),
            global_batch: 4,
            seed: 6,
        };
        let report = run_training(&setup, 2, 0);
        assert!(report.losses.iter().all(|l| l.is_finite()), "{stage:?}");
    }
}
