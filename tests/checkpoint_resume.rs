//! Sharded checkpoint save/resume: training interrupted at step k and
//! resumed from disk must produce exactly the same trajectory as an
//! uninterrupted run — for every ZeRO stage, including the loss-scaler
//! and Adam-moment state.

use zero::comm::{launch, Grid};
use zero::core::{RankEngine, RankSnapshot, ZeroConfig, ZeroStage};
use zero::model::{init_full_params, Gpt, ModelConfig, SyntheticCorpus};

fn model() -> ModelConfig {
    ModelConfig {
        vocab: 32,
        seq: 8,
        hidden: 16,
        layers: 2,
        heads: 2,
    }
}

fn make_engine(cfg: ModelConfig, stage: ZeroStage, fp16: bool, comm: zero::comm::Communicator) -> RankEngine {
    let gpt = Gpt::new(cfg);
    let params = init_full_params(&cfg, 21);
    let zcfg = ZeroConfig {
        stage,
        fp16,
        initial_loss_scale: 64.0,
        ..ZeroConfig::default()
    };
    RankEngine::new(gpt, &params, zcfg, Grid::new(2, 1), comm)
}

/// Trains `total` steps, optionally snap/restoring at `interrupt`.
fn run(stage: ZeroStage, fp16: bool, total: usize, interrupt: Option<usize>, dir: &std::path::Path) -> Vec<Vec<f32>> {
    let cfg = model();
    let corpus = SyntheticCorpus::generate(cfg.vocab, 5000, 77);
    let corpus = &corpus;
    launch(2, move |comm| {
        let rank = comm.rank();
        let mut engine = make_engine(cfg, stage, fp16, comm);
        for step in 0..total {
            if interrupt == Some(step) {
                // Simulate a crash/restart: persist, rebuild from scratch,
                // reload.
                let snap = engine.save_snapshot();
                snap.save(dir).expect("save shard");
                let comm = engine.into_comm();
                engine = make_engine(cfg, stage, fp16, comm);
                let snap = RankSnapshot::load(dir, rank).expect("load shard");
                engine.restore_snapshot(&snap);
            }
            let (ids, targets) = corpus.rank_batch(step, 2, cfg.seq, 2, engine.dp_rank());
            engine.train_step(&ids, &targets, 1);
        }
        engine.master_params().to_vec()
    })
}

fn check_stage(stage: ZeroStage, fp16: bool) {
    let dir = std::env::temp_dir().join(format!(
        "zero-resume-{:?}-{}-{}",
        stage,
        fp16,
        std::process::id()
    ));
    let baseline = run(stage, fp16, 8, None, &dir);
    let resumed = run(stage, fp16, 8, Some(4), &dir);
    for (rank, (a, b)) in baseline.iter().zip(&resumed).enumerate() {
        assert_eq!(a, b, "rank {rank}: resume diverged under {stage:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_is_exact_for_ddp() {
    check_stage(ZeroStage::Ddp, false);
}

#[test]
fn resume_is_exact_for_stage1() {
    check_stage(ZeroStage::One, false);
}

#[test]
fn resume_is_exact_for_stage2_fp16() {
    check_stage(ZeroStage::Two, true);
}

#[test]
fn resume_is_exact_for_stage3_fp16() {
    check_stage(ZeroStage::Three, true);
}

#[test]
fn shards_tile_the_parameter_space() {
    let cfg = model();
    let dir = std::env::temp_dir().join(format!("zero-tile-{}", std::process::id()));
    let dir_ref = &dir;
    let corpus = SyntheticCorpus::generate(cfg.vocab, 5000, 1);
    let corpus = &corpus;
    launch(2, move |comm| {
        let mut engine = make_engine(cfg, ZeroStage::Two, true, comm);
        let (ids, targets) = corpus.rank_batch(0, 2, cfg.seq, 2, engine.dp_rank());
        engine.train_step(&ids, &targets, 1);
        engine.save_snapshot().save(dir_ref).expect("save");
    });
    let a = RankSnapshot::load(&dir, 0).unwrap();
    let b = RankSnapshot::load(&dir, 1).unwrap();
    assert_eq!(a.shard_start, 0);
    assert_eq!(a.shard_end, b.shard_start, "shards must tile");
    assert_eq!(b.shard_end as usize, cfg.total_params());
    assert_eq!(
        (a.master.len() + b.master.len()) as u64,
        b.shard_end,
        "together the shards hold exactly one copy of the state"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restore_rejects_wrong_rank() {
    let cfg = model();
    let dir = std::env::temp_dir().join(format!("zero-wrongrank-{}", std::process::id()));
    let dir_ref = &dir;
    launch(2, move |comm| {
        let engine = make_engine(cfg, ZeroStage::Two, true, comm);
        engine.save_snapshot().save(dir_ref).expect("save");
    });
    let caught = std::panic::catch_unwind(|| {
        launch(2, |comm| {
            let rank = comm.rank();
            let mut engine = make_engine(cfg, ZeroStage::Two, true, comm);
            // Deliberately load the OTHER rank's shard.
            let snap = RankSnapshot::load(dir_ref, 1 - rank).unwrap();
            engine.restore_snapshot(&snap);
        });
    });
    assert!(caught.is_err(), "cross-rank restore must be rejected");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn elastic_resume_on_a_different_dp_degree() {
    // Train 4 steps on 2 ranks, reshard the snapshots to 4 ranks, resume
    // 4 more steps — the parameter trajectory must match an uninterrupted
    // 2-rank run (fp32; the global batch and data order are identical, so
    // only ring reassociation differs).
    let cfg = model();
    let corpus = SyntheticCorpus::generate(cfg.vocab, 5000, 55);
    let corpus = &corpus;
    let global_batch = 4;

    // Uninterrupted baseline on 2 ranks.
    let baseline = launch(2, move |comm| {
        let gpt = Gpt::new(cfg);
        let params = init_full_params(&cfg, 15);
        let zcfg = ZeroConfig::fp32_exact(ZeroStage::Two);
        let mut engine = RankEngine::new(gpt, &params, zcfg, Grid::new(2, 1), comm);
        for step in 0..8 {
            let (ids, tg) = corpus.rank_batch(step, global_batch, cfg.seq, 2, engine.dp_rank());
            engine.train_step(&ids, &tg, global_batch / 2);
        }
        engine.master_params().to_vec()
    });
    let mut base_full = Vec::new();
    for m in &baseline {
        base_full.extend_from_slice(m);
    }

    // Phase 1: 2 ranks, 4 steps, snapshot.
    let snaps = launch(2, move |comm| {
        let gpt = Gpt::new(cfg);
        let params = init_full_params(&cfg, 15);
        let zcfg = ZeroConfig::fp32_exact(ZeroStage::Two);
        let mut engine = RankEngine::new(gpt, &params, zcfg, Grid::new(2, 1), comm);
        for step in 0..4 {
            let (ids, tg) = corpus.rank_batch(step, global_batch, cfg.seq, 2, engine.dp_rank());
            engine.train_step(&ids, &tg, global_batch / 2);
        }
        engine.save_snapshot()
    });
    // Reshard 2 → 4.
    let resharded = zero::core::reshard(&snaps, 4);
    let resharded = &resharded;

    // Phase 2: 4 ranks resume steps 4..8 with the same global batches.
    let resumed = launch(4, move |comm| {
        let rank = comm.rank();
        let gpt = Gpt::new(cfg);
        let params = init_full_params(&cfg, 15);
        let zcfg = ZeroConfig::fp32_exact(ZeroStage::Two);
        let mut engine = RankEngine::new(gpt, &params, zcfg, Grid::new(4, 1), comm);
        engine.restore_snapshot(&resharded[rank]);
        for step in 4..8 {
            let (ids, tg) = corpus.rank_batch(step, global_batch, cfg.seq, 4, engine.dp_rank());
            engine.train_step(&ids, &tg, global_batch / 4);
        }
        engine.master_params().to_vec()
    });
    let mut res_full = Vec::new();
    for m in &resumed {
        res_full.extend_from_slice(m);
    }

    assert_eq!(base_full.len(), res_full.len());
    let diff = base_full
        .iter()
        .zip(&res_full)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f32, f32::max);
    assert!(diff < 1e-4, "elastic resume diverged by {diff}");
}
