//! Measured communication volume vs. the paper's §7 analysis.
//!
//! Per rank per step, in *elements* (the paper's Ψ units):
//!
//! * baseline DP: one all-reduce of the gradients — 2Ψ·(N−1)/N;
//! * P_os and P_os+g: reduce-scatter of gradients (Ψ·(N−1)/N) plus
//!   all-gather of updated parameters (Ψ·(N−1)/N) — "exactly the same as
//!   the baseline DP" (§7.2.1);
//! * P_os+g+p: parameter all-gathers spread over forward and backward plus
//!   the gradient reduce-scatter — at most 3Ψ, i.e. "a maximum of 1.5x"
//!   (§7.2.2);
//! * P_a: one extra all-gather of one activation per block per step across
//!   MP — seq·hidden·batch elements per block (§8).
//!
//! These are byte counters recorded by the communicator, not estimates.

use zero::comm::{CollectiveKind, Grid};
use zero::core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero::model::ModelConfig;

fn model() -> ModelConfig {
    ModelConfig {
        vocab: 32,
        seq: 8,
        hidden: 16,
        layers: 2,
        heads: 2,
    }
}

/// Runs `steps` and returns per-step, per-rank traffic in BYTES by kind.
fn run(stage: ZeroStage, dp: usize, mp: usize, steps: usize) -> zero::core::TrainReport {
    let setup = TrainSetup {
        model: model(),
        zero: ZeroConfig {
            stage,
            fp16: true,
            initial_loss_scale: 1.0, // keep every step clean
            checkpoint_activations: false,
            bucket_elems: 1000, // several flushes per backward
            ..ZeroConfig::default()
        },
        grid: Grid::new(dp, mp),
        global_batch: 4,
        seed: 5,
    };
    run_training(&setup, steps, 0)
}

/// fp16 gradient/param collective bytes expected for `elems` moved through
/// a ring over `n` ranks: elems·(n−1)/n · 2 bytes — exact when chunk sizes
/// divide evenly, within a few elements otherwise.
fn ring_bytes(elems: usize, n: usize) -> f64 {
    2.0 * elems as f64 * (n - 1) as f64 / n as f64
}

/// Overflow-flag all-reduce overhead per step: 1 f32 element each way.
const FLAG_SLACK: f64 = 64.0;

#[test]
fn ddp_all_reduce_volume_is_2_psi() {
    let steps = 3;
    let n = 4;
    let psi = model().total_params();
    let report = run(ZeroStage::Ddp, n, 1, steps);
    for r in &report.ranks {
        let per_step = r.traffic.bytes(CollectiveKind::AllReduce) as f64 / steps as f64;
        let want = 2.0 * ring_bytes(psi, n); // reduce-scatter + all-gather halves
        let tol = 0.02 * want + FLAG_SLACK;
        assert!(
            (per_step - want).abs() < tol,
            "rank {}: {per_step} vs {want}",
            r.rank
        );
        assert_eq!(r.traffic.bytes(CollectiveKind::ReduceScatter), 0);
        assert_eq!(r.traffic.bytes(CollectiveKind::AllGather), 0);
    }
}

#[test]
fn stage2_volume_equals_baseline_dp() {
    // §7.2.1: Ψ reduce-scatter + Ψ all-gather = 2Ψ, same as DDP.
    let steps = 3;
    let n = 4;
    let psi = model().total_params();
    let report = run(ZeroStage::Two, n, 1, steps);
    for r in &report.ranks {
        let rs = r.traffic.bytes(CollectiveKind::ReduceScatter) as f64 / steps as f64;
        let ag = r.traffic.bytes(CollectiveKind::AllGather) as f64 / steps as f64;
        let want_each = ring_bytes(psi, n);
        assert!(
            (rs - want_each).abs() < 0.02 * want_each,
            "rank {} reduce-scatter: {rs} vs {want_each}",
            r.rank
        );
        assert!(
            (ag - want_each).abs() < 0.02 * want_each,
            "rank {} all-gather: {ag} vs {want_each}",
            r.rank
        );
        // No gradient all-reduce at all (only the tiny overflow flag).
        let ar = r.traffic.bytes(CollectiveKind::AllReduce) as f64 / steps as f64;
        assert!(ar <= FLAG_SLACK, "rank {}: unexpected all-reduce {ar}", r.rank);
    }
}

#[test]
fn stage1_volume_equals_baseline_dp() {
    let steps = 3;
    let n = 4;
    let psi = model().total_params();
    let report = run(ZeroStage::One, n, 1, steps);
    for r in &report.ranks {
        let total = (r.traffic.bytes(CollectiveKind::ReduceScatter)
            + r.traffic.bytes(CollectiveKind::AllGather)) as f64
            / steps as f64;
        let want = 2.0 * ring_bytes(psi, n);
        assert!(
            (total - want).abs() < 0.02 * want + FLAG_SLACK,
            "rank {}: {total} vs {want}",
            r.rank
        );
    }
}

#[test]
fn stage3_volume_is_at_most_1_5x_baseline() {
    let steps = 3;
    let n = 4;
    let cfg = model();
    let psi = cfg.total_params();
    let report = run(ZeroStage::Three, n, 1, steps);
    // Exact expectations from the ring schedules: an all-gather over
    // per-owner counts c makes rank i send Σc − c[(i+1) mod n] elements; a
    // reduce-scatter makes it send Σc − c[i]. Parameters are gathered for
    // every unit in forward and for each block again in backward (the head
    // is fused fwd+bwd; the embedding backward needs no parameters);
    // gradients are reduce-scattered over ranges tiling the flat space.
    let layout = zero::model::Layout::build(&cfg);
    let part = zero::core::Partitioner::new(psi, n);
    for r in &report.ranks {
        let idx = r.rank; // mp = 1: global rank == dp rank
        let mut ag_elems = 0usize;
        for (u, unit) in layout.units().iter().enumerate() {
            let counts = part.intersect_counts(&unit.range);
            let sent = unit.range.len() - counts[(idx + 1) % n];
            let passes = if u >= 1 && u <= cfg.layers { 2 } else { 1 };
            ag_elems += passes * sent;
        }
        let rs_elems = psi - part.shard_range(idx).len();
        let ag = r.traffic.bytes(CollectiveKind::AllGather) as f64 / steps as f64;
        let rs = r.traffic.bytes(CollectiveKind::ReduceScatter) as f64 / steps as f64;
        let want_ag = 2.0 * ag_elems as f64; // 2 bytes per fp16 element
        let want_rs = 2.0 * rs_elems as f64;
        assert_eq!(ag, want_ag, "rank {} gathers", r.rank);
        assert_eq!(rs, want_rs, "rank {} reduce-scatter", r.rank);
        // The headline claim: total ≤ 1.5 × baseline-DP volume.
        let baseline = 2.0 * ring_bytes(psi, n);
        let total = ag + rs;
        assert!(
            total <= 1.5 * baseline + FLAG_SLACK,
            "rank {}: {total} exceeds 1.5x baseline {baseline}",
            r.rank
        );
        assert!(
            total > baseline,
            "stage 3 must cost more than baseline (parameter traffic)"
        );
    }
}

#[test]
fn per_rank_bytes_match_plan_exactly_for_all_n() {
    // The declarative CommPlan the engine derives its collectives from is
    // also an analytic volume model. For every stage × N the measured
    // per-rank traffic must equal the plan's prediction EXACTLY — not
    // within tolerance. (The approximate §7 checks above remain as
    // independent, paper-level statements.)
    use zero::core::{CommPlan, StepShape};
    let steps = 2;
    let cfg = model();
    let layout = zero::model::Layout::build(&cfg);
    for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        for n in 2..=8 {
            let zcfg = ZeroConfig {
                stage,
                fp16: true,
                initial_loss_scale: 1.0,
                checkpoint_activations: false,
                bucket_elems: 1000,
                ..ZeroConfig::default()
            };
            let grid = Grid::new(n, 1);
            let setup = TrainSetup {
                model: cfg,
                zero: zcfg,
                grid,
                global_batch: n, // local batch 1 at every N
                seed: 5,
            };
            let report = run_training(&setup, steps, 0);
            let act_elems = cfg.seq * cfg.hidden;
            for r in &report.ranks {
                let mut want = [0u64; zero::comm::KIND_COUNT];
                for &skipped in &report.skipped {
                    let plan = CommPlan::train_step(
                        &layout,
                        &zcfg,
                        grid,
                        &StepShape { micro_batches: 1, act_elems, skipped },
                    );
                    for (i, b) in plan.rank_bytes(r.rank).iter().enumerate() {
                        want[i] += b;
                    }
                }
                for (i, kind) in zero::comm::ALL_KINDS.iter().enumerate() {
                    assert_eq!(
                        r.traffic.bytes(*kind),
                        want[i],
                        "{stage:?} n={n} rank {} {kind:?}",
                        r.rank
                    );
                }
            }
        }
    }
}

#[test]
fn pa_adds_one_all_gather_per_block_across_mp() {
    // Compare MP traffic with and without P_a at dp = 1 (no DP traffic),
    // checkpointing on in both.
    let run_pa = |pa: bool| {
        let setup = TrainSetup {
            model: ModelConfig { heads: 4, ..model() },
            zero: ZeroConfig {
                stage: ZeroStage::Two,
                fp16: true,
                initial_loss_scale: 1.0,
                checkpoint_activations: true,
                partition_activations: pa,
                ..ZeroConfig::default()
            },
            grid: Grid::new(1, 2),
            global_batch: 2,
            seed: 5,
        };
        run_training(&setup, 1, 0)
    };
    let plain = run_pa(false);
    let pa = run_pa(true);
    let cfg = model();
    let delta = pa.ranks[0].traffic.bytes(CollectiveKind::AllGather) as i64
        - plain.ranks[0].traffic.bytes(CollectiveKind::AllGather) as i64;
    // One all-gather per block of the checkpointed input activation:
    // batch·seq·hidden fp16 elements through a 2-ring: ·(n−1)/n·2 bytes.
    let ckpt_elems = 2 * cfg.seq * cfg.hidden; // local batch 2
    let want = (cfg.layers as f64) * ring_bytes(ckpt_elems, 2);
    assert!(
        (delta as f64 - want).abs() < 0.05 * want + 8.0,
        "P_a all-gather delta {delta} vs expected {want}"
    );
}

#[test]
fn mp_all_reduce_count_matches_megatron_structure() {
    // §8: 2 all-reduces per block forward, 2 per backward, 2 per
    // recomputation. Measure message counts over the MP group at dp = 1.
    let run_mp = |ckpt: bool| {
        let setup = TrainSetup {
            model: ModelConfig { heads: 4, ..model() },
            zero: ZeroConfig {
                stage: ZeroStage::Ddp,
                fp16: true,
                initial_loss_scale: 1.0,
                checkpoint_activations: ckpt,
                ..ZeroConfig::default()
            },
            grid: Grid::new(1, 2),
            global_batch: 2,
            seed: 5,
        };
        run_training(&setup, 1, 0)
    };
    let cfg = model();
    let no_ckpt = run_mp(false);
    let with_ckpt = run_mp(true);
    // Each 2-rank ring all-reduce sends 2 messages per rank; plus the
    // overflow-flag all-reduce and (DDP) chunked gradient all-reduces.
    // Count instead via BYTES of activation-sized all-reduces: each block
    // pass moves 4 per fwd+bwd without ckpt, 6 with ckpt (§8).
    let act_bytes = |r: &zero::core::TrainReport| r.ranks[0].traffic.bytes(CollectiveKind::AllReduce);
    let t = 2 * cfg.seq * cfg.hidden; // activation elements (batch 2)
    let per_ar = 2.0 * ring_bytes(t, 2); // all-reduce = reduce-scatter + all-gather
    let delta = act_bytes(&with_ckpt) as f64 - act_bytes(&no_ckpt) as f64;
    let want = cfg.layers as f64 * 2.0 * per_ar; // 2 extra all-reduces per block
    assert!(
        (delta - want).abs() < 0.05 * want + 16.0,
        "recompute all-reduce delta {delta} vs {want}"
    );
}
