//! Memory-tier offload must be *invisible* except in residency and
//! modeled time:
//!
//! * losses, validation losses, and master parameters bitwise identical
//!   to the unconstrained run across stages 1–3 × N × sync/overlap —
//!   offload moves exact copies, never values;
//! * the collective schedule untouched: per-rank traffic still exactly
//!   equals the tier-off plan's analytic volumes;
//! * every byte crossing the tier metered and equal to the plan's
//!   per-rank tier stream, summed over executed steps;
//! * the device budget a completed run proves is genuinely below what
//!   the unconstrained run needed.

use zero::comm::{Grid, KIND_COUNT};
use zero::core::{
    run_training, CommPlan, StepShape, TierConfig, TrainSetup, ZeroConfig, ZeroStage,
};
use zero::model::{Layout, ModelConfig};

const STEPS: usize = 3;

fn model() -> ModelConfig {
    ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 }
}

fn setup(stage: ZeroStage, dp: usize, overlap: bool, tier: TierConfig) -> TrainSetup {
    TrainSetup {
        model: model(),
        zero: ZeroConfig {
            stage,
            fp16: true,
            initial_loss_scale: 1.0,
            checkpoint_activations: false,
            bucket_elems: 1000, // several bucket flushes per backward
            overlap,
            tier,
            ..ZeroConfig::default()
        },
        grid: Grid::new(dp, 1),
        global_batch: 4,
        seed: 77,
    }
}

#[test]
fn offloaded_losses_bitwise_match_unconstrained_for_all_stages() {
    for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        for dp in [2usize, 4] {
            for overlap in [false, true] {
                // eval_every exercises the eval pass's fetch path too.
                let off = run_training(
                    &setup(stage, dp, overlap, TierConfig::budgeted(64 << 20)),
                    STEPS,
                    2,
                );
                let base =
                    run_training(&setup(stage, dp, overlap, TierConfig::off()), STEPS, 2);
                for (i, (a, b)) in base.losses.iter().zip(&off.losses).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{stage:?} dp={dp} overlap={overlap} step {i}: \
                         unconstrained {a} != offloaded {b}"
                    );
                }
                assert_eq!(base.skipped, off.skipped, "{stage:?} dp={dp}");
                for (a, b) in base.val_losses.iter().zip(&off.val_losses) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{stage:?} dp={dp} overlap={overlap}: eval loss drifted"
                    );
                }
                for (rb, ro) in base.ranks.iter().zip(&off.ranks) {
                    assert_eq!(
                        rb.master, ro.master,
                        "{stage:?} dp={dp} overlap={overlap} rank {}: master drifted",
                        rb.rank
                    );
                    assert!(
                        ro.tier.total_bytes() > 0,
                        "{stage:?} dp={dp} rank {}: offload must move tier bytes",
                        rb.rank
                    );
                }
            }
        }
    }
}

#[test]
fn offload_leaves_the_collective_schedule_untouched() {
    // The static core of the bitwise-loss guarantee: the offloaded run's
    // per-rank collective traffic equals the TIER-OFF plan's analytic
    // volume exactly — the tier stream rides alongside the collectives
    // without adding, dropping, or resizing a single message.
    let cfg = model();
    let layout = Layout::build(&cfg);
    for stage in [ZeroStage::Two, ZeroStage::Three] {
        for overlap in [false, true] {
            let s = setup(stage, 2, overlap, TierConfig::budgeted(64 << 20));
            let report = run_training(&s, 2, 0);
            let base_zero = ZeroConfig { tier: TierConfig::off(), ..s.zero };
            let act_elems = cfg.seq * cfg.hidden;
            for r in &report.ranks {
                let mut want = [0u64; KIND_COUNT];
                for &skipped in &report.skipped {
                    let plan = CommPlan::train_step(
                        &layout,
                        &base_zero,
                        s.grid,
                        &StepShape { micro_batches: 1, act_elems, skipped },
                    );
                    for (acc, b) in want.iter_mut().zip(plan.rank_bytes(r.rank)) {
                        *acc += b;
                    }
                }
                for (i, kind) in zero::comm::ALL_KINDS.iter().enumerate() {
                    assert_eq!(
                        r.traffic.bytes(*kind),
                        want[i],
                        "{stage:?} overlap={overlap} rank {} {kind:?} bytes",
                        r.rank
                    );
                }
            }
        }
    }
}

#[test]
fn metered_tier_bytes_reconcile_with_plan_volumes_exactly() {
    let cfg = model();
    let layout = Layout::build(&cfg);
    for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        for dp in [2usize, 4] {
            for overlap in [false, true] {
                let s = setup(stage, dp, overlap, TierConfig::budgeted(64 << 20));
                let report = run_training(&s, 2, 0);
                let act_elems = cfg.seq * cfg.hidden;
                for r in &report.ranks {
                    let (mut fetch, mut spill) = (0u64, 0u64);
                    let mut ops = 0u64;
                    for &skipped in &report.skipped {
                        let plan = CommPlan::train_step(
                            &layout,
                            &s.zero,
                            s.grid,
                            &StepShape { micro_batches: 1, act_elems, skipped },
                        );
                        let (f, sp) = plan.rank_tier_bytes(r.rank);
                        fetch += f;
                        spill += sp;
                        ops += plan.tier_ops().len() as u64;
                    }
                    assert_eq!(
                        r.tier.fetch_bytes, fetch,
                        "{stage:?} dp={dp} overlap={overlap} rank {}: fetch bytes",
                        r.rank
                    );
                    assert_eq!(
                        r.tier.spill_bytes, spill,
                        "{stage:?} dp={dp} overlap={overlap} rank {}: spill bytes",
                        r.rank
                    );
                    assert_eq!(
                        r.tier.fetch_ops + r.tier.spill_ops,
                        ops,
                        "{stage:?} dp={dp} overlap={overlap} rank {}: tier op count",
                        r.rank
                    );
                }
            }
        }
    }
}

#[test]
fn training_proceeds_beyond_the_device_budget() {
    // The acceptance bar, as a test: a stage-3 config whose unconstrained
    // peak exceeds the budget trains to completion under it — proved by
    // the armed tracker — with bitwise-identical losses.
    let base = run_training(&setup(ZeroStage::Three, 2, true, TierConfig::off()), STEPS, 0);
    let unconstrained_peak =
        base.ranks.iter().map(|r| r.peak_device_bytes).max().unwrap();
    let probe = run_training(
        &setup(ZeroStage::Three, 2, true, TierConfig::budgeted(u64::MAX)),
        STEPS,
        0,
    );
    let offloaded_peak =
        probe.ranks.iter().map(|r| r.peak_device_bytes).max().unwrap();
    assert!(offloaded_peak < unconstrained_peak);
    let budget = (offloaded_peak + unconstrained_peak) / 2;
    let proven = run_training(
        &setup(ZeroStage::Three, 2, true, TierConfig::budgeted(budget)),
        STEPS,
        0,
    );
    assert!(
        unconstrained_peak > budget,
        "budget {budget} must sit below the unconstrained peak {unconstrained_peak}"
    );
    for r in &proven.ranks {
        assert!(r.peak_device_bytes <= budget, "rank {}: budget violated", r.rank);
    }
    for (a, b) in base.losses.iter().zip(&proven.losses) {
        assert_eq!(a.to_bits(), b.to_bits(), "budget must not perturb the loss");
    }
}

#[test]
fn throttled_tier_link_accumulates_modeled_time() {
    // A bandwidth/latency-throttled link must charge modeled time equal
    // to the affine law over the metered bytes — and the engine's clock
    // must agree with the store's.
    let tier = TierConfig {
        host_bw: 1 << 30,
        host_lat: std::time::Duration::from_micros(5),
        ..TierConfig::budgeted(64 << 20)
    };
    let report = run_training(&setup(ZeroStage::Three, 2, false, tier), 2, 0);
    for r in &report.ranks {
        let crossings = (r.tier.fetch_ops + r.tier.spill_ops) as u32;
        assert!(crossings > 0);
        let floor = (tier.host_lat * crossings).as_secs_f64();
        let t = r.tier_time.as_secs_f64();
        assert!(
            t >= floor,
            "rank {}: modeled {t}s below latency floor {floor}s",
            r.rank
        );
        let ceil = floor + r.tier.total_bytes() as f64 / (1u64 << 30) as f64 + 1e-6;
        assert!(t <= ceil, "rank {}: modeled {t}s above ceiling {ceil}s", r.rank);
    }
}
