//! End-to-end training on real text through `ByteCorpus` +
//! `run_training_on` — the user-facing data path of the `zero-train`
//! CLI's `--text` mode.

use zero::comm::Grid;
use zero::core::{run_training_on, TrainSetup, ZeroConfig, ZeroStage};
use zero::model::{ByteCorpus, ModelConfig};

#[test]
fn byte_level_training_learns_text_structure() {
    let text = "the quick brown fox jumps over the lazy dog. ".repeat(120);
    let corpus = ByteCorpus::from_text(&text);
    let setup = TrainSetup {
        model: ModelConfig {
            vocab: 256,
            seq: 16,
            hidden: 32,
            layers: 2,
            heads: 4,
        },
        zero: ZeroConfig {
            stage: ZeroStage::Two,
            fp16: false,
            initial_loss_scale: 1.0,
            ..ZeroConfig::default()
        },
        grid: Grid::new(2, 1),
        global_batch: 8,
        seed: 3,
    };
    let report = run_training_on(&setup, 60, 0, corpus.tokens());
    let first: f32 = report.losses[..5].iter().sum::<f32>() / 5.0;
    let last: f32 = report.losses[55..].iter().sum::<f32>() / 5.0;
    // Highly repetitive text: the loss keeps falling.
    assert!(
        last < 0.7 * first,
        "text loss should fall: {first} -> {last}"
    );
}

#[test]
fn external_stream_equals_synthetic_path_for_same_tokens() {
    // run_training and run_training_on must be the same machinery.
    let setup = TrainSetup {
        model: ModelConfig {
            vocab: 32,
            seq: 8,
            hidden: 16,
            layers: 2,
            heads: 2,
        },
        zero: ZeroConfig::fp32_exact(ZeroStage::Two),
        grid: Grid::new(2, 1),
        global_batch: 4,
        seed: 9,
    };
    let a = zero::core::run_training(&setup, 3, 0);
    let tokens = zero::model::SyntheticCorpus::generate(
        setup.model.vocab,
        (setup.global_batch * (setup.model.seq + 1) * 5).max(10_000),
        setup.seed ^ 0x5EED,
    );
    let b = run_training_on(&setup, 3, 0, tokens.tokens());
    assert_eq!(a.losses, b.losses, "the two entry points must agree");
}

#[test]
#[should_panic(expected = "exceeds the model vocabulary")]
fn oversized_tokens_rejected() {
    let setup = TrainSetup {
        model: ModelConfig {
            vocab: 16,
            seq: 8,
            hidden: 16,
            layers: 1,
            heads: 2,
        },
        zero: ZeroConfig::default(),
        grid: Grid::new(1, 1),
        global_batch: 2,
        seed: 1,
    };
    let tokens = vec![99u32; 1000]; // out of vocab
    let _ = run_training_on(&setup, 1, 0, &tokens);
}
