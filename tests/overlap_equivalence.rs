//! Overlap-centric execution must be *invisible* except in wall-clock:
//!
//! * losses and master parameters bitwise identical to synchronous
//!   execution across every stage (the waits move, the arithmetic and its
//!   order do not);
//! * per-rank traffic still exactly equal to the declarative CommPlan's
//!   analytic volumes (bytes AND message counts, per collective kind);
//! * a rank crashing while async ops are in flight surfaces as a typed
//!   error — no deadlock — and the supervisor still recovers.

use std::time::Duration;

use zero::comm::{CollectiveKind, FaultPlan, Grid, KIND_COUNT};
use zero::core::{
    run_supervised, run_training, CommPlan, StepShape, SupervisorConfig, TrainSetup, ZeroConfig,
    ZeroStage,
};
use zero::model::{Layout, ModelConfig};

const STEPS: usize = 3;

fn model() -> ModelConfig {
    ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 }
}

fn setup(stage: ZeroStage, dp: usize, overlap: bool) -> TrainSetup {
    TrainSetup {
        model: model(),
        zero: ZeroConfig {
            stage,
            fp16: true,
            initial_loss_scale: 1.0,
            checkpoint_activations: false,
            bucket_elems: 1000, // several bucket flushes per backward
            overlap,
            ..ZeroConfig::default()
        },
        grid: Grid::new(dp, 1),
        global_batch: 4,
        seed: 77,
    }
}

#[test]
fn overlapped_losses_bitwise_match_sync_for_all_stages() {
    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        for dp in [2usize, 4] {
            // eval_every exercises the prefetch path of the eval pass too.
            let sync = run_training(&setup(stage, dp, false), STEPS, 2);
            let over = run_training(&setup(stage, dp, true), STEPS, 2);
            for (i, (a, b)) in sync.losses.iter().zip(&over.losses).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{stage:?} dp={dp} step {i}: sync {a} != overlapped {b}"
                );
            }
            for (a, b) in sync.val_losses.iter().zip(&over.val_losses) {
                assert_eq!(a.to_bits(), b.to_bits(), "{stage:?} dp={dp}: eval loss drifted");
            }
            for (rs, ro) in sync.ranks.iter().zip(&over.ranks) {
                assert_eq!(
                    rs.master, ro.master,
                    "{stage:?} dp={dp} rank {}: master params drifted",
                    rs.rank
                );
            }
        }
    }
}

#[test]
fn overlapped_checkpointed_stage3_is_bitwise_identical() {
    // Checkpointed segments restart the prefetch chain per recompute
    // window; interval 2 makes segments span multiple blocks.
    for interval in [1usize, 2] {
        let mut sync = setup(ZeroStage::Three, 4, false);
        sync.zero.checkpoint_activations = true;
        sync.zero.checkpoint_interval = interval;
        let mut over = setup(ZeroStage::Three, 4, true);
        over.zero.checkpoint_activations = true;
        over.zero.checkpoint_interval = interval;
        let a = run_training(&sync, STEPS, 0);
        let b = run_training(&over, STEPS, 0);
        for (x, y) in a.losses.iter().zip(&b.losses) {
            assert_eq!(x.to_bits(), y.to_bits(), "interval {interval}: loss drifted");
        }
    }
}

#[test]
fn overlapped_traffic_matches_plan_exactly() {
    // The acceptance bar: overlapped per-rank bytes AND messages per kind
    // remain exactly equal to the summed plan volume — the async schedule
    // moves precisely the planned ops, nothing more, nothing less.
    let cfg = model();
    let layout = Layout::build(&cfg);
    for stage in [ZeroStage::Two, ZeroStage::Three] {
        for n in [2usize, 4, 8] {
            let zcfg = ZeroConfig {
                stage,
                fp16: true,
                initial_loss_scale: 1.0,
                checkpoint_activations: false,
                bucket_elems: 1000,
                overlap: true,
                ..ZeroConfig::default()
            };
            let grid = Grid::new(n, 1);
            let setup = TrainSetup {
                model: cfg,
                zero: zcfg,
                grid,
                global_batch: n, // local batch 1 at every N
                seed: 5,
            };
            let report = run_training(&setup, 2, 0);
            let act_elems = cfg.seq * cfg.hidden;
            for r in &report.ranks {
                let mut want_bytes = [0u64; KIND_COUNT];
                let mut want_msgs = [0u64; KIND_COUNT];
                for &skipped in &report.skipped {
                    let plan = CommPlan::train_step(
                        &layout,
                        &zcfg,
                        grid,
                        &StepShape { micro_batches: 1, act_elems, skipped },
                    );
                    for (i, b) in plan.rank_bytes(r.rank).iter().enumerate() {
                        want_bytes[i] += b;
                    }
                    for (i, m) in plan.rank_messages(r.rank).iter().enumerate() {
                        want_msgs[i] += m;
                    }
                }
                for (i, kind) in zero::comm::ALL_KINDS.iter().enumerate() {
                    assert_eq!(
                        r.traffic.bytes(*kind),
                        want_bytes[i],
                        "{stage:?} n={n} rank {} {kind:?} bytes",
                        r.rank
                    );
                    assert_eq!(
                        r.traffic.messages(*kind),
                        want_msgs[i],
                        "{stage:?} n={n} rank {} {kind:?} messages",
                        r.rank
                    );
                }
            }
        }
    }
}

#[test]
fn overlap_and_sync_plans_move_identical_volume() {
    // Static half of the same claim: the overlapped plan is a reordering
    // (fetches move to issue positions) of exactly the same op multiset.
    let cfg = model();
    let layout = Layout::build(&cfg);
    for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        for n in 2..=6 {
            let grid = Grid::new(n, 1);
            let shape = StepShape { micro_batches: 2, act_elems: cfg.seq * cfg.hidden, skipped: false };
            let base = ZeroConfig {
                stage,
                fp16: true,
                initial_loss_scale: 1.0,
                checkpoint_activations: false,
                bucket_elems: 1000,
                ..ZeroConfig::default()
            };
            let sync = CommPlan::train_step(&layout, &base, grid, &shape);
            let over = CommPlan::train_step(&layout, &base.overlapped(), grid, &shape);
            assert_eq!(sync.ops().len(), over.ops().len(), "{stage:?} n={n}: op count");
            for rank in 0..n {
                assert_eq!(sync.rank_bytes(rank), over.rank_bytes(rank), "{stage:?} n={n} r{rank}");
                assert_eq!(
                    sync.rank_messages(rank),
                    over.rank_messages(rank),
                    "{stage:?} n={n} r{rank}"
                );
            }
        }
    }
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("zero-overlap-{tag}-{}", std::process::id()))
}

#[test]
fn crash_during_inflight_async_reduce_recovers() {
    // Stage 2 + overlap: bucket reduce-scatters are in flight while
    // backward keeps running when rank 2 dies inside one of them. The
    // waits must surface typed errors (no deadlock) and the supervisor
    // must reshard and finish the run.
    let dir = unique_dir("rs");
    std::fs::remove_dir_all(&dir).ok();
    let train = TrainSetup {
        model: model(),
        zero: ZeroConfig {
            stage: ZeroStage::Two,
            fp16: false,
            bucket_elems: 512,
            overlap: true,
            ..ZeroConfig::default()
        },
        grid: Grid::new(4, 1),
        global_batch: 12,
        seed: 11,
    };
    let mut cfg = SupervisorConfig::new(train, 12, dir.clone());
    cfg.snapshot_every = 5;
    cfg.recv_timeout = Duration::from_millis(500);
    // Stage 2 runs 4 bucket reduce-scatters per step; the 25th lands in
    // step 6, past the step-5 snapshot, mid-backward.
    cfg.faults = FaultPlan::new().with_crash_at_kind(2, CollectiveKind::ReduceScatter, 25);
    let report = run_supervised(&cfg);
    assert_eq!(report.final_world, 3, "world must shrink by the dead rank");
    assert_eq!(report.losses.len(), 12, "run must complete");
    assert_eq!(report.recoveries.len(), 1);
    assert_eq!(report.recoveries[0].failed_ranks, vec![2]);
    assert!(report.losses.iter().all(|l| l.is_finite()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_during_inflight_prefetch_recovers() {
    // Stage 3 + overlap: the victim dies inside a parameter all-gather
    // that other ranks are holding as a prefetch handle.
    let dir = unique_dir("ag");
    std::fs::remove_dir_all(&dir).ok();
    let train = TrainSetup {
        model: model(),
        zero: ZeroConfig {
            stage: ZeroStage::Three,
            fp16: false,
            bucket_elems: 512,
            overlap: true,
            ..ZeroConfig::default()
        },
        grid: Grid::new(4, 1),
        global_batch: 12,
        seed: 11,
    };
    let mut cfg = SupervisorConfig::new(train, 10, dir.clone());
    cfg.snapshot_every = 5;
    cfg.recv_timeout = Duration::from_millis(500);
    // Stage 3 runs 8 fetch all-gathers per step here; the 50th lands in
    // step 6, past the step-5 snapshot.
    cfg.faults = FaultPlan::new().with_crash_at_kind(3, CollectiveKind::AllGather, 50);
    let report = run_supervised(&cfg);
    assert_eq!(report.final_world, 3);
    assert_eq!(report.losses.len(), 10);
    assert!(report.losses.iter().all(|l| l.is_finite()));
    std::fs::remove_dir_all(&dir).ok();
}
