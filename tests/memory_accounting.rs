//! Measured memory vs. the paper's closed-form expressions (§3.1, §5,
//! Figure 1): with mixed-precision Adam the model states take
//!
//! * DDP:      2Ψ + 2Ψ + KΨ            (K = 12)
//! * P_os:     2Ψ + 2Ψ + KΨ/N_d
//! * P_os+g:   2Ψ + (2+K)Ψ/N_d
//! * P_os+g+p: (4+K)Ψ/N_d
//!
//! The engine's MemoryTracker registers every model-state allocation, so
//! these are *measured equalities*, exact to the byte (the shard of rank
//! `d` has `chunk_range(Ψ, N_d, d)` elements, so per-rank values differ by
//! at most one element's worth).

use zero::comm::Grid;
use zero::core::{run_training, MemCategory, TrainSetup, ZeroConfig, ZeroStage};
use zero::model::ModelConfig;

fn model() -> ModelConfig {
    ModelConfig {
        vocab: 32,
        seq: 8,
        hidden: 16,
        layers: 2,
        heads: 2,
    }
}

fn run(stage: ZeroStage, dp: usize) -> zero::core::TrainReport {
    let setup = TrainSetup {
        model: model(),
        zero: ZeroConfig {
            stage,
            fp16: true,
            checkpoint_activations: false,
            ..ZeroConfig::default()
        },
        grid: Grid::new(dp, 1),
        global_batch: 4,
        seed: 3,
    };
    run_training(&setup, 2, 0)
}

fn shard_len(total: usize, n: usize, i: usize) -> u64 {
    zero::comm::chunk_range(total, n, i).len() as u64
}

#[test]
fn ddp_model_states_are_16_psi() {
    let psi = model().total_params() as u64;
    let report = run(ZeroStage::Ddp, 4);
    for r in &report.ranks {
        assert_eq!(
            r.peak_model_state_bytes,
            16 * psi,
            "rank {}: DDP must hold 2Ψ+2Ψ+12Ψ bytes",
            r.rank
        );
    }
}

#[test]
fn stage1_model_states_are_4_psi_plus_k_over_nd() {
    let psi = model().total_params();
    let dp = 4;
    let report = run(ZeroStage::One, dp);
    for (d, r) in report.ranks.iter().enumerate() {
        let want = 4 * psi as u64 + 12 * shard_len(psi, dp, d);
        assert_eq!(r.peak_model_state_bytes, want, "rank {d}");
    }
}

#[test]
fn stage2_model_states_are_2_psi_plus_14_over_nd() {
    let psi = model().total_params();
    let dp = 4;
    let report = run(ZeroStage::Two, dp);
    for (d, r) in report.ranks.iter().enumerate() {
        let want = 2 * psi as u64 + 14 * shard_len(psi, dp, d);
        assert_eq!(r.peak_model_state_bytes, want, "rank {d}");
    }
}

#[test]
fn stage3_model_states_are_16_over_nd() {
    let psi = model().total_params();
    let dp = 4;
    let report = run(ZeroStage::Three, dp);
    for (d, r) in report.ranks.iter().enumerate() {
        let want = 16 * shard_len(psi, dp, d);
        assert_eq!(r.peak_model_state_bytes, want, "rank {d}");
    }
}

fn run_offloaded(stage: ZeroStage, dp: usize, budget: u64) -> zero::core::TrainReport {
    let setup = TrainSetup {
        model: model(),
        zero: ZeroConfig {
            stage,
            fp16: true,
            checkpoint_activations: false,
            tier: zero::core::TierConfig::budgeted(budget),
            ..ZeroConfig::default()
        },
        grid: Grid::new(dp, 1),
        global_batch: 4,
        seed: 3,
    };
    run_training(&setup, 2, 0)
}

#[test]
fn offload_moves_model_state_shards_to_host_categories_byte_exactly() {
    // Under tier offload the per-rank shards leave the device categories
    // for their Host* twins at exactly the paper's per-shard sizes:
    // 12·shard of fp32 optimizer state (stage ≥ 1), 2·shard of fp16
    // gradient shard (stage ≥ 2), 2·shard of fp16 working parameters
    // (stage 3).
    let psi = model().total_params();
    let dp = 4;
    for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        let report = run_offloaded(stage, dp, u64::MAX);
        for (d, r) in report.ranks.iter().enumerate() {
            let shard = shard_len(psi, dp, d);
            let host = |c: MemCategory| r.peak_by_category[c as usize];
            let dev = |c: MemCategory| r.peak_by_category[c as usize];
            assert_eq!(
                host(MemCategory::HostOptimizerStates),
                12 * shard,
                "{stage:?} rank {d}: host optimizer shard"
            );
            assert_eq!(dev(MemCategory::MasterParams), 0, "{stage:?} rank {d}");
            assert_eq!(dev(MemCategory::Momentum), 0, "{stage:?} rank {d}");
            assert_eq!(dev(MemCategory::Variance), 0, "{stage:?} rank {d}");
            if stage.partitions_grads() {
                assert_eq!(
                    host(MemCategory::HostGradShard),
                    2 * shard,
                    "{stage:?} rank {d}: host gradient shard"
                );
                assert_eq!(dev(MemCategory::Gradients), 0, "{stage:?} rank {d}");
            } else {
                // Stage 1 keeps the full fp16 gradient buffer on device.
                assert_eq!(host(MemCategory::HostGradShard), 0);
                assert_eq!(dev(MemCategory::Gradients), 2 * psi as u64);
            }
            if stage.partitions_params() {
                assert_eq!(
                    host(MemCategory::HostParamShard),
                    2 * shard,
                    "{stage:?} rank {d}: host parameter shard"
                );
                assert_eq!(dev(MemCategory::ParamsFp16), 0, "{stage:?} rank {d}");
            } else {
                assert_eq!(host(MemCategory::HostParamShard), 0);
                assert_eq!(dev(MemCategory::ParamsFp16), 2 * psi as u64);
            }
        }
    }
}

#[test]
fn offload_budget_is_enforced_and_binds_below_the_unconstrained_peak() {
    // The device-budget proof: pick a budget strictly between the
    // offloaded and unconstrained peaks. The offloaded run completes —
    // the armed tracker would have panicked past the budget — while the
    // baseline demonstrably needed more than the budget allows.
    let dp = 2;
    let baseline = run(ZeroStage::Three, dp);
    let probe = run_offloaded(ZeroStage::Three, dp, u64::MAX);
    let base_peak =
        baseline.ranks.iter().map(|r| r.peak_device_bytes).max().unwrap();
    let off_peak = probe.ranks.iter().map(|r| r.peak_device_bytes).max().unwrap();
    assert!(
        off_peak < base_peak,
        "offload must lower the device peak: {off_peak} vs {base_peak}"
    );
    let budget = (off_peak + base_peak) / 2;
    let proven = run_offloaded(ZeroStage::Three, dp, budget);
    for r in &proven.ranks {
        assert!(
            r.peak_device_bytes <= budget,
            "rank {}: peak {} exceeds enforced budget {budget}",
            r.rank,
            r.peak_device_bytes
        );
    }
    // Same data, same arithmetic: the constrained run's losses are the
    // baseline's, bitwise.
    for (a, b) in baseline.losses.iter().zip(&proven.losses) {
        assert_eq!(a.to_bits(), b.to_bits(), "budget must not perturb training");
    }
}

#[test]
fn memory_reduction_ratios_match_figure1() {
    // Figure 1's example ratios at N_d = 4: DDP = 16Ψ, P_os ≈ 7Ψ,
    // P_os+g ≈ 5.5Ψ, P_os+g+p = 4Ψ.
    let psi = model().total_params() as f64;
    let ddp = run(ZeroStage::Ddp, 4).max_model_state_bytes() as f64 / psi;
    let s1 = run(ZeroStage::One, 4).max_model_state_bytes() as f64 / psi;
    let s2 = run(ZeroStage::Two, 4).max_model_state_bytes() as f64 / psi;
    let s3 = run(ZeroStage::Three, 4).max_model_state_bytes() as f64 / psi;
    assert!((ddp - 16.0).abs() < 0.01, "DDP {ddp}");
    assert!((s1 - 7.0).abs() < 0.05, "P_os {s1}");
    assert!((s2 - 5.5).abs() < 0.05, "P_os+g {s2}");
    assert!((s3 - 4.0).abs() < 0.05, "P_os+g+p {s3}");
    assert!(ddp > s1 && s1 > s2 && s2 > s3, "each stage strictly helps");
}

#[test]
fn fp32_mode_has_k_8_footprint() {
    // Without mixed precision there is no separate fp16 copy: 4Ψ params
    // (working) + 4Ψ grads + 4Ψ master + 8Ψ Adam = 20Ψ under DDP.
    let psi = model().total_params() as u64;
    let setup = TrainSetup {
        model: model(),
        zero: ZeroConfig::fp32_exact(ZeroStage::Ddp),
        grid: Grid::new(2, 1),
        global_batch: 4,
        seed: 3,
    };
    let report = run_training(&setup, 1, 0);
    assert_eq!(report.ranks[0].peak_model_state_bytes, 20 * psi);
}

#[test]
fn checkpointing_reduces_activation_memory() {
    let mk = |ckpt: bool| TrainSetup {
        model: model(),
        zero: ZeroConfig {
            stage: ZeroStage::Two,
            checkpoint_activations: ckpt,
            ..ZeroConfig::default()
        },
        grid: Grid::new(2, 1),
        global_batch: 4,
        seed: 3,
    };
    let with = run_training(&mk(true), 1, 0);
    let without = run_training(&mk(false), 1, 0);
    let act = MemCategory::Activations as usize;
    let ck = MemCategory::Checkpoints as usize;
    let _ = act;
    let _ = ck;
    assert!(
        with.ranks[0].peak_device_bytes < without.ranks[0].peak_device_bytes,
        "checkpointing must lower peak device memory: {} vs {}",
        with.ranks[0].peak_device_bytes,
        without.ranks[0].peak_device_bytes
    );
}

#[test]
fn pa_partitions_checkpoint_memory_by_mp_degree() {
    // §6.1: P_a reduces the checkpoint footprint proportional to N_m.
    let mk = |pa: bool| TrainSetup {
        model: ModelConfig {
            heads: 4,
            ..model()
        },
        zero: ZeroConfig {
            stage: ZeroStage::Two,
            checkpoint_activations: true,
            partition_activations: pa,
            use_arena: false,
            ..ZeroConfig::default()
        },
        grid: Grid::new(2, 2),
        global_batch: 4,
        seed: 3,
    };
    let plain = run_training(&mk(false), 1, 0);
    let pa = run_training(&mk(true), 1, 0);
    let ck = MemCategory::Checkpoints as usize;
    let plain_peak = plain.ranks[0].peak_by_category[ck];
    let pa_peak = pa.ranks[0].peak_by_category[ck];
    assert!(plain_peak > 0, "checkpoints were stored");
    assert_eq!(
        pa_peak * 2,
        plain_peak,
        "P_a must shrink checkpoint bytes by exactly N_m = 2"
    );
}

#[test]
fn cpu_offload_moves_checkpoints_off_device() {
    let mk = |off: bool| TrainSetup {
        model: ModelConfig { heads: 4, ..model() },
        zero: ZeroConfig {
            stage: ZeroStage::Two,
            checkpoint_activations: true,
            partition_activations: true,
            offload_checkpoints: off,
            use_arena: false,
            ..ZeroConfig::default()
        },
        grid: Grid::new(1, 2),
        global_batch: 2,
        seed: 3,
    };
    let on_device = run_training(&mk(false), 1, 0);
    let offloaded = run_training(&mk(true), 1, 0);
    let ck = MemCategory::Checkpoints as usize;
    let cpu = MemCategory::CpuOffload as usize;
    // All checkpoint bytes move to the CPU pool: device checkpoint peak
    // drops to zero and the CPU pool holds exactly what the device held.
    assert!(on_device.ranks[0].peak_by_category[ck] > 0);
    assert_eq!(offloaded.ranks[0].peak_by_category[ck], 0);
    assert_eq!(
        offloaded.ranks[0].peak_by_category[cpu],
        on_device.ranks[0].peak_by_category[ck],
        "CPU pool must hold exactly the former device checkpoints"
    );
    // §8: P_a+cpu costs 2× the checkpoint bytes in PCIe transfers
    // (to CPU at store, back at fetch).
    assert_eq!(
        offloaded.ranks[0].cpu_transfer_bytes,
        2 * offloaded.ranks[0].peak_by_category[cpu],
        "each checkpoint crosses the link twice"
    );
    assert_eq!(on_device.ranks[0].cpu_transfer_bytes, 0);
}

#[test]
fn checkpoint_interval_trades_checkpoint_memory_for_activation_memory() {
    // Interval k stores ⌈L/k⌉ checkpoints; during backward a whole
    // segment's saved activations are live at once.
    let mk = |interval: usize| TrainSetup {
        model: ModelConfig {
            layers: 4,
            ..model()
        },
        zero: ZeroConfig {
            stage: ZeroStage::Two,
            checkpoint_activations: true,
            checkpoint_interval: interval,
            use_arena: false,
            ..ZeroConfig::default()
        },
        grid: Grid::new(2, 1),
        global_batch: 4,
        seed: 3,
    };
    let every = run_training(&mk(1), 1, 0);
    let half = run_training(&mk(2), 1, 0);
    let ck = MemCategory::Checkpoints as usize;
    let act = MemCategory::Activations as usize;
    // Checkpoint bytes halve exactly (4 checkpoints -> 2).
    assert_eq!(
        every.ranks[0].peak_by_category[ck],
        2 * half.ranks[0].peak_by_category[ck]
    );
    // Peak saved activations grow (two blocks' worth live per segment).
    assert!(
        half.ranks[0].peak_by_category[act] > every.ranks[0].peak_by_category[act],
        "{} vs {}",
        half.ranks[0].peak_by_category[act],
        every.ranks[0].peak_by_category[act]
    );
}
