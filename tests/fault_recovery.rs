//! Fault-injected elastic training: the supervisor must survive rank
//! crashes, hangs, and corrupted messages, and recover to a state bitwise
//! identical to a clean run resumed from the same snapshot.

use std::path::PathBuf;
use std::time::Duration;

use zero::comm::{CollectiveKind, FaultPlan, Grid};
use zero::core::supervisor::snapshot_dir_for;
use zero::core::{
    resume_from_snapshot, run_supervised, SupervisorConfig, TierConfig, TrainSetup, ZeroConfig,
    ZeroStage,
};
use zero::model::ModelConfig;
use zero::trace::SpanCategory;

fn unique_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zero-fault-{tag}-{}", std::process::id()))
}

/// Global batch 12 divides evenly over 4, 3, and 2 ranks, so the schedule
/// survives shrinking the world.
fn setup(dp: usize, stage: ZeroStage) -> TrainSetup {
    TrainSetup {
        model: ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 },
        zero: ZeroConfig {
            stage,
            fp16: false,
            bucket_elems: 512,
            ..ZeroConfig::default()
        },
        grid: Grid::new(dp, 1),
        global_batch: 12,
        seed: 11,
    }
}

fn config(dir: &std::path::Path, dp: usize, stage: ZeroStage, steps: usize) -> SupervisorConfig {
    let mut cfg = SupervisorConfig::new(setup(dp, stage), steps, dir.to_path_buf());
    cfg.snapshot_every = 5;
    cfg.recv_timeout = Duration::from_millis(500);
    cfg
}

/// The scripted acceptance scenario: rank 2 of 4 dies mid-step at step 7
/// of 20 (in its overflow-flag all-reduce, after gradients, before the
/// update). The supervisor must roll back to the step-5 snapshot, reshard
/// to the 3 survivors, resume, and end bitwise identical to a clean 3-rank
/// run resumed from the very same snapshot.
#[test]
fn killed_rank_recovers_bitwise_identical_to_clean_resume() {
    let dir = unique_dir("accept");
    std::fs::remove_dir_all(&dir).ok();
    let steps = 20;

    let mut cfg = config(&dir, 4, ZeroStage::Two, steps);
    // With fp16 off and clipping off there is exactly one AllReduce-kind
    // op per training step (the overflow flag), so the 0-based 7th fires
    // inside step 7.
    cfg.faults = FaultPlan::new().with_crash_at_kind(2, CollectiveKind::AllReduce, 7);
    let recovered = run_supervised(&cfg);

    assert_eq!(recovered.final_world, 3);
    assert_eq!(recovered.losses.len(), steps);
    assert_eq!(recovered.recoveries.len(), 1);
    let rec = &recovered.recoveries[0];
    assert_eq!(rec.failed_ranks, vec![2]);
    assert_eq!((rec.old_world, rec.new_world), (4, 3));
    assert_eq!(rec.resumed_from_step, 5);
    assert!(rec.steps_lost >= 2, "steps 5..7 were discarded, got {}", rec.steps_lost);
    assert!(rec.bytes_moved > 0);
    assert!(
        rec.failures.iter().any(|(r, m)| *r == 2 && m.contains("crashed this rank")),
        "failures must name the injected crash: {:?}",
        rec.failures
    );

    // Control arm: clean 3-rank run resumed from the same snapshot files.
    let (control_losses, control_eval) = resume_from_snapshot(
        &setup(3, ZeroStage::Two),
        steps,
        &snapshot_dir_for(&dir, 5),
        4,
    );
    assert_eq!(control_losses.len(), steps - 5);
    for (i, (a, b)) in recovered.losses[5..].iter().zip(&control_losses).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "step {}: recovered {a} != control {b}",
            5 + i
        );
    }
    assert_eq!(
        recovered.final_eval.to_bits(),
        control_eval.to_bits(),
        "final eval loss must be bitwise identical: {} vs {}",
        recovered.final_eval,
        control_eval
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A hung rank must not deadlock the job: peers time out, the supervisor
/// removes the hung rank, and training completes on the survivors.
#[test]
fn hung_rank_times_out_and_world_shrinks() {
    let dir = unique_dir("hang");
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = config(&dir, 3, ZeroStage::One, 8);
    cfg.recv_timeout = Duration::from_millis(150);
    cfg.faults = FaultPlan::new().with_hang(1, 40);
    let report = run_supervised(&cfg);
    assert_eq!(report.final_world, 2);
    assert_eq!(report.losses.len(), 8);
    assert_eq!(report.recoveries.len(), 1);
    assert_eq!(report.recoveries[0].failed_ranks, vec![1]);
    assert!(
        report
            .recoveries[0]
            .failures
            .iter()
            .any(|(_, m)| m.contains("hang") || m.contains("timed out") || m.contains("lost")),
        "failures should show the hang and/or its observers: {:?}",
        report.recoveries[0].failures
    );
    assert!(report.losses.iter().all(|l| l.is_finite()));
    std::fs::remove_dir_all(&dir).ok();
}

/// A flipped bit in one payload must be *detected* (CRC), never silently
/// averaged into the model: the round aborts, everyone rolls back, and —
/// since the corrupting rank is healthy — the world keeps its size.
#[test]
fn corrupted_message_detected_and_rolled_back() {
    let dir = unique_dir("corrupt");
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = config(&dir, 3, ZeroStage::Two, 8);
    cfg.faults = FaultPlan::seeded(99).with_corruption(1, 25);
    let report = run_supervised(&cfg);
    assert_eq!(report.final_world, 3, "no rank died, world must not shrink");
    assert_eq!(report.losses.len(), 8);
    assert_eq!(report.recoveries.len(), 1);
    assert!(report.recoveries[0].failed_ranks.is_empty());
    assert!(
        report.recoveries[0].failures.iter().any(|(_, m)| m.contains("corrupt")),
        "some rank must report the corrupt payload: {:?}",
        report.recoveries[0].failures
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash placement matrix: dying inside the gradient reduce-scatter, the
/// parameter all-gather, or the optimizer-step all-reduce must all be
/// recoverable — the three phases exercise different in-flight state.
#[test]
fn crash_in_any_collective_phase_recovers() {
    for (kind, nth, tag) in [
        // At this model size stage 2 runs 4 reduce-scatters (bucket
        // flushes) and 16 all-gathers (parameter publishes) per step, but
        // exactly one all-reduce (the overflow flag), so the indices
        // differ to land each crash mid-run after the step-5 snapshot.
        (CollectiveKind::ReduceScatter, 25, "rs"),
        (CollectiveKind::AllGather, 100, "ag"),
        (CollectiveKind::AllReduce, 8, "opt"),
    ] {
        let dir = unique_dir(&format!("matrix-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = config(&dir, 4, ZeroStage::Two, 12);
        cfg.faults = FaultPlan::new().with_crash_at_kind(2, kind, nth);
        let report = run_supervised(&cfg);
        assert_eq!(report.final_world, 3, "{tag}: world must shrink by the one dead rank");
        assert_eq!(report.losses.len(), 12, "{tag}: run must complete");
        assert_eq!(report.recoveries.len(), 1, "{tag}");
        assert_eq!(report.recoveries[0].failed_ranks, vec![2], "{tag}");
        assert!(report.losses.iter().all(|l| l.is_finite()), "{tag}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Stage 3 (parameter partitioning) keeps working under crash + recovery:
/// the all-gather-on-demand path is the one most entangled with the fabric.
#[test]
fn stage3_crash_recovers() {
    let dir = unique_dir("stage3");
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = config(&dir, 4, ZeroStage::Three, 10);
    // Stage 3 runs ~11 fabric ops per step here; op 75 lands in step 6,
    // past the step-5 snapshot.
    cfg.faults = FaultPlan::new().with_crash(3, 75);
    let report = run_supervised(&cfg);
    assert_eq!(report.final_world, 3);
    assert_eq!(report.losses.len(), 10);
    assert!(report.losses.iter().all(|l| l.is_finite()));
    std::fs::remove_dir_all(&dir).ok();
}

/// The offload corner of the matrix, with the strongest oracle: rank 2
/// dies while a memory-tier prefetch is in flight. Stage 3 with overlap
/// issues each unit's parameter all-gather one unit ahead of compute,
/// and under offload every fetch is *preceded* on the FIFO by the
/// host-tier `tier-param-fetch` movement — crashing inside an all-gather
/// therefore kills the rank with tier traffic pending settlement. The
/// supervisor must roll back, reshard to 3 survivors (whose engines
/// rebuild their tier stores from the snapshot), and finish bitwise
/// identical to a clean offloaded 3-rank run resumed from the same
/// snapshot files.
#[test]
fn killed_rank_with_offload_prefetch_in_flight_recovers_bitwise_identical() {
    let dir = unique_dir("offload");
    std::fs::remove_dir_all(&dir).ok();
    let steps = 12;

    let tiered = |dp: usize| {
        let mut s = setup(dp, ZeroStage::Three);
        s.zero.overlap = true;
        s.zero.tier = TierConfig::budgeted(64 << 20);
        s
    };
    let mut cfg = SupervisorConfig::new(tiered(4), steps, dir.clone());
    cfg.snapshot_every = 5;
    cfg.recv_timeout = Duration::from_millis(500);
    // Stage 3 all-gathers every unit on demand; landing the crash in an
    // all-gather past the step-5 snapshot guarantees an open prefetch
    // window (overlap) with its tier fetch already metered.
    cfg.faults = FaultPlan::new().with_crash_at_kind(2, CollectiveKind::AllGather, 50);
    let recovered = run_supervised(&cfg);

    assert_eq!(recovered.final_world, 3);
    assert_eq!(recovered.losses.len(), steps);
    assert_eq!(recovered.recoveries.len(), 1);
    let rec = &recovered.recoveries[0];
    assert_eq!(rec.failed_ranks, vec![2]);
    assert_eq!(rec.resumed_from_step, 5, "crash must land after the step-5 snapshot");
    assert!(
        rec.failures.iter().any(|(r, m)| *r == 2 && m.contains("crashed this rank")),
        "failures must name the injected crash: {:?}",
        rec.failures
    );

    // Control arm: clean offloaded 3-rank run from the same snapshots.
    let (control_losses, control_eval) =
        resume_from_snapshot(&tiered(3), steps, &snapshot_dir_for(&dir, 5), 4);
    assert_eq!(control_losses.len(), steps - 5);
    for (i, (a, b)) in recovered.losses[5..].iter().zip(&control_losses).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "step {}: recovered {a} != control {b}",
            5 + i
        );
    }
    assert_eq!(
        recovered.final_eval.to_bits(),
        control_eval.to_bits(),
        "final eval loss must be bitwise identical under offload: {} vs {}",
        recovered.final_eval,
        control_eval
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Runs one cell of the randomized fault matrix: deterministic
/// splitmix64-derived placement of a crash, hang, or corruption across
/// stage, victim rank, and fabric-op index. Asserts the run finishes with
/// a full, finite loss history and — when a recovery fired — that the
/// supervisor rollback is visible in the final round's traces as a
/// checkpoint-category `snapshot-restore` span on every rank.
fn run_matrix_case(case: u64) {
    run_matrix_case_tiered(case, TierConfig::off());
}

/// [`run_matrix_case`] with the memory tier dialed in: the same
/// deterministic fault placements replayed against an engine whose
/// optimizer/gradient/parameter shards live in the host tier.
fn run_matrix_case_tiered(case: u64, tier: TierConfig) {
    let stages = [ZeroStage::One, ZeroStage::Two, ZeroStage::Three];
    // Deterministic pseudo-random placement (splitmix64 spread).
    let mut z = case.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(0xA5A5_A5A5);
    let mut next = || {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 27)
    };
    let stage = stages[(next() % 3) as usize];
    let victim = (next() % 4) as usize;
    let op = 10 + next() % 150;
    let flavor = next() % 3;
    let faults = match flavor {
        0 => FaultPlan::seeded(case).with_crash(victim, op),
        1 => FaultPlan::seeded(case).with_hang(victim, op),
        _ => FaultPlan::seeded(case).with_corruption(victim, op),
    };

    let dir = unique_dir(&format!("stress-{case}-{}", tier.enabled));
    std::fs::remove_dir_all(&dir).ok();
    let mut cfg = config(&dir, 4, stage, 12);
    cfg.setup.zero.tier = tier;
    cfg.snapshot_every = 3;
    cfg.recv_timeout = Duration::from_millis(200);
    cfg.faults = faults;
    let report = run_supervised(&cfg);
    assert_eq!(
        report.losses.len(),
        12,
        "case {case} ({stage:?}, victim {victim}, op {op}, flavor {flavor}) must finish"
    );
    assert!(report.losses.iter().all(|l| l.is_finite()), "case {case}: finite losses");
    if !report.recoveries.is_empty() {
        // The final clean round started from a snapshot restore; the
        // rollback must appear in every surviving rank's trace.
        assert!(!report.timelines.is_empty(), "case {case}: report must carry timelines");
        for (rank, tl) in report.timelines.iter().enumerate() {
            assert!(
                tl.count_named(SpanCategory::Checkpoint, "snapshot-restore") > 0,
                "case {case} rank {rank}: recovery happened but no snapshot-restore span"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

// Four promoted matrix cells, one per flavor×stage corner, cheap enough
// for the default tier-1 pass: stage-3 crash, stage-2 corruption,
// stage-3 hang, stage-1 crash (placements listed in `run_matrix_case`).

#[test]
fn matrix_case_stage3_crash() {
    run_matrix_case(0);
}

#[test]
fn matrix_case_stage2_corruption() {
    run_matrix_case(2);
}

#[test]
fn matrix_case_stage3_hang() {
    run_matrix_case(3);
}

#[test]
fn matrix_case_stage1_crash() {
    run_matrix_case(4);
}

// The same corners with the memory tier enabled: every fault now races
// host-tier traffic (spills mid-backward, fetches ahead of compute) and
// recovery must rebuild the survivors' tier stores from the snapshot.

#[test]
fn matrix_case_stage3_crash_offloaded() {
    run_matrix_case_tiered(0, TierConfig::budgeted(64 << 20));
}

#[test]
fn matrix_case_stage3_hang_offloaded() {
    run_matrix_case_tiered(3, TierConfig::budgeted(64 << 20));
}

/// Randomized stress matrix (ignored by default; run with
/// `cargo test -- --ignored`): the remaining cells of the same sweep the
/// promoted `matrix_case_*` tests above cover four corners of — each cell
/// run twice, tier off and tier on.
#[test]
#[ignore = "stress matrix: minutes of runtime; exercised in CI's ignored pass"]
fn randomized_fault_matrix_stress() {
    for case in 0u64..18 {
        run_matrix_case(case);
        run_matrix_case_tiered(case, TierConfig::budgeted(64 << 20));
    }
}
