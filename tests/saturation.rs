//! Serving under load: open-loop arrival schedules must drive the engine
//! into queueing and saturation while preserving every determinism
//! guarantee — FIFO fairness, identical shedding on every rank, bitwise
//! token equality across KV backends, and honest latency accounting.

use std::time::Instant;

use zero::core::Partitioner;
use zero::model::{init_full_params, ModelConfig};
use zero::serve::{
    generate, serve, Arrivals, KvBackend, LoadConfig, ServeConfig, ServeError, ServeRequest,
    ServeReport,
};

fn model() -> ModelConfig {
    ModelConfig { vocab: 24, seq: 16, hidden: 16, layers: 2, heads: 2 }
}

fn shard(params: &[f32], n: usize) -> Vec<Vec<f32>> {
    let part = Partitioner::new(params.len(), n);
    (0..n).map(|r| params[part.shard_range(r)].to_vec()).collect()
}

fn load(arrivals: Arrivals, seed: u64) -> LoadConfig {
    LoadConfig {
        n_requests: 24,
        arrivals,
        prompt_len: (3, 8),
        max_new: (2, 6),
        vocab: model().vocab,
        seed,
        shared_prefixes: 2,
        prefix_len: 5,
    }
}

fn run(arrivals: Arrivals, seed: u64, ranks: usize, cfg: &ServeConfig) -> ServeReport {
    let m = model();
    let params = init_full_params(&m, 31);
    let reqs = generate(&load(arrivals, seed));
    let report = serve(&m, &shard(&params, ranks), &reqs, cfg);
    report.check_ranks_agree().expect("SPMD lockstep under load");
    report
}

/// Admission is FIFO: across the whole run, requests enter service in
/// arrival order (ids are assigned in arrival order by the generator),
/// and a saturating Poisson schedule actually makes them queue.
#[test]
fn fifo_fairness_under_saturating_poisson() {
    let cfg = ServeConfig { slots: 2, ..ServeConfig::default() };
    let report = run(Arrivals::Poisson { rate: 1.0 }, 11, 2, &cfg);
    let responses: Vec<_> =
        report.outcomes().iter().filter_map(|o| o.response()).collect();
    assert_eq!(responses.len(), 24, "no SLO configured: nothing sheds");
    // Outcomes are in submission order == id order; admission steps must
    // be nondecreasing along it, or someone jumped the queue.
    for w in responses.windows(2) {
        assert!(
            w[0].admitted_step <= w[1].admitted_step,
            "request {} admitted at {} but earlier-arriving {} at {}",
            w[1].id,
            w[1].admitted_step,
            w[0].id,
            w[0].admitted_step
        );
        assert!(w[0].arrival_step <= w[1].arrival_step, "generator emits in arrival order");
    }
    // λ=1 against 2 slots of multi-step service is over capacity: the
    // queue must actually form.
    assert!(
        responses.iter().any(|r| r.queue_steps > 0),
        "saturating schedule never queued — the test lost its teeth"
    );
}

/// With an SLO armed, overload sheds deterministically: the same
/// requests are shed with the same predicted delays on every rank, on
/// every rerun, and at every world size (world size is not a scheduling
/// input).
#[test]
fn shedding_is_deterministic_across_ranks_runs_and_world_sizes() {
    let cfg = ServeConfig { slots: 2, slo_steps: Some(20), ..ServeConfig::default() };
    let arrivals = Arrivals::Burst { size: 8, period: 10 };
    let shed_ids = |report: &ServeReport| -> Vec<(u64, ServeError)> {
        report
            .outcomes()
            .iter()
            .filter_map(|o| match o {
                zero::serve::ServeOutcome::Rejected { id, error } => Some((*id, *error)),
                _ => None,
            })
            .collect()
    };
    let first = run(arrivals, 5, 2, &cfg);
    let shed = shed_ids(&first);
    assert!(!shed.is_empty(), "an 8-wide burst into 2 slots must overflow a 20-step SLO");
    for (_, e) in &shed {
        match e {
            ServeError::Overloaded { predicted_delay_steps, slo_steps } => {
                assert!(predicted_delay_steps > slo_steps, "shed only past the SLO");
                assert_eq!(*slo_steps, 20);
            }
            other => panic!("well-formed request rejected with {other:?}"),
        }
    }
    // Same schedule, fresh run: identical shed set, delays included.
    assert_eq!(shed_ids(&run(arrivals, 5, 2, &cfg)), shed, "rerun diverged");
    // Different world size: still identical (sharding is not scheduling).
    assert_eq!(shed_ids(&run(arrivals, 5, 3, &cfg)), shed, "world size changed shedding");
    // Different seed: a different schedule (the gate is live, not vacuous).
    assert_ne!(shed_ids(&run(arrivals, 6, 2, &cfg)), shed);
}

/// The paged KV backend is a memory optimization, not a model change:
/// identical greedy tokens across block sizes. With prefix reuse *off*
/// the schedule itself is also step-for-step identical to the slab; with
/// reuse *on* prefill skipping legitimately finishes requests earlier
/// (that's the optimization), so the step count may only shrink — the
/// tokens still must not move.
#[test]
fn paged_kv_is_bitwise_identical_to_the_slab_under_load() {
    let arrivals = Arrivals::Poisson { rate: 0.5 };
    let slab = run(arrivals, 3, 2, &ServeConfig { slots: 3, ..ServeConfig::default() });
    for (block, reuse) in [(4, false), (7, false), (4, true), (16, true)] {
        let paged = run(
            arrivals,
            3,
            2,
            &ServeConfig {
                slots: 3,
                kv: KvBackend::Paged { block, prefix_reuse: reuse },
                ..ServeConfig::default()
            },
        );
        if reuse {
            assert!(
                paged.ranks[0].batch_steps <= slab.ranks[0].batch_steps,
                "block={block}: prefill skipping can only shorten the schedule"
            );
        } else {
            assert_eq!(
                paged.ranks[0].batch_steps, slab.ranks[0].batch_steps,
                "block={block}: without reuse the schedule must be identical"
            );
        }
        for (a, b) in slab.outcomes().iter().zip(paged.outcomes()) {
            let (ra, rb) = (a.response().unwrap(), b.response().unwrap());
            assert_eq!(ra.tokens, rb.tokens, "block={block} reuse={reuse}: tokens diverge");
            if !reuse {
                assert_eq!(
                    ra.completion_step, rb.completion_step,
                    "block={block}: schedule diverges"
                );
            }
        }
    }
}

/// Prefix reuse must *pay*: identical tokens with strictly fewer KV
/// bytes allocated than paged-without-reuse, and a nonzero hit count —
/// the workload has shared prefixes by construction.
#[test]
fn prefix_reuse_allocates_strictly_fewer_kv_bytes() {
    let arrivals = Arrivals::Poisson { rate: 0.5 };
    let paged = |reuse: bool| {
        run(
            arrivals,
            9,
            2,
            &ServeConfig {
                slots: 3,
                kv: KvBackend::Paged { block: 4, prefix_reuse: reuse },
                ..ServeConfig::default()
            },
        )
    };
    let without = paged(false);
    let with = paged(true);
    for (a, b) in without.outcomes().iter().zip(with.outcomes()) {
        assert_eq!(
            a.response().unwrap().tokens,
            b.response().unwrap().tokens,
            "reuse changed tokens"
        );
    }
    let (mw, mr) = (without.ranks[0].kv_meters, with.ranks[0].kv_meters);
    assert!(mr.prefix_hit_rows > 0, "shared-prefix workload must hit the cache");
    assert!(
        mr.bytes_allocated < mw.bytes_allocated,
        "reuse must allocate strictly fewer KV bytes ({} vs {})",
        mr.bytes_allocated,
        mw.bytes_allocated
    );
    // And the reused rows show up in the per-request accounting.
    let reused: u64 =
        with.outcomes().iter().filter_map(|o| o.response()).map(|r| r.prefix_reused_rows).sum();
    assert!(reused > 0);
}

/// Latency is measured from each request's *enqueue*, not from world
/// start: a late-arriving request's wall-clock latency covers its own
/// service, not the entire history before it. (Before the fix,
/// `latency_ns` was `t0.elapsed()` from world start, so a request
/// arriving after a long-running one reported nearly the whole run as
/// its own latency.)
#[test]
fn latency_epoch_is_the_request_arrival_not_world_start() {
    let m = model();
    let params = init_full_params(&m, 41);
    // Request 0 is long (14 service steps); request 1 arrives much later
    // in step time and is short (3 service steps). With the world-start
    // epoch, request 1's latency ≈ the whole wall time; with the arrival
    // epoch it is a small fraction.
    let requests = vec![
        ServeRequest::new(0, vec![1, 2, 3], 12),
        ServeRequest::new(1, vec![4, 5], 2).at_step(1000),
    ];
    let t0 = Instant::now();
    let report = serve(&m, &shard(&params, 2), &requests, &ServeConfig::default());
    let wall_ns = t0.elapsed().as_nanos() as u64;
    report.check_ranks_agree().unwrap();
    let r1 = report.outcomes()[1].response().unwrap();
    assert_eq!(report.ranks[0].batch_steps, 17, "14 + 3 executed steps, idle gap skipped");
    assert!(
        r1.latency_ns < wall_ns / 2,
        "short late request reports {} ns of {} ns total wall — \
         latency epoch is leaking world start",
        r1.latency_ns,
        wall_ns
    );
    // Step-indexed latency tells the same story deterministically.
    assert_eq!(r1.latency_steps, 3);
    assert_eq!(r1.queue_steps, 0);
}
