//! End-to-end serving conformance: the shard-hosted batched engine must
//! be an *exact* implementation detail — bitwise identical to the
//! single-process decoder — while honoring the stage-3 memory bound,
//! rejecting malformed requests with typed errors on every rank, and
//! reconciling its gather traffic byte-exactly against the static plan.

use zero::comm::CollectiveKind;
use zero::core::{export_inference_shards, CommPlan, Partitioner, RankSnapshot};
use zero::model::{
    argmax, init_full_params, GenerateError, Generator, Gpt, IncrementalDecoder, ModelConfig,
};
use zero::serve::{serve, ServeConfig, ServeError, ServeRequest};
use zero::trace::SpanCategory;

fn shard(params: &[f32], n: usize) -> Vec<Vec<f32>> {
    let part = Partitioner::new(params.len(), n);
    (0..n).map(|r| params[part.shard_range(r)].to_vec()).collect()
}

fn reference_greedy(model: &ModelConfig, params: &[f32], req: &ServeRequest) -> Vec<u32> {
    let gpt = Gpt::new(*model);
    let mut dec = IncrementalDecoder::new(&gpt, params);
    let mut last = Vec::new();
    for &t in &req.prompt {
        last = dec.feed(t).expect("test prompt is well-formed");
    }
    let mut out = vec![argmax(&last) as u32];
    while out.len() < req.max_new_tokens {
        last = dec.feed(*out.last().unwrap()).expect("test decode");
        out.push(argmax(&last) as u32);
    }
    out
}

fn requests(n_req: usize, max_new: usize, vocab: usize) -> Vec<ServeRequest> {
    (0..n_req)
        .map(|i| {
            ServeRequest::new(
                i as u64,
                (0..2 + i % 3).map(|j| ((i * 13 + j * 7 + 2) % vocab) as u32).collect(),
                max_new,
            )
        })
        .collect()
}

/// The full-context `Generator` and the KV-cached `IncrementalDecoder`
/// must agree at every position, across several model shapes — the
/// incremental path is an optimization, not an approximation.
#[test]
fn prefill_and_incremental_paths_agree_across_configs() {
    let configs = [
        ModelConfig { vocab: 24, seq: 10, hidden: 16, layers: 1, heads: 2 },
        ModelConfig { vocab: 32, seq: 8, hidden: 24, layers: 2, heads: 3 },
        ModelConfig { vocab: 48, seq: 12, hidden: 32, layers: 3, heads: 4 },
    ];
    for (ci, cfg) in configs.into_iter().enumerate() {
        let gpt = Gpt::new(cfg);
        let params = init_full_params(&cfg, 100 + ci as u64);
        let generator = Generator::new(&gpt, &params);
        let mut dec = IncrementalDecoder::new(&gpt, &params);
        let tokens: Vec<u32> = (0..cfg.seq).map(|i| ((i * 5 + 3) % cfg.vocab) as u32).collect();
        for pos in 0..cfg.seq {
            let inc = dec.feed(tokens[pos]).expect("in-vocab feed");
            // Left-pad with repeats of the first token, exactly as the
            // full-context path defines a short prompt.
            let mut ctx = vec![tokens[0]; cfg.seq - (pos + 1)];
            ctx.extend_from_slice(&tokens[..=pos]);
            // The padded prefix differs, so compare through a fresh
            // decoder fed the same padded window instead.
            let mut ref_dec = IncrementalDecoder::new(&gpt, &params);
            let mut last = Vec::new();
            for &t in &ctx {
                last = ref_dec.feed(t).expect("in-vocab feed");
            }
            let full = generator.next_token_logits(&ctx).expect("in-vocab context");
            for (a, b) in full.iter().zip(&last) {
                assert!(
                    (a - b).abs() <= 1e-4,
                    "config {ci} pos {pos}: prefill and incremental logits diverge ({a} vs {b})"
                );
            }
            // Only at the final position do the padded and unpadded
            // contexts coincide, making the live decoder comparable.
            if pos + 1 == cfg.seq {
                assert_eq!(inc, last, "final-position decoder states must be bitwise equal");
                assert_eq!(argmax(&full), argmax(&inc));
            }
        }
    }
}

/// Serving from stage-3 training shards produces bitwise-identical
/// greedy tokens to a full-replica single-process decode — the export
/// path loses nothing.
#[test]
fn exported_shards_serve_bitwise_identical_tokens() {
    let model = ModelConfig { vocab: 24, seq: 12, hidden: 16, layers: 2, heads: 2 };
    let params = init_full_params(&model, 9);
    let reqs = requests(5, 4, model.vocab);
    let want: Vec<Vec<u32>> = reqs.iter().map(|r| reference_greedy(&model, &params, r)).collect();

    // A 3-rank "training checkpoint" re-exported onto a 2-rank world.
    let train_part = Partitioner::new(params.len(), 3);
    let snaps: Vec<RankSnapshot> = (0..3)
        .map(|r| {
            let range = train_part.shard_range(r);
            RankSnapshot {
                rank: r as u32,
                world: 3,
                step: 7,
                shard_start: range.start as u64,
                shard_end: range.end as u64,
                master: params[range].to_vec(),
                opt_m: Vec::new(),
                opt_v: Vec::new(),
                opt_t: 7,
                scaler: None,
            }
        })
        .collect();
    let shards = export_inference_shards(&snaps, 2).expect("export tiles the master");
    let report = serve(&model, &shards, &reqs, &ServeConfig::default());
    report.check_ranks_agree().expect("SPMD lockstep");
    for (out, want) in report.outcomes().iter().zip(&want) {
        assert_eq!(&out.response().expect("admitted").tokens, want);
    }
}

/// Malformed requests come back as typed errors on every rank; the
/// well-formed requests in the same batch still complete. No panics.
#[test]
fn malformed_requests_get_typed_errors_end_to_end() {
    let model = ModelConfig { vocab: 24, seq: 12, hidden: 16, layers: 2, heads: 2 };
    let params = init_full_params(&model, 5);
    let mut reqs = requests(3, 3, model.vocab);
    reqs.push(ServeRequest::new(90, vec![99], 2));
    reqs.push(ServeRequest::new(91, vec![], 2));
    reqs.push(ServeRequest::new(92, vec![1; 12], 12)); // 12 + 12 − 1 > seq
    reqs.push(ServeRequest::new(93, vec![1], 0));

    for n in [1, 2, 3] {
        let report = serve(&model, &shard(&params, n), &reqs, &ServeConfig::default());
        report.check_ranks_agree().expect("SPMD lockstep");
        for rank in &report.ranks {
            let rej: Vec<_> = rank.outcomes.iter().filter_map(|o| o.rejection()).collect();
            assert_eq!(rej.len(), 4, "N={n}: all four malformed requests rejected");
            assert!(matches!(rej[0], ServeError::TokenOutOfVocab { token: 99, vocab: 24 }));
            assert!(matches!(rej[1], ServeError::EmptyPrompt));
            assert!(matches!(rej[2], ServeError::PromptTooLong { .. }));
            assert!(matches!(rej[3], ServeError::NoTokensRequested));
            let done = rank.outcomes.iter().filter(|o| o.response().is_some()).count();
            assert_eq!(done, 3, "N={n}: well-formed requests still complete");
        }
    }

    // And the decoder itself yields typed errors, not panics, for the
    // same failure classes.
    let gpt = Gpt::new(model);
    let mut dec = IncrementalDecoder::new(&gpt, &params);
    assert_eq!(
        dec.feed(99),
        Err(GenerateError::TokenOutOfVocab { token: 99, vocab: 24 })
    );
    for _ in 0..model.seq {
        dec.feed(1).expect("in-window feed");
    }
    assert_eq!(dec.feed(1), Err(GenerateError::ContextExhausted { seq: 12 }));
}

/// Gather traffic reconciles byte-exactly three ways: traffic counters,
/// trace byte tags, and the static `serve_step` plan.
#[test]
fn serving_traffic_matches_plan_and_trace_byte_exactly() {
    let model = ModelConfig { vocab: 24, seq: 12, hidden: 16, layers: 2, heads: 2 };
    let params = init_full_params(&model, 11);
    let reqs = requests(4, 3, model.vocab);
    for overlap in [false, true] {
        let cfg = ServeConfig { slots: 2, overlap, ..ServeConfig::default() };
        let report = serve(&model, &shard(&params, 3), &reqs, &cfg);
        for rank in &report.ranks {
            let want = report.expected_gather_bytes(rank.rank);
            assert_eq!(rank.gather_bytes, want, "overlap={overlap}: traffic vs plan");
            let traced = rank
                .timeline
                .bytes_named(SpanCategory::Collective, CollectiveKind::AllGather.name());
            assert_eq!(traced, want, "overlap={overlap}: trace vs plan");
        }
    }
}

/// Per-rank parameter memory stays within 4Ψ·(2/N + ε) for N ∈ {2, 4}:
/// the persistent shard is Ψ/N and the transient gather window is a
/// bounded double-buffer, not a full replica.
#[test]
fn per_rank_parameter_memory_is_bounded() {
    // Deep enough that one unit is a small fraction of Ψ.
    let model = ModelConfig { vocab: 32, seq: 16, hidden: 32, layers: 8, heads: 4 };
    let params = init_full_params(&model, 3);
    let full_bytes = 4.0 * params.len() as f64;
    let reqs = requests(3, 2, model.vocab);
    for n in [2usize, 4] {
        let report = serve(&model, &shard(&params, n), &reqs, &ServeConfig::default());
        let bound = full_bytes * (2.0 / n as f64 + 0.10);
        for rank in &report.ranks {
            assert_eq!(rank.shard_elems, Partitioner::new(params.len(), n).shard_range(rank.rank).len());
            assert!(
                (rank.param_bytes_peak as f64) <= bound,
                "N={n} rank {}: {} B exceeds 4Ψ(2/N+ε) = {bound:.0} B",
                rank.rank,
                rank.param_bytes_peak
            );
        }
    }
}

/// The serve plan gathers each layout unit exactly once per batch step
/// and schedules nothing else.
#[test]
fn serve_plan_gathers_each_unit_once() {
    let model = ModelConfig { vocab: 24, seq: 12, hidden: 16, layers: 2, heads: 2 };
    let layout_units = Gpt::new(model).layout().units().len();
    for n in [1usize, 2, 5] {
        let plan = CommPlan::serve_step(Gpt::new(model).layout(), n, true);
        assert_eq!(plan.ops().len(), layout_units);
        for rank in 0..n {
            let by_kind = plan.rank_bytes(rank);
            assert_eq!(
                by_kind[CollectiveKind::AllGather as usize],
                plan.total_rank_bytes(rank),
                "serving moves bytes only through all-gather"
            );
        }
    }
}
