//! The process fabric's end-to-end guarantees, exercised with real spawned
//! rank processes (the `zero-train --zero-worker` re-exec shim):
//!
//! * a clean multi-process run is bitwise identical — losses, eval, and
//!   per-kind communication volumes — to the in-process thread backend;
//! * the fault matrix's scripted crash cell behaves identically on both
//!   backends (same dead rank, same rollback point, same stitched losses);
//! * a rank killed with SIGKILL mid-run is detected, rolled back, and the
//!   resumed run is bitwise identical to a clean thread-backend resume
//!   from the same snapshot — with no orphaned worker processes left.

use std::path::{Path, PathBuf};

use zero::comm::{
    launch_with_stats, CollectiveKind, FaultPlan, Grid, TrafficSnapshot, ALL_KINDS,
};
use zero::core::supervisor::snapshot_dir_for;
use zero::core::{
    resume_from_snapshot, run_supervised, run_supervised_process, KillSpec,
    ProcessSupervisedReport, ProcessWorldOptions, RankEngine, SupervisorConfig, TrainSetup,
    WorkerCommand, ZeroConfig, ZeroStage,
};
use zero::model::{init_full_params, Gpt, ModelConfig, SyntheticCorpus};

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zero-procworld-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Global batch 12 divides evenly over 4, 3, and 2 ranks, so the schedule
/// survives shrinking the world.
fn setup(dp: usize, stage: ZeroStage) -> TrainSetup {
    TrainSetup {
        model: ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 },
        zero: ZeroConfig { stage, fp16: false, bucket_elems: 512, ..ZeroConfig::default() },
        grid: Grid::new(dp, 1),
        global_batch: 12,
        seed: 11,
    }
}

fn config(dir: &Path, dp: usize, stage: ZeroStage, steps: usize) -> SupervisorConfig {
    let mut cfg = SupervisorConfig::new(setup(dp, stage), steps, dir.to_path_buf());
    cfg.snapshot_every = 5;
    cfg
}

/// The re-exec worker: the `zero-train` binary dispatches into
/// `maybe_run_worker` when it sees the spec env var, and `--zero-worker`
/// marks the process for orphan detection.
fn worker() -> WorkerCommand {
    WorkerCommand {
        program: PathBuf::from(env!("CARGO_BIN_EXE_zero-train")),
        args: vec!["--zero-worker".into()],
    }
}

fn run_process(dir: &Path, cfg: &SupervisorConfig, kill: Option<KillSpec>) -> ProcessSupervisedReport {
    let mut opts = ProcessWorldOptions::new(worker(), dir.join("fabric"));
    opts.kill = kill;
    run_supervised_process(cfg, &opts)
}

/// Live `--zero-worker` processes other than our own (orphan check).
fn leaked_workers() -> usize {
    let me = std::process::id();
    let Ok(entries) = std::fs::read_dir("/proc") else { return 0 };
    entries
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok()?.parse::<u32>().ok())
        .filter(|pid| *pid != me)
        .filter(|pid| {
            std::fs::read(format!("/proc/{pid}/cmdline"))
                .map(|c| {
                    c.split(|b| *b == 0)
                        .any(|arg| arg == b"--zero-worker")
                })
                .unwrap_or(false)
        })
        .count()
}

/// Runs the worker's exact schedule (train steps + held-out eval) on the
/// in-process thread backend, returning each rank's traffic snapshot —
/// the reference the socket fabric's metering must match byte-for-byte.
fn thread_traffic_reference(setup: &TrainSetup, steps: usize) -> Vec<TrafficSnapshot> {
    let world = setup.grid.dp_degree();
    let local_batch = setup.global_batch / world;
    let corpus = SyntheticCorpus::generate(
        setup.model.vocab,
        (setup.global_batch * (setup.model.seq + 1) * (steps + 2)).max(10_000),
        setup.seed ^ 0x5EED,
    );
    let full_params = init_full_params(&setup.model, setup.seed);
    let (_, stats) = launch_with_stats(world, |comm| {
        let rank = comm.rank();
        let gpt = Gpt::new_mp(setup.model, 1);
        let mut engine = RankEngine::new(gpt, &full_params, setup.zero, setup.grid, comm);
        for step in 0..steps {
            let (ids, targets) =
                corpus.rank_batch(step, setup.global_batch, setup.model.seq, world, rank);
            engine
                .try_train_step(&ids, &targets, local_batch)
                .expect("clean reference step");
        }
        let (ids, targets) =
            corpus.rank_batch(steps + 1, setup.global_batch, setup.model.seq, world, rank);
        engine
            .try_eval_loss(&ids, &targets, local_batch)
            .expect("clean reference eval");
    });
    stats
}

#[test]
fn clean_run_is_bitwise_identical_across_backends() {
    let steps = 10;
    let thread_dir = unique_dir("clean-thread");
    let proc_dir = unique_dir("clean-proc");

    let thread = run_supervised(&config(&thread_dir, 4, ZeroStage::Two, steps));
    let process = run_process(&proc_dir, &config(&proc_dir, 4, ZeroStage::Two, steps), None);

    assert!(process.recoveries.is_empty(), "clean run must not recover");
    assert_eq!(process.final_world, 4);
    assert_eq!(process.losses.len(), thread.losses.len());
    for (i, (t, p)) in thread.losses.iter().zip(&process.losses).enumerate() {
        assert_eq!(t.to_bits(), p.to_bits(), "step {i}: thread {t} vs process {p}");
    }
    assert_eq!(
        thread.final_eval.to_bits(),
        process.final_eval.to_bits(),
        "eval: thread {} vs process {}",
        thread.final_eval,
        process.final_eval
    );

    // §7 volume parity: each rank's measured per-kind traffic on the
    // socket fabric equals the thread backend running the same schedule.
    let reference = thread_traffic_reference(&setup(4, ZeroStage::Two), steps);
    assert_eq!(process.traffic.len(), reference.len());
    for (rank, (proc_kinds, ref_snap)) in process.traffic.iter().zip(&reference).enumerate() {
        for kind in ALL_KINDS {
            let (bytes, msgs) = proc_kinds
                .iter()
                .find(|(name, _, _)| name == kind.name())
                .map(|(_, b, m)| (*b, *m))
                .unwrap_or((0, 0));
            assert_eq!(
                (bytes, msgs),
                (ref_snap.bytes(kind), ref_snap.messages(kind)),
                "rank {rank} {}: process fabric metered differently",
                kind.name()
            );
        }
        // The schedule actually communicates (a vacuous all-zero pass
        // would also "match").
        assert!(proc_kinds.iter().any(|(_, b, _)| *b > 0), "rank {rank} moved no bytes");
    }
}

#[test]
fn scripted_crash_cell_matches_thread_backend() {
    let steps = 20;
    let thread_dir = unique_dir("crash-thread");
    let proc_dir = unique_dir("crash-proc");

    // Same cell as the thread-backend acceptance scenario: rank 2 of 4
    // crashes in its step-7 overflow all-reduce.
    let mut thread_cfg = config(&thread_dir, 4, ZeroStage::Two, steps);
    thread_cfg.faults = FaultPlan::new().with_crash_at_kind(2, CollectiveKind::AllReduce, 7);
    let thread = run_supervised(&thread_cfg);

    let mut proc_cfg = config(&proc_dir, 4, ZeroStage::Two, steps);
    proc_cfg.faults = FaultPlan::new().with_crash_at_kind(2, CollectiveKind::AllReduce, 7);
    let process = run_process(&proc_dir, &proc_cfg, None);

    assert_eq!(process.recoveries.len(), 1);
    let (t, p) = (&thread.recoveries[0], &process.recoveries[0]);
    assert_eq!(p.failed_ranks, t.failed_ranks);
    assert_eq!((p.old_world, p.new_world), (t.old_world, t.new_world));
    assert_eq!(p.resumed_from_step, t.resumed_from_step);
    assert_eq!(process.final_world, thread.final_world);
    assert_eq!(process.losses.len(), steps);
    for (i, (a, b)) in thread.losses.iter().zip(&process.losses).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "step {i}: thread {a} vs process {b}");
    }
    assert_eq!(thread.final_eval.to_bits(), process.final_eval.to_bits());
    // Every surviving rank restored from the snapshot (trace evidence).
    assert!(
        process.restore_spans.iter().all(|&n| n >= 1),
        "final round must carry snapshot-restore spans, got {:?}",
        process.restore_spans
    );
}

#[test]
fn sigkilled_rank_recovers_bitwise_identical_to_clean_resume() {
    let steps = 20;
    let dir = unique_dir("kill9");

    let cfg = config(&dir, 4, ZeroStage::Two, steps);
    let report = run_process(&dir, &cfg, Some(KillSpec { rank: 2, after_step: 7 }));

    assert_eq!(report.recoveries.len(), 1, "exactly one recovery expected");
    let rec = &report.recoveries[0];
    assert_eq!(rec.failed_ranks, vec![2]);
    assert_eq!((rec.old_world, rec.new_world), (4, 3));
    assert_eq!(rec.resumed_from_step, 5);
    assert!(
        rec.failures.iter().any(|(r, m)| *r == 2 && m.contains("signal")),
        "the dead rank must be reported as signal-killed: {:?}",
        rec.failures
    );
    assert_eq!(report.final_world, 3);
    assert_eq!(report.losses.len(), steps);
    assert!(
        report.restore_spans.iter().all(|&n| n >= 1),
        "survivors must restore from the snapshot, got {:?}",
        report.restore_spans
    );

    // Control arm: a clean 3-rank thread-backend run resumed from the very
    // same snapshot files must reproduce the tail bit for bit.
    let (control, control_eval) =
        resume_from_snapshot(&setup(3, ZeroStage::Two), steps, &snapshot_dir_for(&dir, 5), 4);
    assert_eq!(control.len(), steps - 5);
    for (i, (a, b)) in report.losses[5..].iter().zip(&control).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "step {}: process {a} vs control {b}", 5 + i);
    }
    assert_eq!(report.final_eval.to_bits(), control_eval.to_bits());

    assert_eq!(leaked_workers(), 0, "orphaned --zero-worker processes remain");
}
