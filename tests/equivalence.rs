//! Convergence-equivalence tests: the paper's central correctness claim.
//!
//! "ZeRO … does not change the model optimization method or affect model
//! convergence" (§2.2.3): for the same seed and data order, DDP and every
//! ZeRO stage must produce the same parameter trajectory as a single
//! process, up to floating-point reassociation in the ring reductions.

use zero::comm::Grid;
use zero::core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero::model::ModelConfig;

const STEPS: usize = 4;

fn model() -> ModelConfig {
    ModelConfig {
        vocab: 32,
        seq: 8,
        hidden: 16,
        layers: 2,
        heads: 2,
    }
}

fn setup(stage: ZeroStage, dp: usize, mp: usize) -> TrainSetup {
    TrainSetup {
        model: model(),
        zero: ZeroConfig {
            bucket_elems: 777, // deliberately unaligned with unit sizes
            ..ZeroConfig::fp32_exact(stage)
        },
        grid: Grid::new(dp, mp),
        global_batch: 4,
        seed: 1234,
    }
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "parameter buffers differ in length");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

/// The single-process reference trajectory.
fn reference() -> (Vec<f32>, Vec<f32>) {
    let report = run_training(&setup(ZeroStage::Ddp, 1, 1), STEPS, 0);
    (report.gather_master_mp1(), report.losses.clone())
}

#[test]
fn ddp_matches_single_process() {
    let (ref_params, ref_losses) = reference();
    let report = run_training(&setup(ZeroStage::Ddp, 4, 1), STEPS, 0);
    let params = report.gather_master_mp1();
    let diff = max_abs_diff(&ref_params, &params);
    assert!(diff < 1e-4, "DDP diverged from single process: {diff}");
    for (a, b) in ref_losses.iter().zip(&report.losses) {
        assert!((a - b).abs() < 1e-4, "loss mismatch: {a} vs {b}");
    }
}

#[test]
fn zero_stage1_matches_single_process() {
    let (ref_params, _) = reference();
    let report = run_training(&setup(ZeroStage::One, 4, 1), STEPS, 0);
    let diff = max_abs_diff(&ref_params, &report.gather_master_mp1());
    assert!(diff < 1e-4, "ZeRO-1 diverged from single process: {diff}");
}

#[test]
fn zero_stage2_matches_single_process() {
    let (ref_params, _) = reference();
    let report = run_training(&setup(ZeroStage::Two, 4, 1), STEPS, 0);
    let diff = max_abs_diff(&ref_params, &report.gather_master_mp1());
    assert!(diff < 1e-4, "ZeRO-2 diverged from single process: {diff}");
}

#[test]
fn zero_stage3_matches_single_process() {
    let (ref_params, _) = reference();
    let report = run_training(&setup(ZeroStage::Three, 4, 1), STEPS, 0);
    let diff = max_abs_diff(&ref_params, &report.gather_master_mp1());
    assert!(diff < 1e-4, "ZeRO-3 diverged from single process: {diff}");
}

#[test]
fn all_stages_agree_with_each_other() {
    // Transitivity check at a different DP degree (2) and batch split.
    let reports: Vec<Vec<f32>> = [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three]
        .iter()
        .map(|&s| run_training(&setup(s, 2, 1), STEPS, 0).gather_master_mp1())
        .collect();
    for i in 1..reports.len() {
        let diff = max_abs_diff(&reports[0], &reports[i]);
        assert!(diff < 1e-4, "stage index {i} differs from DDP by {diff}");
    }
}

#[test]
fn checkpointing_does_not_change_the_trajectory() {
    // Recompute-in-backward must be bit-compatible with saved activations
    // (deterministic kernels, same inputs).
    let mut with = setup(ZeroStage::Two, 2, 1);
    with.zero.checkpoint_activations = true;
    let mut without = setup(ZeroStage::Two, 2, 1);
    without.zero.checkpoint_activations = false;
    let a = run_training(&with, STEPS, 0).gather_master_mp1();
    let b = run_training(&without, STEPS, 0).gather_master_mp1();
    let diff = max_abs_diff(&a, &b);
    assert_eq!(diff, 0.0, "checkpointing must be exactly neutral: {diff}");
}

#[test]
fn partitioned_activations_do_not_change_the_trajectory() {
    // P_a stores each checkpoint partitioned over the MP group and
    // all-gathers it back: values must be identical.
    let mut pa = setup(ZeroStage::Two, 2, 2);
    pa.zero.checkpoint_activations = true;
    pa.zero.partition_activations = true;
    let mut plain = setup(ZeroStage::Two, 2, 2);
    plain.zero.checkpoint_activations = true;
    let a = run_training(&pa, STEPS, 0);
    let b = run_training(&plain, STEPS, 0);
    for (x, y) in a.losses.iter().zip(&b.losses) {
        assert_eq!(x, y, "P_a must be exactly neutral to the loss");
    }
}

#[test]
fn cpu_offloaded_checkpoints_do_not_change_the_trajectory() {
    let mut pa_cpu = setup(ZeroStage::Two, 2, 2);
    pa_cpu.zero.checkpoint_activations = true;
    pa_cpu.zero.partition_activations = true;
    pa_cpu.zero.offload_checkpoints = true;
    let mut pa = setup(ZeroStage::Two, 2, 2);
    pa.zero.checkpoint_activations = true;
    pa.zero.partition_activations = true;
    let a = run_training(&pa_cpu, STEPS, 0);
    let b = run_training(&pa, STEPS, 0);
    for (x, y) in a.losses.iter().zip(&b.losses) {
        assert_eq!(x, y, "P_a+cpu must be exactly neutral to the loss");
    }
    // …and it must actually have moved bytes over the simulated PCIe link.
    assert!(
        a.ranks.iter().all(|r| r.cpu_transfer_bytes > 0),
        "offload should meter CPU transfers"
    );
    assert!(b.ranks.iter().all(|r| r.cpu_transfer_bytes == 0));
}

#[test]
fn model_parallel_matches_single_process() {
    // Pure MP (dp = 1, mp = 2), fp32: the Megatron-style sharded model
    // must train identically to the unsharded one.
    let (ref_params, ref_losses) = reference();
    let _ = ref_params; // parameters live in shard layouts; compare losses
    let report = run_training(&setup(ZeroStage::Ddp, 1, 2), STEPS, 0);
    for (a, b) in ref_losses.iter().zip(&report.losses) {
        assert!(
            (a - b).abs() < 2e-4,
            "MP loss trajectory diverged: {a} vs {b}"
        );
    }
}

#[test]
fn zero_plus_mp_matches_single_process() {
    // The paper's combined mode: MP within the "node", ZeRO-DP across.
    let (_, ref_losses) = reference();
    let report = run_training(&setup(ZeroStage::Two, 2, 2), STEPS, 0);
    for (a, b) in ref_losses.iter().zip(&report.losses) {
        assert!(
            (a - b).abs() < 2e-4,
            "ZeRO-2 × MP loss trajectory diverged: {a} vs {b}"
        );
    }
}

#[test]
fn bucket_size_does_not_change_results() {
    // CB is a pure communication-granularity knob.
    let mut small = setup(ZeroStage::Two, 4, 1);
    small.zero.bucket_elems = 64;
    let mut large = setup(ZeroStage::Two, 4, 1);
    large.zero.bucket_elems = 1 << 20;
    let a = run_training(&small, STEPS, 0).gather_master_mp1();
    let b = run_training(&large, STEPS, 0).gather_master_mp1();
    let diff = max_abs_diff(&a, &b);
    assert!(diff < 1e-5, "bucket size changed the trajectory by {diff}");
}

#[test]
fn checkpoint_interval_does_not_change_the_trajectory() {
    // §3.2's memory/recompute dial: any interval must be numerically
    // neutral — segments recompute exactly what the forward pass saw.
    let mut reference = setup(ZeroStage::Two, 2, 1);
    reference.zero.checkpoint_activations = true;
    reference.zero.checkpoint_interval = 1;
    let base = run_training(&reference, STEPS, 0).gather_master_mp1();
    for interval in [2usize, 3, 10] {
        let mut s = setup(ZeroStage::Two, 2, 1);
        s.zero.checkpoint_activations = true;
        s.zero.checkpoint_interval = interval;
        let got = run_training(&s, STEPS, 0).gather_master_mp1();
        let diff = max_abs_diff(&base, &got);
        assert_eq!(diff, 0.0, "interval {interval} changed the trajectory");
    }
}
