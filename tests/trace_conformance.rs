//! Trace conformance: recorded timelines vs. the analytic plan.
//!
//! The span recorder is only worth trusting if it reconciles with the
//! ground truth the rest of the repo already proves. Three statements:
//!
//! 1. **Byte-exact reconciliation** — for every stage × N, each rank's
//!    timeline holds exactly one collective span per `CommPlan` op, and
//!    the spans' byte tags sum per kind to the plan's per-rank volume
//!    AND to the communicator's independently metered traffic counters.
//! 2. **Memory reconciliation** — the `peak-device-bytes` counter track
//!    equals the `MemoryTracker` peak the report carries.
//! 3. **Overlap is visible** — with a modeled link latency, overlap mode
//!    shows compute∩collective intervals where synchronous mode shows
//!    none; the trace distinguishes the two schedules structurally.
//!
//! The Chrome export test closes the loop: the emitted JSON re-parses
//! and carries the schema (`ph`/`ts`/`dur`/`pid`/`cat`) with per-rank
//! monotonic timestamps.

use std::time::Duration;

use zero::comm::{Grid, WorldConfig};
use zero::core::{
    run_training, run_training_world, CommPlan, StepShape, TrainReport, TrainSetup, ZeroConfig,
    ZeroStage,
};
use zero::model::ModelConfig;
use zero_verify::TraceExpectation;

const STAGES: [ZeroStage; 4] =
    [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three];

fn model() -> ModelConfig {
    ModelConfig { vocab: 32, seq: 8, hidden: 16, layers: 2, heads: 2 }
}

fn zcfg(stage: ZeroStage, overlap: bool) -> ZeroConfig {
    ZeroConfig {
        stage,
        fp16: true,
        initial_loss_scale: 1.0, // keep every step clean
        checkpoint_activations: false,
        bucket_elems: 1000, // several flushes per backward
        overlap,
        ..ZeroConfig::default()
    }
}

fn setup(stage: ZeroStage, n: usize, overlap: bool) -> TrainSetup {
    TrainSetup {
        model: model(),
        zero: zcfg(stage, overlap),
        grid: Grid::new(n, 1),
        global_batch: n, // local batch 1 at every N
        seed: 5,
    }
}

/// Builds the analytic expectation for `rank` over a whole run: one
/// `train_step` plan per executed step (skip pattern included).
fn expectation(report: &TrainReport, s: &TrainSetup, rank: usize) -> TraceExpectation {
    let layout = zero::model::Layout::build(&s.model);
    let act_elems = s.model.seq * s.model.hidden;
    let mut want = TraceExpectation::default();
    for &skipped in &report.skipped {
        let plan = CommPlan::train_step(
            &layout,
            &s.zero,
            s.grid,
            &StepShape { micro_batches: 1, act_elems, skipped },
        );
        want.add_plan(&plan, rank, 1);
    }
    want
}

#[test]
fn timeline_reconciles_byte_exactly_with_plan_and_traffic() {
    let steps = 2;
    for stage in STAGES {
        for n in [2, 4] {
            for overlap in [false, true] {
                let s = setup(stage, n, overlap);
                let report = run_training(&s, steps, 0);
                assert_eq!(report.losses.len(), steps);
                for r in &report.ranks {
                    let want = expectation(&report, &s, r.rank);
                    zero_verify::check_timeline(&r.timeline, &want, Some(&r.traffic))
                        .unwrap_or_else(|e| {
                            panic!("{stage:?} n={n} overlap={overlap} rank {}: {e}", r.rank)
                        });
                }
            }
        }
    }
}

#[test]
fn offloaded_timeline_reconciles_tier_stream_byte_exactly() {
    // Offload adds a second span stream (SpanCategory::Tier). Every
    // movement must appear exactly once, byte-tagged with the plan's
    // per-rank volume, and the engine's TierStats meters must agree with
    // the same analytic volumes — three independent records, one number.
    let steps = 2;
    for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        for overlap in [false, true] {
            let mut s = setup(stage, 2, overlap);
            s.zero.tier = zero::core::TierConfig::budgeted(64 << 20);
            let report = run_training(&s, steps, 0);
            for r in &report.ranks {
                let want = expectation(&report, &s, r.rank);
                assert!(
                    want.tier_ops.iter().sum::<u64>() > 0,
                    "{stage:?} overlap={overlap}: offloaded plan must move tier bytes"
                );
                zero_verify::check_timeline(&r.timeline, &want, Some(&r.traffic))
                    .unwrap_or_else(|e| {
                        panic!("{stage:?} overlap={overlap} rank {}: {e}", r.rank)
                    });
                // TIER_LABELS order: param-fetch, publish-fetch, grad-spill.
                let fetch_want = want.tier_bytes[0] + want.tier_bytes[1];
                let spill_want = want.tier_bytes[2];
                assert_eq!(
                    r.tier.fetch_bytes, fetch_want,
                    "{stage:?} overlap={overlap} rank {}: metered fetch bytes",
                    r.rank
                );
                assert_eq!(
                    r.tier.spill_bytes, spill_want,
                    "{stage:?} overlap={overlap} rank {}: metered spill bytes",
                    r.rank
                );
                assert_eq!(
                    r.tier.fetch_ops + r.tier.spill_ops,
                    want.tier_ops.iter().sum::<u64>(),
                    "{stage:?} overlap={overlap} rank {}: tier op count",
                    r.rank
                );
            }
        }
    }
}

#[test]
fn peak_memory_counter_matches_report() {
    for stage in STAGES {
        let s = setup(stage, 2, false);
        let report = run_training(&s, 2, 0);
        for r in &report.ranks {
            assert_eq!(
                r.timeline.counter_max("peak-device-bytes"),
                Some(r.peak_device_bytes),
                "{stage:?} rank {}: counter track must mirror MemoryTracker peak",
                r.rank
            );
        }
    }
}

#[test]
fn peak_memory_counter_matches_report_under_offload() {
    // The budget proof's observable face: the counter track the trace
    // carries equals the MemoryTracker peak, and both sit inside the
    // enforced device budget.
    let budget = 64u64 << 20;
    for stage in [ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        let mut s = setup(stage, 2, false);
        s.zero.tier = zero::core::TierConfig::budgeted(budget);
        let report = run_training(&s, 2, 0);
        for r in &report.ranks {
            assert_eq!(
                r.timeline.counter_max("peak-device-bytes"),
                Some(r.peak_device_bytes),
                "{stage:?} rank {}: counter track must mirror MemoryTracker peak",
                r.rank
            );
            assert!(
                r.peak_device_bytes <= budget,
                "{stage:?} rank {}: peak {} exceeds enforced budget {budget}",
                r.rank,
                r.peak_device_bytes
            );
        }
    }
}

/// A short run over a fabric with real per-hop link latency, so in-flight
/// collectives occupy measurable wall-clock on the progress thread.
fn run_latent(stage: ZeroStage, overlap: bool) -> TrainReport {
    let s = TrainSetup {
        model: model(),
        zero: ZeroConfig {
            bucket_elems: 512, // flush mid-backward, not once at the end
            ..zcfg(stage, overlap)
        },
        grid: Grid::new(2, 1),
        global_batch: 2,
        seed: 5,
    };
    run_training_world(&s, 3, 0, WorldConfig::with_link_latency(Duration::from_micros(200)))
}

#[test]
fn synchronous_schedule_shows_no_compute_collective_overlap() {
    for stage in STAGES {
        let report = run_latent(stage, false);
        for r in &report.ranks {
            let windows = r.timeline.compute_collective_overlap();
            assert!(
                windows.is_empty(),
                "{stage:?} rank {}: sync run must not overlap compute with \
                 byte-moving collectives, found {} windows",
                r.rank,
                windows.len()
            );
        }
    }
}

#[test]
fn overlap_schedule_shows_compute_collective_overlap() {
    // Stages 2 and 3 move gradient/parameter traffic while backward (and,
    // for stage 3 prefetch, forward) compute proceeds; the trace must
    // expose at least one genuine overlap window on every rank. Overlap
    // needs both threads actually running concurrently, so under a loaded
    // test host a single run can miss — retry a few times before calling
    // the schedule broken.
    for stage in [ZeroStage::Two, ZeroStage::Three] {
        let mut ok = false;
        for _attempt in 0..3 {
            let report = run_latent(stage, true);
            for r in &report.ranks {
                for &(start, end) in &r.timeline.compute_collective_overlap() {
                    assert!(start < end, "degenerate overlap window {start}..{end}");
                }
            }
            ok = report
                .ranks
                .iter()
                .all(|r| r.timeline.compute_collective_overlap_ns() > 0);
            if ok {
                break;
            }
        }
        assert!(
            ok,
            "{stage:?}: overlap run recorded no compute∩collective window on \
             some rank in 3 attempts"
        );
    }
}

#[test]
fn chrome_export_roundtrips_with_schema() {
    let s = setup(ZeroStage::Three, 2, true);
    let report = run_training(&s, 2, 0);
    let timelines: Vec<_> = report.ranks.iter().map(|r| r.timeline.clone()).collect();
    let json = zero::trace::chrome_trace(&timelines);

    // Emit to a scratch file and re-parse from disk — the same path a
    // user's `zero-train --trace` output takes into chrome://tracing.
    let dir = std::env::temp_dir().join(format!("zero-trace-schema-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tempdir");
    let path = dir.join("trace.json");
    std::fs::write(&path, &json).expect("write trace");
    let raw = std::fs::read_to_string(&path).expect("read trace back");
    let doc = serde_json::from_str(&raw).expect("emitted trace must parse");
    std::fs::remove_dir_all(&dir).ok();

    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    let total: usize =
        timelines.iter().map(|t| t.spans.len() + t.instants.len() + t.counters.len()).sum();
    assert_eq!(events.len(), total, "one event per span/instant/counter");

    let cats: Vec<&str> =
        zero::trace::ALL_CATEGORIES.iter().map(|c| c.name()).collect();
    let mut last_ts = vec![f64::NEG_INFINITY; timelines.len()];
    let mut seen_cats = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph field");
        assert!(["X", "i", "C"].contains(&ph), "unknown phase {ph}");
        let cat = ev.get("cat").and_then(|v| v.as_str()).expect("cat field");
        assert!(
            cats.contains(&cat) || cat == "counter",
            "unknown category {cat}"
        );
        seen_cats.insert(cat.to_string());
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some(), "name field");
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("ts field");
        let pid = ev.get("pid").and_then(|v| v.as_u64()).expect("pid field") as usize;
        assert!(pid < timelines.len(), "pid must be a rank index, got {pid}");
        assert!(ev.get("tid").and_then(|v| v.as_u64()).is_some(), "tid field");
        assert!(
            ts >= last_ts[pid],
            "rank {pid}: timestamps must be non-decreasing ({ts} after {})",
            last_ts[pid]
        );
        last_ts[pid] = ts;
        if ph == "X" {
            assert!(ev.get("dur").and_then(|v| v.as_f64()).is_some(), "X events carry dur");
            assert!(
                ev.get("args").and_then(|a| a.get("bytes")).and_then(|b| b.as_u64()).is_some(),
                "span events carry a bytes tag"
            );
        }
    }
    // The full taxonomy shows up in a stage-3 overlap run: compute,
    // collective, wait, optimizer spans plus the counter track.
    for want in ["compute", "collective", "wait", "optimizer", "counter"] {
        assert!(seen_cats.contains(want), "export must contain {want} events, got {seen_cats:?}");
    }
}
