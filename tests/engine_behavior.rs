//! Engine behavior under stress: loss-scaler overflow recovery, parameter
//! freezing on skipped steps, gradient accumulation semantics, and the
//! optimizer-choice (K multiplier) memory footprints.

use zero::comm::{launch, Grid};
use zero::core::{
    run_training, OptimizerKind, RankEngine, TrainSetup, ZeroConfig, ZeroStage,
};
use zero::model::{init_full_params, Gpt, ModelConfig, SyntheticCorpus};
use zero::optim::{AdamConfig, SgdConfig};

fn model() -> ModelConfig {
    ModelConfig {
        vocab: 32,
        seq: 8,
        hidden: 16,
        layers: 2,
        heads: 2,
    }
}

#[test]
fn overflow_skips_step_and_scaler_recovers() {
    // An absurd initial loss scale forces fp16 gradient overflow; the
    // scaler must skip updates and halve until training proceeds.
    let cfg = model();
    let outcomes = launch(2, |comm| {
        let gpt = Gpt::new(cfg);
        let params = init_full_params(&cfg, 4);
        let zcfg = ZeroConfig {
            stage: ZeroStage::Two,
            fp16: true,
            initial_loss_scale: 1e30,
            ..ZeroConfig::default()
        };
        let mut engine = RankEngine::new(gpt, &params, zcfg, Grid::new(2, 1), comm);
        let corpus = SyntheticCorpus::generate(cfg.vocab, 5000, 1);
        let master_before = engine.master_params().to_vec();
        let mut results = Vec::new();
        for step in 0..120 {
            let (ids, targets) = corpus.rank_batch(step, 2, cfg.seq, 2, engine.dp_rank());
            let out = engine.train_step(&ids, &targets, 1);
            if step == 0 {
                // First step must have overflowed and left parameters
                // untouched.
                assert!(out.skipped, "1e30 scale must overflow");
                assert_eq!(engine.master_params(), &master_before[..]);
            }
            results.push(out);
        }
        results
    });
    let r0 = &outcomes[0];
    assert!(r0[0].skipped);
    assert!(
        r0.iter().any(|o| !o.skipped),
        "scaler should back off until steps succeed"
    );
    let first_clean = r0.iter().position(|o| !o.skipped).unwrap();
    // After recovery, the vast majority of steps proceed (the scaler may
    // still occasionally back off near the overflow boundary — that is
    // its job).
    let clean = r0[first_clean..].iter().filter(|o| !o.skipped).count();
    let tail = r0.len() - first_clean;
    assert!(
        clean * 10 >= tail * 8,
        "only {clean}/{tail} clean steps after recovery"
    );
    // The scale halved at least ~66 times to get under fp16 range.
    assert!(r0[first_clean].loss_scale < 1e10);
}

#[test]
fn gradient_accumulation_equals_bigger_batch() {
    // One step over [micro1, micro2] must equal one step over the
    // concatenated batch (fp32, mean losses and mean gradients agree).
    let cfg = model();
    let corpus = SyntheticCorpus::generate(cfg.vocab, 5000, 7);
    let (ids, targets) = corpus.batch(0, 4, cfg.seq);
    let half = 2 * cfg.seq;

    let masters = launch(1, |comm| {
        let gpt = Gpt::new(cfg);
        let params = init_full_params(&cfg, 9);
        let zcfg = ZeroConfig::fp32_exact(ZeroStage::Two);
        let mut engine = RankEngine::new(gpt, &params, zcfg, Grid::new(1, 1), comm);
        let micros = [
            (&ids[..half], &targets[..half]),
            (&ids[half..], &targets[half..]),
        ];
        let out = engine.train_step_micro(&micros, 2);
        (engine.master_params().to_vec(), out.loss)
    });
    let (accum_master, accum_loss) = masters[0].clone();

    let full = launch(1, |comm| {
        let gpt = Gpt::new(cfg);
        let params = init_full_params(&cfg, 9);
        let zcfg = ZeroConfig::fp32_exact(ZeroStage::Two);
        let mut engine = RankEngine::new(gpt, &params, zcfg, Grid::new(1, 1), comm);
        let out = engine.train_step(&ids, &targets, 4);
        (engine.master_params().to_vec(), out.loss)
    });
    let (full_master, full_loss) = full[0].clone();

    assert!(
        (accum_loss - full_loss).abs() < 1e-5,
        "losses: {accum_loss} vs {full_loss}"
    );
    let max_diff = accum_master
        .iter()
        .zip(&full_master)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0_f32, f32::max);
    assert!(max_diff < 1e-5, "accumulation diverged by {max_diff}");
}

#[test]
fn accumulation_across_stages_is_consistent() {
    let cfg = model();
    let corpus = SyntheticCorpus::generate(cfg.vocab, 5000, 3);
    let run = |stage: ZeroStage| {
        let corpus = &corpus;
        let masters = launch(2, move |comm| {
            let gpt = Gpt::new(cfg);
            let params = init_full_params(&cfg, 5);
            let zcfg = ZeroConfig::fp32_exact(stage);
            let mut engine = RankEngine::new(gpt, &params, zcfg, Grid::new(2, 1), comm);
            for step in 0..3 {
                let (a_ids, a_tg) = corpus.rank_batch(2 * step, 4, cfg.seq, 2, engine.dp_rank());
                let (b_ids, b_tg) =
                    corpus.rank_batch(2 * step + 1, 4, cfg.seq, 2, engine.dp_rank());
                let micros = [(&a_ids[..], &a_tg[..]), (&b_ids[..], &b_tg[..])];
                engine.train_step_micro(&micros, 2);
            }
            (engine.master_params().to_vec(), engine.master_range())
        });
        let mut flat = vec![0.0; cfg.total_params()];
        for (m, r) in &masters {
            flat[r.clone()].copy_from_slice(&m[..r.len()]);
        }
        flat
    };
    let two = run(ZeroStage::Two);
    let three = run(ZeroStage::Three);
    let ddp = run(ZeroStage::Ddp);
    for (i, ((a, b), c)) in two.iter().zip(&three).zip(&ddp).enumerate() {
        assert!((a - b).abs() < 1e-4, "param {i}: stage2 {a} vs stage3 {b}");
        assert!((a - c).abs() < 1e-4, "param {i}: stage2 {a} vs ddp {c}");
    }
}

#[test]
fn optimizer_choice_sets_the_k_multiplier() {
    // §2.3: the optimizer decides K. Measured model states under DDP:
    // Adam (2+2+12)Ψ, SGD+momentum (2+2+8)Ψ, plain SGD (2+2+4)Ψ.
    let cfg = model();
    let psi = cfg.total_params() as u64;
    let run = |opt: OptimizerKind| {
        let setup = TrainSetup {
            model: cfg,
            zero: ZeroConfig {
                stage: ZeroStage::Ddp,
                fp16: true,
                optimizer: opt,
                ..ZeroConfig::default()
            },
            grid: Grid::new(2, 1),
            global_batch: 4,
            seed: 1,
        };
        run_training(&setup, 1, 0).ranks[0].peak_model_state_bytes
    };
    assert_eq!(run(OptimizerKind::Adam(AdamConfig::default())), 16 * psi);
    assert_eq!(
        run(OptimizerKind::Sgd(SgdConfig {
            lr: 0.01,
            momentum: 0.9
        })),
        12 * psi
    );
    assert_eq!(
        run(OptimizerKind::Sgd(SgdConfig {
            lr: 0.01,
            momentum: 0.0
        })),
        8 * psi
    );
}

#[test]
fn sgd_training_also_converges_under_zero() {
    let setup = TrainSetup {
        model: model(),
        zero: ZeroConfig {
            stage: ZeroStage::Two,
            fp16: false,
            initial_loss_scale: 1.0,
            optimizer: OptimizerKind::Sgd(SgdConfig {
                lr: 0.05,
                momentum: 0.9,
            }),
            ..ZeroConfig::default()
        },
        grid: Grid::new(2, 1),
        global_batch: 4,
        seed: 6,
    };
    let report = run_training(&setup, 25, 0);
    let first: f32 = report.losses[..5].iter().sum::<f32>() / 5.0;
    let last: f32 = report.losses[20..].iter().sum::<f32>() / 5.0;
    assert!(last < first, "SGD under ZeRO should learn: {first} -> {last}");
}

#[test]
fn eval_does_not_mutate_parameters_or_state() {
    let cfg = model();
    launch(2, |comm| {
        let gpt = Gpt::new(cfg);
        let params = init_full_params(&cfg, 8);
        let zcfg = ZeroConfig::default();
        let mut engine = RankEngine::new(gpt, &params, zcfg, Grid::new(2, 1), comm);
        let corpus = SyntheticCorpus::generate(cfg.vocab, 5000, 2);
        let (ids, targets) = corpus.rank_batch(0, 2, cfg.seq, 2, engine.dp_rank());
        let before = engine.master_params().to_vec();
        let l1 = engine.eval_loss(&ids, &targets, 1);
        let l2 = engine.eval_loss(&ids, &targets, 1);
        assert_eq!(l1, l2, "eval must be deterministic");
        assert_eq!(engine.master_params(), &before[..], "eval must not train");
        assert_eq!(engine.steps(), 0);
    });
}

#[test]
fn mixed_precision_trains_close_to_fp32() {
    // The whole point of the fp16 + fp32-master scheme: training quality
    // tracks fp32 closely.
    let mk = |fp16: bool| TrainSetup {
        model: model(),
        zero: ZeroConfig {
            stage: ZeroStage::Two,
            fp16,
            initial_loss_scale: 64.0,
            ..ZeroConfig::default()
        },
        grid: Grid::new(2, 1),
        global_batch: 4,
        seed: 13,
    };
    let fp16 = run_training(&mk(true), 20, 0);
    let fp32 = run_training(&mk(false), 20, 0);
    for (a, b) in fp16.losses.iter().zip(&fp32.losses) {
        assert!(
            (a - b).abs() < 0.05 * (1.0 + b.abs()),
            "fp16 {a} vs fp32 {b} drifted"
        );
    }
}

#[test]
fn hierarchical_all_reduce_matches_flat_in_training() {
    // Topology-aware DDP gradient reduction must be numerically
    // equivalent to the flat ring (up to reassociation — exact here
    // because both sum the same 4 values, grouped differently, on data
    // where f32 addition happens to associate; tolerance covers the rest).
    let mk = |node: Option<usize>| TrainSetup {
        model: model(),
        zero: ZeroConfig {
            node_size: node,
            ..ZeroConfig::fp32_exact(ZeroStage::Ddp)
        },
        grid: Grid::new(4, 1),
        global_batch: 4,
        seed: 31,
    };
    let flat = run_training(&mk(None), 4, 0);
    let hier = run_training(&mk(Some(2)), 4, 0);
    let a = flat.gather_master_mp1();
    let b = hier.gather_master_mp1();
    let diff = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0_f32, f32::max);
    assert!(diff < 1e-5, "hierarchical diverged by {diff}");
}

#[test]
fn lr_schedule_shapes_the_update_magnitudes() {
    use zero::optim::LrSchedule;
    // With warmup, the first update must be much smaller than the peak
    // update; losses must still fall.
    let mk = |sched: LrSchedule| TrainSetup {
        model: model(),
        zero: ZeroConfig {
            lr_schedule: sched,
            ..ZeroConfig::fp32_exact(ZeroStage::Two)
        },
        grid: Grid::new(2, 1),
        global_batch: 4,
        seed: 17,
    };
    let corpus_independent_delta = |sched: LrSchedule| -> (f32, f32) {
        let cfg = model();
        let corpus = SyntheticCorpus::generate(cfg.vocab, 5000, 9);
        let corpus = &corpus;
        let setup = mk(sched);
        let deltas = launch(2, move |comm| {
            let gpt = Gpt::new(cfg);
            let params = init_full_params(&cfg, 3);
            let mut engine = RankEngine::new(gpt, &params, setup.zero, setup.grid, comm);
            let before = engine.master_params().to_vec();
            let (ids, tg) = corpus.rank_batch(0, 4, cfg.seq, 2, engine.dp_rank());
            engine.train_step(&ids, &tg, 2);
            let after_first: f32 = engine
                .master_params()
                .iter()
                .zip(&before)
                .map(|(a, b)| (a - b).abs())
                .sum();
            let mid = engine.master_params().to_vec();
            for step in 1..10 {
                let (ids, tg) = corpus.rank_batch(step, 4, cfg.seq, 2, engine.dp_rank());
                engine.train_step(&ids, &tg, 2);
            }
            let _ = mid;
            (after_first, 0.0)
        });
        deltas[0]
    };
    let (warm_first, _) = corpus_independent_delta(LrSchedule::Warmup { warmup: 10 });
    let (const_first, _) = corpus_independent_delta(LrSchedule::Constant);
    assert!(
        warm_first < 0.2 * const_first,
        "warmup first update {warm_first} should be ~1/10 of constant {const_first}"
    );
}

#[test]
fn dropout_trains_and_is_neutral_at_zero() {
    // p = 0 must be bit-identical to the no-dropout path; p > 0 must
    // change the trajectory, remain finite, and stay exactly compatible
    // with checkpoint recompute (same masks regenerated).
    let mk = |p: f32, ckpt: bool| TrainSetup {
        model: model(),
        zero: ZeroConfig {
            dropout: p,
            checkpoint_activations: ckpt,
            ..ZeroConfig::fp32_exact(ZeroStage::Two)
        },
        grid: Grid::new(2, 1),
        global_batch: 4,
        seed: 23,
    };
    let zero_a = run_training(&mk(0.0, false), 4, 0).gather_master_mp1();
    let zero_b = run_training(&mk(0.0, true), 4, 0).gather_master_mp1();
    assert_eq!(zero_a, zero_b, "p = 0 must be exactly neutral");

    let dropped = run_training(&mk(0.2, false), 4, 0);
    assert!(dropped.losses.iter().all(|l| l.is_finite()));
    let dropped_params = dropped.gather_master_mp1();
    assert_ne!(zero_a, dropped_params, "dropout must perturb training");

    // Checkpoint recompute regenerates the identical masks.
    let d_ckpt = run_training(&mk(0.2, true), 4, 0).gather_master_mp1();
    assert_eq!(dropped_params, d_ckpt, "recompute must reuse the masks");
}

#[test]
fn dropout_masks_differ_across_steps() {
    // If masks were reused every step, dropout would act like a fixed
    // sparsity pattern; the per-step seeds must differ. Detect via the
    // spread of parameter updates: train twice with identical data —
    // deterministic engine means identical results; but a single step
    // with dropout twice in a row (same batch) must produce different
    // updates across the two steps.
    let cfg = model();
    let corpus = SyntheticCorpus::generate(cfg.vocab, 5000, 41);
    let corpus = &corpus;
    let deltas = launch(1, move |comm| {
        let gpt = Gpt::new(cfg);
        let params = init_full_params(&cfg, 2);
        let zcfg = ZeroConfig {
            dropout: 0.3,
            ..ZeroConfig::fp32_exact(ZeroStage::Ddp)
        };
        let mut engine = RankEngine::new(gpt, &params, zcfg, Grid::new(1, 1), comm);
        let (ids, tg) = corpus.batch(0, 2, cfg.seq);
        let p0 = engine.master_params().to_vec();
        engine.train_step(&ids, &tg, 2);
        let p1 = engine.master_params().to_vec();
        engine.train_step(&ids, &tg, 2); // same data again
        let p2 = engine.master_params().to_vec();
        let d1: Vec<f32> = p1.iter().zip(&p0).map(|(a, b)| a - b).collect();
        let d2: Vec<f32> = p2.iter().zip(&p1).map(|(a, b)| a - b).collect();
        (d1, d2)
    });
    let (d1, d2) = &deltas[0];
    // Same data, different masks: update *directions* must differ in some
    // coordinates beyond Adam-state drift alone would explain. Use sign
    // flips as a coarse detector.
    let flips = d1
        .iter()
        .zip(d2)
        .filter(|(a, b)| a.signum() != b.signum() && a.abs() > 1e-7 && b.abs() > 1e-7)
        .count();
    assert!(flips > 0, "expected mask variation to flip some update signs");
}
