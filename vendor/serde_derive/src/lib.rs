//! Minimal offline stand-in for `serde_derive`.
//!
//! Hand-parses the item token stream (no `syn`/`quote` available offline) and
//! emits a direct-to-JSON [`serde::Serialize`] impl. Supported item shapes are
//! exactly what this workspace derives on: named-field structs without
//! generics, and enums whose variants are all unit variants. Anything else
//! produces a `compile_error!` naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Derives the stand-in `serde::Serialize` (direct JSON writer).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(Item::Struct { name, fields }) => {
            let mut body = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "out.push_str(\"\\\"{f}\\\":\");\n\
                     ::serde::Serialize::json_into(&self.{f}, out);\n"
                ));
            }
            body.push_str("out.push('}');");
            emit_impl("Serialize", &name, &body)
        }
        Ok(Item::Enum { name, variants }) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => out.push_str(\"\\\"{v}\\\"\"),\n"))
                .collect();
            emit_impl("Serialize", &name, &format!("match self {{\n{arms}}}"))
        }
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the stand-in `serde::Deserialize` (marker trait only).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(Item::Struct { name, .. }) | Ok(Item::Enum { name, .. }) => {
            format!("impl ::serde::Deserialize for {name} {{}}")
                .parse()
                .expect("generated impl must parse")
        }
        Err(msg) => compile_error(&msg),
    }
}

fn emit_impl(trait_name: &str, type_name: &str, body: &str) -> TokenStream {
    format!(
        "impl ::serde::{trait_name} for {type_name} {{\n\
             fn json_into(&self, out: &mut ::std::string::String) {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl must parse")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error must parse")
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut toks = input.into_iter().peekable();

    skip_attrs_and_vis(&mut toks);

    let kind = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("serde stub: expected struct/enum, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("serde stub: expected type name, got {other:?}")),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub: generic type `{name}` is not supported by the vendored derive"
        ));
    }
    let body = match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "serde stub: `{name}` must have a braced body (tuple/unit items unsupported), got {other:?}"
            ))
        }
    };

    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_unit_variants(body)?,
        }),
        k => Err(format!("serde stub: cannot derive for `{k}` items")),
    }
}

fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            // `#[...]` attribute (doc comments included).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the bracket group
            }
            // `pub`, optionally `pub(...)`.
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if matches!(
                    toks.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut toks = body.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let field = match toks.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("serde stub: expected field name, got {other:?}")),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "serde stub: expected `:` after field `{field}` (tuple structs unsupported), got {other:?}"
                ))
            }
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        // Parens/brackets/braces arrive as whole groups, so only `<`/`>`
        // need explicit depth tracking.
        let mut depth = 0i32;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut toks = body.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs_and_vis(&mut toks);
        let variant = match toks.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("serde stub: expected variant name, got {other:?}")),
        };
        match toks.next() {
            None => {
                variants.push(variant);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(variant),
            other => {
                return Err(format!(
                    "serde stub: variant `{variant}` carries data ({other:?}); only unit variants are supported"
                ))
            }
        }
    }
    Ok(variants)
}
