//! Minimal offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so the workspace vendors
//! the few entry points it actually uses: `StdRng::seed_from_u64`, the
//! `Rng` sampling methods, and `distributions::Uniform`. The generator is
//! xoshiro256** seeded through splitmix64 — deterministic across platforms,
//! which is all the reproduction's seeded-equivalence tests require (no
//! test depends on matching upstream `rand`'s exact stream).

/// Seedable generators (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods (API-compatible subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T` over its natural range (`[0,1)` for floats).
    fn gen<T: SampleUniformValue>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// A uniform sample from `[low, high)`.
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self.next_u64(), range.start, range.end)
    }
}

/// Types `Rng::gen` can produce.
pub trait SampleUniformValue {
    /// Maps 64 uniform bits onto the type's `gen` distribution.
    fn from_bits(bits: u64) -> Self;
}

impl SampleUniformValue for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 mantissa bits -> [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniformValue for f32 {
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleUniformValue for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl SampleUniformValue for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl SampleUniformValue for bool {
    fn from_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Types `Rng::gen_range` can produce.
pub trait SampleRange: Copy {
    /// Maps 64 uniform bits into `[low, high)`.
    fn sample_range(bits: u64, low: Self, high: Self) -> Self;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range(bits: u64, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high - low) as u64;
                low + (bits % span) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange for f32 {
    fn sample_range(bits: u64, low: Self, high: Self) -> Self {
        low + f32::from_bits_uniform(bits) * (high - low)
    }
}

impl SampleRange for f64 {
    fn sample_range(bits: u64, low: Self, high: Self) -> Self {
        low + f64::from_bits_uniform(bits) * (high - low)
    }
}

trait FromBitsUniform {
    fn from_bits_uniform(bits: u64) -> Self;
}
impl FromBitsUniform for f32 {
    fn from_bits_uniform(bits: u64) -> f32 {
        <f32 as SampleUniformValue>::from_bits(bits)
    }
}
impl FromBitsUniform for f64 {
    fn from_bits_uniform(bits: u64) -> f64 {
        <f64 as SampleUniformValue>::from_bits(bits)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** generator (the stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion, as upstream rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// A distribution sampleable with any [`Rng`].
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a closed or half-open interval.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl Uniform<f32> {
        /// Uniform over `[low, high]` (the closed-interval constructor).
        pub fn new_inclusive(low: f32, high: f32) -> Uniform<f32> {
            assert!(low <= high, "Uniform::new_inclusive: low > high");
            Uniform { low, high }
        }

        /// Uniform over `[low, high)`.
        pub fn new(low: f32, high: f32) -> Uniform<f32> {
            assert!(low < high, "Uniform::new: empty range");
            Uniform { low, high }
        }
    }

    impl Distribution<f32> for Uniform<f32> {
        fn sample<R: Rng>(&self, rng: &mut R) -> f32 {
            let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            self.low + u * (self.high - self.low)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }
}
