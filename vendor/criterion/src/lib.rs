//! Minimal offline stand-in for `criterion`.
//!
//! The registry is unreachable in this environment, so the workspace vendors
//! the benchmark-harness surface its `benches/` targets use. Statistical
//! machinery is intentionally absent: `Bencher::iter` executes the body a
//! small fixed number of times and reports the mean wall time, which keeps
//! `cargo bench` functional (smoke-level numbers) and — more importantly —
//! keeps every bench target compiling under `cargo test`/CI.

use std::time::{Duration, Instant};

/// Iterations per benchmark (a smoke run, not a statistical sample).
const ITERS: u32 = 3;

/// Top-level benchmark driver (API-compatible subset of `criterion::Criterion`).
pub struct Criterion {
    _sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stub ignores sample sizing.
    pub fn sample_size(mut self, n: usize) -> Self {
        self._sample_size = n;
        self
    }

    /// Accepted for API compatibility; the stub ignores measurement time.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores throughput labels.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores sample sizing.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), &mut f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.label), &bencher);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Times the benchmark body.
#[derive(Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Executes `f` [`ITERS`] times, accumulating wall time.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        for _ in 0..ITERS {
            let start = Instant::now();
            let out = f();
            self.elapsed += start.elapsed();
            drop(out);
            self.iters += 1;
        }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name qualified by a parameter value.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation (ignored by the stub).
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identity hint against over-optimisation (best-effort without intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    report(name, &bencher);
}

fn report(name: &str, bencher: &Bencher) {
    if bencher.iters == 0 {
        println!("bench {name:<48} (no iterations)");
    } else {
        let mean = bencher.elapsed / bencher.iters;
        println!("bench {name:<48} {mean:>12.2?}/iter ({} iters)", bencher.iters);
    }
}

/// Declares the group-runner function. Supports both the positional form
/// `criterion_group!(benches, f1, f2)` and the named form
/// `criterion_group!(name = benches; config = ...; targets = f1, f2)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("direct", |b| b.iter(|| black_box(2 + 2)));
        let mut g = c.benchmark_group("grouped");
        g.throughput(Throughput::Bytes(128));
        g.sample_size(10);
        g.bench_function(BenchmarkId::new("named", 7), |b| b.iter(|| 1));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group!(positional, sample_bench);
    criterion_group!(
        name = named;
        config = Criterion::default().sample_size(10);
        targets = sample_bench, sample_bench
    );

    #[test]
    fn both_group_forms_run() {
        positional();
        named();
    }
}
