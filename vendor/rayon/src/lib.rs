//! Minimal offline stand-in for `rayon`.
//!
//! The registry is unreachable in this environment, so the workspace
//! vendors the three parallel-iterator entry points the tensor/model
//! kernels use — `par_chunks_mut`, `par_iter`, `into_par_iter` — mapped to
//! their *sequential* std equivalents. The kernels' correctness does not
//! depend on parallel execution (each body owns a disjoint chunk), only
//! their throughput does; sequential execution keeps results bit-identical
//! while trading speed, which is acceptable for the test-scale models.

pub mod prelude {
    /// `par_chunks_mut` on mutable slices (sequential fallback).
    pub trait ParallelSliceMut<T> {
        /// Disjoint mutable chunks of `size`, as a std iterator.
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(size)
        }
    }

    /// `par_iter` on shared slices (sequential fallback).
    pub trait ParallelSlice<T> {
        /// Shared iteration, as a std iterator.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }

    /// `into_par_iter` on owned iterables (sequential fallback).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Owned iteration, as a std iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<I: IntoIterator> IntoParallelIterator for I {}
}

/// `rayon::join` (sequential fallback: runs `a` then `b`).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_visits_every_chunk() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn into_par_iter_collects_in_order() {
        let out: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, [0, 1, 4, 9, 16]);
    }
}
