//! Minimal offline stand-in for `serde_json`.
//!
//! Provides `to_string` / `to_string_pretty` over the vendored
//! direct-to-JSON `serde::Serialize` trait, plus a [`Value`] document model
//! with [`from_str`] parsing (the upstream `serde_json::Value` API subset
//! the workspace's trace round-trip tests rely on). Serialization of the
//! types this workspace derives cannot fail, so [`Error`] mostly exists to
//! satisfy the upstream-compatible `Result` signatures (and the `?`
//! conversion into `std::io::Error` that the simulator's result writer
//! relies on); parsing *does* produce real errors.

use serde::Serialize;

/// JSON serialization error (never produced by the stub, kept for API parity).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Result alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.json_into(&mut out);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON (upstream's pretty format).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indents compact JSON. Operates on the stub's own output, which never
/// contains insignificant whitespace outside string literals.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();

    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if matches!(chars.peek(), Some(&n) if n == matching_close(c)) {
                    out.push(chars.next().unwrap());
                } else {
                    indent += 1;
                    newline(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
    }
    out
}

fn matching_close(open: char) -> char {
    if open == '{' {
        '}'
    } else {
        ']'
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// A parsed JSON document (upstream `serde_json::Value` API subset).
///
/// Object keys keep insertion order (a `Vec` of pairs rather than a map —
/// ordered, duplicate-last-wins on [`Value::get`] is not needed because the
/// workspace only parses its own output, which never duplicates keys).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (integers up to 2^53 are exact).
    Number(f64),
    /// JSON string, unescaped.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects: `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64` if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a JSON document into a [`Value`], rejecting trailing garbage.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("non-ascii \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogates never appear in this workspace's
                            // output; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; find the char at this offset).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error("invalid utf-8 in string".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("bad number {text:?} at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_prints_nested_containers() {
        let compact = r#"{"a":[1,2],"b":{"c":"x,y: {z}","d":[]}}"#;
        let pretty = super::prettify(compact);
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": \"x,y: {z}\",\n    \"d\": []\n  }\n}"
        );
    }

    #[test]
    fn to_string_handles_primitives() {
        assert_eq!(super::to_string(&7u32).unwrap(), "7");
        assert_eq!(super::to_string("hi").unwrap(), "\"hi\"");
    }

    #[test]
    fn parses_nested_documents() {
        use super::Value;
        let v = super::from_str(
            r#" {"a": [1, 2.5, -3e2], "b": {"s": "x\n\"yA"}, "t": true, "n": null} "#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("s").unwrap().as_str(), Some("x\n\"yA"));
        assert_eq!(v.get("t").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("n"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_trailing_garbage_and_bad_syntax() {
        assert!(super::from_str("{}x").is_err());
        assert!(super::from_str("{\"a\":}").is_err());
        assert!(super::from_str("[1,]").is_err());
        assert!(super::from_str("\"open").is_err());
    }

    #[test]
    fn own_output_round_trips() {
        let compact = r#"{"name":"fwd \"q\"","ts":1.234,"pid":0,"ok":true}"#;
        let v = super::from_str(compact).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("fwd \"q\""));
        assert_eq!(v.get("ts").unwrap().as_f64(), Some(1.234));
        assert_eq!(v.get("pid").unwrap().as_u64(), Some(0));
        // The pretty printer's output parses to the same document.
        let pretty = super::prettify(compact);
        assert_eq!(super::from_str(&pretty).unwrap(), v);
    }
}
