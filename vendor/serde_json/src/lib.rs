//! Minimal offline stand-in for `serde_json`.
//!
//! Provides `to_string` / `to_string_pretty` over the vendored
//! direct-to-JSON `serde::Serialize` trait. Serialization of the types this
//! workspace derives cannot fail, so [`Error`] exists only to satisfy the
//! upstream-compatible `Result` signatures (and the `?` conversion into
//! `std::io::Error` that the simulator's result writer relies on).

use serde::Serialize;

/// JSON serialization error (never produced by the stub, kept for API parity).
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Result alias matching upstream.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.json_into(&mut out);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON (upstream's pretty format).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(prettify(&to_string(value)?))
}

/// Re-indents compact JSON. Operates on the stub's own output, which never
/// contains insignificant whitespace outside string literals.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();

    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                if matches!(chars.peek(), Some(&n) if n == matching_close(c)) {
                    out.push(chars.next().unwrap());
                } else {
                    indent += 1;
                    newline(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
    }
    out
}

fn matching_close(open: char) -> char {
    if open == '{' {
        '}'
    } else {
        ']'
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_prints_nested_containers() {
        let compact = r#"{"a":[1,2],"b":{"c":"x,y: {z}","d":[]}}"#;
        let pretty = super::prettify(compact);
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": \"x,y: {z}\",\n    \"d\": []\n  }\n}"
        );
    }

    #[test]
    fn to_string_handles_primitives() {
        assert_eq!(super::to_string(&7u32).unwrap(), "7");
        assert_eq!(super::to_string("hi").unwrap(), "\"hi\"");
    }
}
