//! Minimal offline stand-in for `proptest`.
//!
//! The registry is unreachable in this environment, so the workspace vendors
//! the subset it uses: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! `ProptestConfig::with_cases`, range strategies over ints and floats, and
//! `prop::collection::vec`. Cases are drawn from a deterministic per-test
//! seeded PRNG (no shrinking; a failing case reports its inputs via the
//! assertion message instead).

/// Runner configuration (API-compatible subset of `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!` family macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Deterministic xorshift PRNG used to draw test cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator (zero seeds are remapped to a fixed constant).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed },
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

/// FNV-1a over a test name, used as the per-test base seed.
pub fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Something that can produce a random value per test case.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i64, i32, i16, i8);

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + u * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for a `Vec` with element strategy `elem` and a length
        /// drawn from `len` (half-open, like upstream's size range).
        pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            elem: S,
            len: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Everything a `proptest!`-using test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines `#[test]` functions that run their body over random inputs.
///
/// Supports the two upstream forms this workspace uses: with and without a
/// leading `#![proptest_config(...)]` block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base = $crate::fnv1a(stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::new(
                        base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed on case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 1usize..10, x in -5.0f32..5.0) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-5.0..5.0).contains(&x), "{x} escaped");
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0usize..3, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 3));
            if v.is_empty() {
                return Ok(());
            }
            prop_assert_eq!(v.len(), v.len());
        }
    }

    #[test]
    fn prop_assert_produces_err_not_panic() {
        let run = || -> Result<(), TestCaseError> {
            prop_assert!(1 + 1 == 3, "forced failure {}", 42);
            Ok(())
        };
        let err = run().unwrap_err();
        assert!(err.to_string().contains("forced failure 42"));
    }
}
