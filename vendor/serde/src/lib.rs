//! Minimal offline stand-in for `serde`.
//!
//! The registry is unreachable in this environment, so the workspace vendors
//! the surface it uses: `derive(Serialize)` on plain structs/unit enums and
//! `serde_json::to_string_pretty`. Instead of upstream's serializer
//! abstraction, [`Serialize`] writes JSON directly into a string buffer —
//! sufficient because JSON is the only format this repo emits.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A type that can write itself as a JSON value.
///
/// Upstream serde is format-agnostic; this stand-in hard-wires JSON, which is
/// the only serialization the workspace performs (simulator result files).
pub trait Serialize {
    /// Appends this value's JSON representation to `out`.
    fn json_into(&self, out: &mut String);
}

/// Marker for types deriving `Deserialize`.
///
/// The workspace derives `Deserialize` on a few config structs but never
/// actually deserializes, so the stand-in keeps only the name.
pub trait Deserialize {}

macro_rules! serialize_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_into(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}
serialize_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

macro_rules! serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_into(&self, out: &mut String) {
                if self.is_finite() {
                    // Rust's float Display is shortest-round-trip, but bare
                    // integral floats print without a fractional part; keep
                    // them recognizably floating-point in the JSON.
                    let s = self.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Infinity/NaN; match serde_json's `null`.
                    out.push_str("null");
                }
            }
        }
    )*};
}
serialize_float!(f32, f64);

impl Serialize for str {
    fn json_into(&self, out: &mut String) {
        out.push('"');
        for c in self.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }
}

impl Serialize for String {
    fn json_into(&self, out: &mut String) {
        self.as_str().json_into(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_into(&self, out: &mut String) {
        (**self).json_into(out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_into(&self, out: &mut String) {
        self.as_slice().json_into(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn json_into(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.json_into(out);
        }
        out.push(']');
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_into(&self, out: &mut String) {
        self.as_slice().json_into(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_into(&self, out: &mut String) {
        match self {
            Some(v) => v.json_into(out),
            None => out.push_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn to_json<T: Serialize>(v: T) -> String {
        let mut s = String::new();
        v.json_into(&mut s);
        s
    }

    #[test]
    fn scalars_and_strings() {
        assert_eq!(to_json(42usize), "42");
        assert_eq!(to_json(-3i64), "-3");
        assert_eq!(to_json(true), "true");
        assert_eq!(to_json(1.5f64), "1.5");
        assert_eq!(to_json(2.0f32), "2.0");
        assert_eq!(to_json(f64::INFINITY), "null");
        assert_eq!(to_json("a\"b\n"), "\"a\\\"b\\n\"");
    }

    #[test]
    fn containers() {
        assert_eq!(to_json(vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(to_json(Option::<u32>::None), "null");
        assert_eq!(to_json(Some(7u32)), "7");
        assert_eq!(to_json("str"), "\"str\"");
    }
}
