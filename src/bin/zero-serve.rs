//! `zero-serve` — shard-hosted batched inference serving from the CLI.
//!
//! ```text
//! cargo run --release --bin zero-train -- --stage 3 --dp 4 --save ckpt/
//! cargo run --release --bin zero-serve -- --snapshots ckpt/ --ranks 2
//! cargo run --release --bin zero-serve -- --arrivals poisson:0.5 --slo-steps 64 --kv-block 8 --prefix-reuse
//! ```
//!
//! Loads a training checkpoint (any world size), exports the fp32 master
//! parameters onto `--ranks` serving shards, and serves a request
//! schedule with continuous batching. `--arrivals` switches from the
//! legacy closed batch to a seeded open-loop schedule in batch-step time
//! (`poisson:RATE` or `burst:SIZE@PERIOD`); `--kv-block`/`--prefix-reuse`
//! select the paged KV backend; `--slo-steps` arms admission control.
//! `--smoke` runs the gated self-checks (typed rejection of malformed
//! requests, byte-exact plan/trace/traffic reconciliation, bitwise
//! agreement with the single-process decoder and between KV backends,
//! the 2Ψ/N + ε memory bound) and exits non-zero on any failure.

use zero::comm::CollectiveKind;
use zero::core::{export_inference_shards, CommPlan, Partitioner, RankSnapshot};
use zero::model::{argmax, Gpt, IncrementalDecoder, ModelConfig};
use zero::serve::{serve, Arrivals, KvBackend, LoadConfig, ServeConfig, ServeRequest};
use zero::trace::SpanCategory;

struct Args(Vec<String>);

impl Args {
    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn maybe<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("zero-serve: FAIL: {msg}");
    std::process::exit(1);
}

/// Greedy reference through the single-process incremental decoder.
fn reference_greedy(model: &ModelConfig, params: &[f32], req: &ServeRequest) -> Vec<u32> {
    let gpt = Gpt::new(*model);
    let mut dec = IncrementalDecoder::new(&gpt, params);
    let mut last = Vec::new();
    for &t in &req.prompt {
        last = dec.feed(t).expect("reference prompt is well-formed");
    }
    let mut out = vec![argmax(&last) as u32];
    while out.len() < req.max_new_tokens {
        last = dec.feed(*out.last().unwrap()).expect("reference decode");
        out.push(argmax(&last) as u32);
    }
    out
}

fn main() {
    let args = Args(std::env::args().collect());
    if args.flag("--help") {
        println!(
            "zero-serve: batched inference from stage-3 parameter shards\n\
             \n\
             --snapshots DIR  checkpoint dir from `zero-train --save`\n\
                              (omitted: serve a freshly initialized model)\n\
             --ranks N        serving world size                 [2]\n\
             --slots N        concurrent-request batch capacity  [4]\n\
             --requests N     synthetic requests to serve        [8]\n\
             --max-new N      tokens generated per request       [8]\n\
             --arrivals DESC  open-loop schedule in batch-step time:\n\
                              closed | poisson:RATE | burst:SIZE@PERIOD  [closed]\n\
             --slo-steps N    shed requests whose predicted queue delay\n\
                              exceeds N batch steps (requires arrivals)\n\
             --kv-block N     paged KV with N-position blocks (0 = slab) [0]\n\
             --prefix-reuse   share prompt-prefix blocks between requests\n\
             --layers/--hidden/--heads/--seq/--vocab\n\
                              model shape (no-snapshot mode)\n\
             --seed N         init/request/schedule seed         [42]\n\
             --no-overlap     synchronous (non-prefetched) gathers\n\
             --smoke          run the gated self-checks, exit non-zero on failure"
        );
        return;
    }

    let smoke = args.flag("--smoke");
    let n: usize = args.get("--ranks", 2usize);
    let seed: u64 = args.get("--seed", 42u64);
    let snap_dir: String = args.get("--snapshots", String::new());

    // Parameters: a checkpoint, or a fresh init in the named shape.
    let (model, params) = if snap_dir.is_empty() {
        let model = ModelConfig {
            vocab: args.get("--vocab", 64usize),
            seq: args.get("--seq", 32usize),
            hidden: args.get("--hidden", 64usize),
            layers: args.get("--layers", if smoke { 8 } else { 4 }),
            heads: args.get("--heads", 4usize),
        };
        (model, zero::model::init_full_params(&model, seed))
    } else {
        let dir = std::path::Path::new(&snap_dir);
        let world = (0..)
            .take_while(|&r| RankSnapshot::path_for(dir, r).exists())
            .count();
        if world == 0 {
            fail(&format!("no rank_*.zero snapshots in {snap_dir}"));
        }
        let snaps = RankSnapshot::load_all(dir, world)
            .unwrap_or_else(|e| fail(&format!("loading {snap_dir}: {e}")));
        let full = export_inference_shards(&snaps, 1)
            .unwrap_or_else(|e| fail(&format!("exporting {snap_dir}: {e}")))
            .remove(0);
        let model = ModelConfig {
            vocab: args.get("--vocab", 64usize),
            seq: args.get("--seq", 32usize),
            hidden: args.get("--hidden", 64usize),
            layers: args.get("--layers", 2usize),
            heads: args.get("--heads", 4usize),
        };
        if model.total_params() != full.len() {
            fail(&format!(
                "snapshot holds {} params but the model shape needs {} — \
                 pass the training run's shape flags",
                full.len(),
                model.total_params()
            ));
        }
        (model, full)
    };

    // Shard for serving.
    let part = Partitioner::new(params.len(), n);
    let shards: Vec<Vec<f32>> = (0..n).map(|r| params[part.shard_range(r)].to_vec()).collect();

    let arrivals = {
        let desc: String = args.get("--arrivals", "closed".to_string());
        Arrivals::parse(&desc).unwrap_or_else(|e| fail(&e))
    };

    // The request schedule. With `--arrivals closed` (the default) a
    // legacy synthetic batch all arriving at step 0; otherwise a seeded
    // open-loop schedule in batch-step time. Under --smoke the batch
    // additionally includes one out-of-vocab and one over-length request
    // that MUST be rejected with typed errors while every rank keeps
    // serving.
    let n_req: usize = args.get("--requests", 8usize).max(if smoke { 8 } else { 1 });
    let max_new: usize = args.get("--max-new", 8usize).min(model.seq.saturating_sub(4)).max(1);
    let mut requests: Vec<ServeRequest> = if arrivals == Arrivals::Closed {
        (0..n_req)
            .map(|i| {
                ServeRequest::new(
                    i as u64,
                    (0..3 + i % 3)
                        .map(|j| ((seed as usize + i * 7 + j * 3) % model.vocab) as u32)
                        .collect(),
                    max_new,
                )
            })
            .collect()
    } else {
        zero::serve::generate(&LoadConfig {
            n_requests: n_req,
            arrivals,
            prompt_len: (3, (model.seq / 2).max(3)),
            max_new: (1, max_new),
            vocab: model.vocab,
            seed,
            shared_prefixes: 3,
            prefix_len: (model.seq / 4).max(2),
        })
    };
    if smoke {
        requests.push(ServeRequest::new(900, vec![model.vocab as u32 + 5], 2));
        requests.push(ServeRequest::new(901, vec![1; model.seq], model.seq));
    }

    let kv_block: usize = args.get("--kv-block", 0usize);
    let cfg = ServeConfig {
        slots: args.get("--slots", 4usize),
        overlap: !args.flag("--no-overlap"),
        kv: if kv_block == 0 {
            KvBackend::Slab
        } else {
            KvBackend::Paged { block: kv_block, prefix_reuse: args.flag("--prefix-reuse") }
        },
        slo_steps: args.maybe("--slo-steps"),
    };
    println!(
        "serving {} params over {n} ranks | {} requests ({}) | {} slots | kv {} | overlap {}",
        params.len(),
        requests.len(),
        arrivals.describe(),
        cfg.slots,
        match cfg.kv {
            KvBackend::Slab => "slab".to_string(),
            KvBackend::Paged { block, prefix_reuse } =>
                format!("paged:{block}{}", if prefix_reuse { "+reuse" } else { "" }),
        },
        cfg.overlap
    );
    let t0 = std::time::Instant::now();
    let report = serve(&model, &shards, &requests, &cfg);
    let dt = t0.elapsed();

    let completed: Vec<_> = report.outcomes().iter().filter_map(|o| o.response()).collect();
    let rejected = report.outcomes().len() - completed.len();
    let tokens: u64 = completed.iter().map(|r| r.decode_steps).sum();
    println!(
        "completed {} requests ({rejected} rejected/shed), {} tokens in {:.2?} \
         ({:.1} tok/s goodput) over {} batch steps",
        completed.len(),
        tokens,
        dt,
        tokens as f64 / dt.as_secs_f64(),
        report.ranks[0].batch_steps
    );
    for r in &report.ranks {
        println!(
            "  rank {}: shard {} B + transient peak {} B = {} B params, \
             {} B KV arena ({} B allocated, {} prefix rows reused), {} B gathered",
            r.rank,
            r.persistent_param_bytes,
            r.transient_param_bytes_peak,
            r.param_bytes_peak,
            r.kv_arena_bytes,
            r.kv_meters.bytes_allocated,
            r.kv_meters.prefix_hit_rows + r.kv_meters.prefix_cow_rows,
            r.gather_bytes
        );
    }

    if !smoke {
        return;
    }

    // ---- gated self-checks ----

    // 1. SPMD lockstep: identical outcomes on every rank.
    if let Err(e) = report.check_ranks_agree() {
        fail(&e);
    }

    // 2. Malformed requests got typed rejections; everything else ran.
    for out in report.outcomes() {
        match out.response() {
            Some(r) if r.id >= 900 => fail(&format!("malformed request {} completed", r.id)),
            None if out.rejection().is_none() => fail("outcome neither completed nor rejected"),
            _ => {}
        }
    }
    let rejections: Vec<_> = report
        .outcomes()
        .iter()
        .filter_map(|o| o.rejection())
        .collect();
    use zero::serve::ServeError;
    let typed = rejections
        .iter()
        .filter(|e| !matches!(e, ServeError::Overloaded { .. }))
        .count();
    if typed != 2 {
        fail(&format!("expected 2 typed malformed-request rejections, got {typed}"));
    }
    if !rejections.iter().any(|e| matches!(e, ServeError::TokenOutOfVocab { .. })) {
        fail("out-of-vocab request did not get TokenOutOfVocab");
    }
    if !rejections.iter().any(|e| matches!(e, ServeError::PromptTooLong { .. })) {
        fail("over-length request did not get PromptTooLong");
    }

    // 3. Trace and traffic reconcile byte-exactly with the static plan.
    for r in &report.ranks {
        let want = report.expected_gather_bytes(r.rank);
        if r.gather_bytes != want {
            fail(&format!(
                "rank {}: traffic counters say {} all-gather bytes, plan says {want}",
                r.rank, r.gather_bytes
            ));
        }
        let traced = r
            .timeline
            .bytes_named(SpanCategory::Collective, CollectiveKind::AllGather.name());
        if traced != want {
            fail(&format!(
                "rank {}: trace byte tags say {traced} all-gather bytes, plan says {want}",
                r.rank
            ));
        }
    }

    // 4. Bitwise agreement with the single-process incremental decoder.
    for (req, out) in requests.iter().zip(report.outcomes()) {
        if let Some(resp) = out.response() {
            let want = reference_greedy(&model, &params, req);
            if resp.tokens != want {
                fail(&format!("request {}: served tokens diverge from reference", req.id));
            }
        }
    }

    // 5. The §5.3 memory claim: per-rank parameter bytes ≤ 4Ψ·(2/N + ε).
    let full_bytes = 4.0 * params.len() as f64;
    let bound = full_bytes * (2.0 / n as f64 + 0.10);
    for r in &report.ranks {
        if r.param_bytes_peak as f64 > bound {
            fail(&format!(
                "rank {}: {} param bytes exceeds the 2Ψ/N+ε bound {:.0}",
                r.rank, r.param_bytes_peak, bound
            ));
        }
    }

    // 6. A plan sanity cross-check: one gather per unit, nothing else.
    let plan = CommPlan::serve_step(Gpt::new(model).layout(), n, cfg.overlap);
    if plan.ops().len() != model.layers + 2 {
        fail("serve plan does not gather each unit exactly once");
    }

    // 7. KV-backend equivalence. Without prefix reuse, paged KV is a
    // pure memory-layout change: the whole schedule — tokens, completion
    // steps, step count, rejections — must reproduce bit for bit. With
    // reuse on, prefill skipping may finish requests earlier (that is
    // the optimization), but the greedy tokens still must not move.
    let strict_cfg = ServeConfig {
        kv: KvBackend::Paged { block: kv_block.max(8), prefix_reuse: false },
        ..cfg
    };
    let strict = serve(&model, &shards, &requests, &strict_cfg);
    if let Err(e) = strict.check_ranks_agree() {
        fail(&e);
    }
    if strict.ranks[0].batch_steps != report.ranks[0].batch_steps {
        fail("paged KV (no reuse) changed the step count");
    }
    for (a, b) in report.outcomes().iter().zip(strict.outcomes()) {
        match (a.response(), b.response()) {
            (Some(ra), Some(rb)) => {
                if ra.tokens != rb.tokens || ra.completion_step != rb.completion_step {
                    fail(&format!("request {}: paged KV diverged from the slab", ra.id));
                }
            }
            (None, None) => {
                if a.rejection() != b.rejection() {
                    fail("paged KV changed a rejection reason");
                }
            }
            _ => fail("paged KV changed an outcome's terminal state"),
        }
    }
    let reuse_cfg = ServeConfig {
        kv: KvBackend::Paged { block: kv_block.max(8), prefix_reuse: true },
        ..cfg
    };
    let reuse = serve(&model, &shards, &requests, &reuse_cfg);
    if let Err(e) = reuse.check_ranks_agree() {
        fail(&e);
    }
    for (a, b) in report.outcomes().iter().zip(reuse.outcomes()) {
        if let (Some(ra), Some(rb)) = (a.response(), b.response()) {
            if ra.tokens != rb.tokens {
                fail(&format!("request {}: prefix reuse changed the tokens", ra.id));
            }
        }
    }

    println!(
        "smoke OK: rejection typing, plan/trace/traffic reconciliation, bitwise outputs, \
         memory bound, KV-backend equivalence"
    );
}
