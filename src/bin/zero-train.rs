//! `zero-train` — command-line trainer over the functional ZeRO engine.
//!
//! ```text
//! cargo run --release --bin zero-train -- \
//!     --stage 2 --dp 4 --mp 1 --layers 2 --hidden 64 --heads 4 \
//!     --seq 32 --vocab 64 --batch 16 --steps 100 --lr 1e-3
//! ```
//!
//! Prints per-step losses, then a memory/communication report per rank —
//! the full ZeRO experience (threads as GPUs) from one command.

use zero::comm::{CollectiveKind, Grid};
use zero::core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero::model::ModelConfig;
use zero::optim::AdamConfig;

struct Args(Vec<String>);

impl Args {
    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
}

fn main() {
    let args = Args(std::env::args().collect());
    if args.flag("--help") {
        println!(
            "zero-train: train a transformer with ZeRO (ranks are threads)\n\
             \n\
             --stage N      ZeRO stage: 0 (DDP), 1, 2, 3        [2]\n\
             --dp N         data-parallel degree                [4]\n\
             --mp N         model-parallel degree               [1]\n\
             --layers N     transformer blocks                  [2]\n\
             --hidden N     hidden dimension                    [64]\n\
             --heads N      attention heads                     [4]\n\
             --seq N        sequence length                     [32]\n\
             --vocab N      vocabulary size                     [64]\n\
             --batch N      global batch size                   [16]\n\
             --steps N      training steps                      [50]\n\
             --lr F         Adam learning rate                  [1e-3]\n\
             --seed N       init/data seed                      [42]\n\
             --fp32         disable mixed precision\n\
             --overlap      non-blocking collectives: overlap backward\n\
                            with reduce-scatter, prefetch stage-3 params\n\
             --no-checkpoint disable activation checkpointing\n\
             --pa           partition activation checkpoints (needs --mp > 1)\n\
             --pa-cpu       offload checkpoints to CPU (needs --pa)\n\
             --clip F       gradient-norm clip                  [off]\n\
             --text PATH    train on a text file (byte tokens, sets vocab 256)\n\
             --trace PATH   write a Chrome trace-event JSON of every rank's\n\
                            spans (open in chrome://tracing or Perfetto)\n\
             --save DIR     write per-rank parameter snapshots after training\n\
                            (feed to zero-serve --snapshots; needs --mp 1)"
        );
        return;
    }

    let text_path: String = args.get("--text", String::new());
    let model = ModelConfig {
        vocab: if text_path.is_empty() {
            args.get("--vocab", 64usize)
        } else {
            256
        },
        seq: args.get("--seq", 32usize),
        hidden: args.get("--hidden", 64usize),
        layers: args.get("--layers", 2usize),
        heads: args.get("--heads", 4usize),
    };
    let stage = match args.get("--stage", 2usize) {
        0 => ZeroStage::Ddp,
        1 => ZeroStage::One,
        2 => ZeroStage::Two,
        3 => ZeroStage::Three,
        s => {
            eprintln!("unknown stage {s} (expected 0-3)");
            std::process::exit(2);
        }
    };
    let clip = args.get("--clip", f64::NAN);
    let setup = TrainSetup {
        model,
        zero: ZeroConfig {
            stage,
            fp16: !args.flag("--fp32"),
            overlap: args.flag("--overlap"),
            checkpoint_activations: !args.flag("--no-checkpoint"),
            partition_activations: args.flag("--pa") || args.flag("--pa-cpu"),
            offload_checkpoints: args.flag("--pa-cpu"),
            clip_grad_norm: clip.is_finite().then_some(clip),
            optimizer: zero::core::OptimizerKind::Adam(AdamConfig {
                lr: args.get("--lr", 1e-3f32),
                ..AdamConfig::default()
            }),
            ..ZeroConfig::default()
        },
        grid: Grid::new(args.get("--dp", 4usize), args.get("--mp", 1usize)),
        global_batch: args.get("--batch", 16usize),
        seed: args.get("--seed", 42u64),
    };
    let steps = args.get("--steps", 50usize);

    println!(
        "model: {} params | {} | grid {}x{} | batch {} | {} steps",
        model.total_params(),
        setup.zero.stage.name(),
        setup.grid.dp_degree(),
        setup.grid.mp_degree(),
        setup.global_batch,
        steps
    );
    let t0 = std::time::Instant::now();
    let mut metrics = zero::core::TrainingMetrics::new((setup.global_batch * model.seq) as u64);
    let report = if text_path.is_empty() {
        run_training(&setup, steps, (steps / 5).max(1))
    } else {
        let text = std::fs::read_to_string(&text_path).expect("read --text file");
        let corpus = zero::model::ByteCorpus::from_text(&text);
        println!("training on {} bytes of text from {text_path}", corpus.len());
        zero::core::run_training_on(&setup, steps, (steps / 5).max(1), corpus.tokens())
    };
    let dt = t0.elapsed();
    for (i, &loss) in report.losses.iter().enumerate() {
        metrics.record(&zero::core::StepOutcome {
            loss,
            skipped: report.skipped[i],
            grad_norm: None,
            loss_scale: 1.0,
        });
    }

    for (i, loss) in report.losses.iter().enumerate() {
        if i < 3 || i + 3 >= report.losses.len() || (i + 1) % 10 == 0 {
            println!(
                "step {:>4}  loss {:.4}{}",
                i + 1,
                loss,
                if report.skipped[i] { "  (skipped: overflow)" } else { "" }
            );
        }
    }
    if !report.val_losses.is_empty() {
        println!(
            "validation loss: {:.4} → {:.4}",
            report.val_losses.first().unwrap(),
            report.val_losses.last().unwrap()
        );
    }
    println!("\nwall time: {:.2?} ({:.1} steps/s)", dt, steps as f64 / dt.as_secs_f64());
    println!("{}", metrics.summary());
    println!("\nper-rank report (rank 0):");
    let r = &report.ranks[0];
    println!("  model states (peak): {} bytes", r.peak_model_state_bytes);
    println!("  device total (peak): {} bytes", r.peak_device_bytes);
    let t = &r.traffic;
    println!(
        "  traffic: all-reduce {} B, reduce-scatter {} B, all-gather {} B, cpu {} B",
        t.bytes(CollectiveKind::AllReduce),
        t.bytes(CollectiveKind::ReduceScatter),
        t.bytes(CollectiveKind::AllGather),
        r.cpu_transfer_bytes,
    );
    let overlap_ns = r.timeline.compute_collective_overlap_ns();
    println!(
        "  compute/collective overlap: {:.3} ms total ({:.3} ms/step)",
        overlap_ns as f64 / 1e6,
        overlap_ns as f64 / 1e6 / steps as f64,
    );

    let save_dir: String = args.get("--save", String::new());
    if !save_dir.is_empty() {
        if setup.grid.mp_degree() != 1 {
            eprintln!("--save needs --mp 1 (model-parallel export is not supported)");
            std::process::exit(2);
        }
        let dir = std::path::Path::new(&save_dir);
        for r in &report.ranks {
            let snap = zero::core::RankSnapshot {
                rank: r.rank as u32,
                world: report.ranks.len() as u32,
                step: steps as u64,
                shard_start: r.shard_range.start as u64,
                shard_end: r.shard_range.end as u64,
                master: r.master.clone(),
                // Inference export: optimizer and scaler state stay behind.
                opt_m: Vec::new(),
                opt_v: Vec::new(),
                opt_t: steps as u64,
                scaler: None,
            };
            snap.save(dir).expect("write --save snapshot");
        }
        println!(
            "\nwrote {} parameter snapshots ({} params) to {save_dir}",
            report.ranks.len(),
            model.total_params()
        );
    }

    let trace_path: String = args.get("--trace", String::new());
    if !trace_path.is_empty() {
        let timelines: Vec<_> = report.ranks.iter().map(|r| r.timeline.clone()).collect();
        let json = zero::trace::chrome_trace(&timelines);
        // The export must round-trip: a trace nobody can load is worse
        // than no trace.
        if let Err(e) = serde_json::from_str(&json) {
            eprintln!("internal error: emitted trace does not parse: {e}");
            std::process::exit(1);
        }
        std::fs::write(&trace_path, &json).expect("write --trace file");
        let events = timelines
            .iter()
            .map(|t| t.spans.len() + t.instants.len() + t.counters.len())
            .sum::<usize>();
        println!(
            "\nwrote {} trace events ({} ranks) to {trace_path}",
            events,
            timelines.len()
        );
    }
}
