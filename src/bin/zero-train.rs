//! `zero-train` — command-line trainer over the functional ZeRO engine.
//!
//! ```text
//! cargo run --release --bin zero-train -- \
//!     --stage 2 --dp 4 --mp 1 --layers 2 --hidden 64 --heads 4 \
//!     --seq 32 --vocab 64 --batch 16 --steps 100 --lr 1e-3
//! ```
//!
//! Prints per-step losses, then a memory/communication report per rank —
//! the full ZeRO experience (threads as GPUs) from one command.

use zero::comm::{CollectiveKind, Grid};
use zero::core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero::model::ModelConfig;
use zero::optim::AdamConfig;

struct Args(Vec<String>);

impl Args {
    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
}

fn main() {
    // Worker dispatch must come first: when ZERO_WORKER_SPEC is set this
    // process *is* a rank of a process-fabric run and never returns here.
    zero::core::maybe_run_worker();
    let args = Args(std::env::args().collect());
    if args.flag("--help") {
        println!(
            "zero-train: train a transformer with ZeRO (ranks are threads)\n\
             \n\
             --stage N      ZeRO stage: 0 (DDP), 1, 2, 3        [2]\n\
             --dp N         data-parallel degree                [4]\n\
             --mp N         model-parallel degree               [1]\n\
             --layers N     transformer blocks                  [2]\n\
             --hidden N     hidden dimension                    [64]\n\
             --heads N      attention heads                     [4]\n\
             --seq N        sequence length                     [32]\n\
             --vocab N      vocabulary size                     [64]\n\
             --batch N      global batch size                   [16]\n\
             --steps N      training steps                      [50]\n\
             --lr F         Adam learning rate                  [1e-3]\n\
             --seed N       init/data seed                      [42]\n\
             --fp32         disable mixed precision\n\
             --overlap      non-blocking collectives: overlap backward\n\
                            with reduce-scatter, prefetch stage-3 params\n\
             --no-checkpoint disable activation checkpointing\n\
             --pa           partition activation checkpoints (needs --mp > 1)\n\
             --pa-cpu       offload checkpoints to CPU (needs --pa)\n\
             --clip F       gradient-norm clip                  [off]\n\
             --qwz          quantized int8 weight all-gather (stage 3)\n\
             --hpz          node-local secondary param partition: stage-3\n\
                            re-gathers resolve within the node (needs\n\
                            --dp divisible by --node-size)\n\
             --qgz          quantized all-to-all gradient reduce-scatter\n\
                            (stages 2-3): int8 across nodes, full\n\
                            precision within\n\
             --node-size N  ranks per modeled node for --hpz/--qgz  [2]\n\
             --quant-block N  int8 quantizer block size           [64]\n\
             --offload      memory-tier offload: optimizer state\n\
                            (stage >= 1), gradient shards (stage >= 2),\n\
                            and parameter shards (stage 3) live on the\n\
                            host tier, fetched/spilled around their\n\
                            anchor collectives (needs --mp 1, stage >= 1,\n\
                            no --qwz/--hpz/--qgz)\n\
             --device-budget B  device-tier byte budget the MemoryTracker\n\
                            enforces: any allocation past B panics, so a\n\
                            completed run proves peak <= B (implies\n\
                            --offload)                          [none]\n\
             --host-bw B    modeled host-link bandwidth, bytes/sec\n\
                            (0 = unthrottled)                   [0]\n\
             --host-lat-us N  modeled per-transfer host-link latency,\n\
                            microseconds                        [0]\n\
             --verify-offload  rerun the same config without offload and\n\
                            require bitwise-identical losses; with a\n\
                            --device-budget, also require the baseline's\n\
                            peak device bytes to EXCEED the budget the\n\
                            offloaded run provably stayed under\n\
             --fabric NAME  rank fabric: threads | process      [threads]\n\
                            process spawns one OS process per rank over\n\
                            Unix sockets, supervised with rollback+reshard\n\
             --kill R@S     (process fabric) SIGKILL rank R once it has\n\
                            completed S steps — real fault injection\n\
             --verify-recovery  (process fabric) after a recovery, rerun\n\
                            from the rollback snapshot on the thread\n\
                            backend and require bitwise-identical losses\n\
             --snapshot-every N  (process fabric) snapshot cadence  [5]\n\
             --run-dir DIR  (process fabric) scratch dir for sockets,\n\
                            snapshots, and worker results      [tempdir]\n\
             --text PATH    train on a text file (byte tokens, sets vocab 256)\n\
             --trace PATH   write a Chrome trace-event JSON of every rank's\n\
                            spans (open in chrome://tracing or Perfetto)\n\
             --save DIR     write per-rank parameter snapshots after training\n\
                            (feed to zero-serve --snapshots; needs --mp 1)"
        );
        return;
    }

    let text_path: String = args.get("--text", String::new());
    let model = ModelConfig {
        vocab: if text_path.is_empty() {
            args.get("--vocab", 64usize)
        } else {
            256
        },
        seq: args.get("--seq", 32usize),
        hidden: args.get("--hidden", 64usize),
        layers: args.get("--layers", 2usize),
        heads: args.get("--heads", 4usize),
    };
    let stage = match args.get("--stage", 2usize) {
        0 => ZeroStage::Ddp,
        1 => ZeroStage::One,
        2 => ZeroStage::Two,
        3 => ZeroStage::Three,
        s => {
            eprintln!("unknown stage {s} (expected 0-3)");
            std::process::exit(2);
        }
    };
    let clip = args.get("--clip", f64::NAN);
    let compression = zero::core::CompressionConfig {
        qwz: args.flag("--qwz"),
        hpz: args.flag("--hpz"),
        qgz: args.flag("--qgz"),
        node_size: args.get("--node-size", 2usize),
        block: args.get("--quant-block", 64usize),
    };
    let device_budget: u64 = args.get("--device-budget", u64::MAX);
    let tier = if args.flag("--offload") || device_budget != u64::MAX {
        zero::core::TierConfig {
            enabled: true,
            device_budget,
            host_bw: args.get("--host-bw", 0u64),
            host_lat: std::time::Duration::from_micros(args.get("--host-lat-us", 0u64)),
            depth: 1,
        }
    } else {
        zero::core::TierConfig::off()
    };
    let setup = TrainSetup {
        model,
        zero: ZeroConfig {
            stage,
            fp16: !args.flag("--fp32"),
            overlap: args.flag("--overlap"),
            checkpoint_activations: !args.flag("--no-checkpoint"),
            partition_activations: args.flag("--pa") || args.flag("--pa-cpu"),
            offload_checkpoints: args.flag("--pa-cpu"),
            clip_grad_norm: clip.is_finite().then_some(clip),
            compression,
            tier,
            optimizer: zero::core::OptimizerKind::Adam(AdamConfig {
                lr: args.get("--lr", 1e-3f32),
                ..AdamConfig::default()
            }),
            ..ZeroConfig::default()
        },
        grid: Grid::new(args.get("--dp", 4usize), args.get("--mp", 1usize)),
        global_batch: args.get("--batch", 16usize),
        seed: args.get("--seed", 42u64),
    };
    let steps = args.get("--steps", 50usize);

    if compression.any() {
        let eff = zero::core::EffectiveCompression::resolve(&setup.zero, setup.grid);
        println!(
            "compression: qwZ={} hpZ={} qgZ={} (node size {}, quant block {})",
            eff.qwz, eff.hpz, eff.qgz, eff.node_size, compression.block
        );
        if (compression.qwz && !eff.qwz)
            || (compression.hpz && !eff.hpz)
            || (compression.qgz && !eff.qgz)
        {
            eprintln!(
                "note: some requested levers are inactive — qwZ/hpZ need stage 3, qgZ \
                 needs stage 2+, all need --mp 1 and --dp divisible by --node-size"
            );
        }
    }

    if tier.enabled {
        // Fail with a usage message instead of the engine's panic.
        if setup.grid.mp_degree() != 1 || !stage.partitions_optimizer() || compression.any() {
            eprintln!(
                "--offload needs --mp 1, --stage 1/2/3, and no ZeRO++ levers \
                 (--qwz/--hpz/--qgz)"
            );
            std::process::exit(2);
        }
        let off = zero::core::EffectiveOffload::resolve(&setup.zero, setup.grid);
        println!(
            "offload: optimizer-state={} grad-shards={} param-shards={} | device budget {} | \
             host link {} B/s + {:?}",
            off.opt_state,
            off.grads,
            off.params,
            if tier.device_budget == u64::MAX {
                "unlimited".to_string()
            } else {
                format!("{} bytes", tier.device_budget)
            },
            if tier.host_bw == 0 { "inf".to_string() } else { tier.host_bw.to_string() },
            tier.host_lat,
        );
    } else if args.flag("--verify-offload") {
        eprintln!("--verify-offload needs --offload (or a --device-budget)");
        std::process::exit(2);
    }

    let fabric: String = args.get("--fabric", "threads".to_string());
    match fabric.as_str() {
        "threads" => {}
        "process" => {
            if args.flag("--verify-offload") {
                eprintln!("--verify-offload runs the thread backend (drop --fabric process)");
                std::process::exit(2);
            }
            run_process_fabric(&args, setup, steps);
            return;
        }
        other => {
            eprintln!("unknown fabric {other:?} (expected threads | process)");
            std::process::exit(2);
        }
    }

    println!(
        "model: {} params | {} | grid {}x{} | batch {} | {} steps",
        model.total_params(),
        setup.zero.stage.name(),
        setup.grid.dp_degree(),
        setup.grid.mp_degree(),
        setup.global_batch,
        steps
    );
    let t0 = std::time::Instant::now();
    let mut metrics = zero::core::TrainingMetrics::new((setup.global_batch * model.seq) as u64);
    let report = if text_path.is_empty() {
        run_training(&setup, steps, (steps / 5).max(1))
    } else {
        let text = std::fs::read_to_string(&text_path).expect("read --text file");
        let corpus = zero::model::ByteCorpus::from_text(&text);
        println!("training on {} bytes of text from {text_path}", corpus.len());
        zero::core::run_training_on(&setup, steps, (steps / 5).max(1), corpus.tokens())
    };
    let dt = t0.elapsed();
    for (i, &loss) in report.losses.iter().enumerate() {
        metrics.record(&zero::core::StepOutcome {
            loss,
            skipped: report.skipped[i],
            grad_norm: None,
            loss_scale: 1.0,
        });
    }

    for (i, loss) in report.losses.iter().enumerate() {
        if i < 3 || i + 3 >= report.losses.len() || (i + 1) % 10 == 0 {
            println!(
                "step {:>4}  loss {:.4}{}",
                i + 1,
                loss,
                if report.skipped[i] { "  (skipped: overflow)" } else { "" }
            );
        }
    }
    if !report.val_losses.is_empty() {
        println!(
            "validation loss: {:.4} → {:.4}",
            report.val_losses.first().unwrap(),
            report.val_losses.last().unwrap()
        );
    }
    println!("\nwall time: {:.2?} ({:.1} steps/s)", dt, steps as f64 / dt.as_secs_f64());
    println!("{}", metrics.summary());
    println!("\nper-rank report (rank 0):");
    let r = &report.ranks[0];
    println!("  model states (peak): {} bytes", r.peak_model_state_bytes);
    println!("  device total (peak): {} bytes", r.peak_device_bytes);
    let t = &r.traffic;
    println!(
        "  traffic: all-reduce {} B, reduce-scatter {} B, all-gather {} B, cpu {} B",
        t.bytes(CollectiveKind::AllReduce),
        t.bytes(CollectiveKind::ReduceScatter),
        t.bytes(CollectiveKind::AllGather),
        r.cpu_transfer_bytes,
    );
    let overlap_ns = r.timeline.compute_collective_overlap_ns();
    println!(
        "  compute/collective overlap: {:.3} ms total ({:.3} ms/step)",
        overlap_ns as f64 / 1e6,
        overlap_ns as f64 / 1e6 / steps as f64,
    );
    if tier.enabled {
        println!(
            "  tier traffic: fetch {} B in {} ops, spill {} B in {} ops, modeled tier time {:.3} ms",
            r.tier.fetch_bytes,
            r.tier.fetch_ops,
            r.tier.spill_bytes,
            r.tier.spill_ops,
            r.tier_time.as_secs_f64() * 1e3,
        );
        if tier.device_budget != u64::MAX {
            // The tracker panics on any allocation past the budget, so a
            // run that got this far IS the proof.
            let peak = report.ranks.iter().map(|r| r.peak_device_bytes).max().unwrap_or(0);
            println!(
                "  device budget: PROVEN — peak {} B <= budget {} B (tracker armed all run)",
                peak, tier.device_budget
            );
        }
    }

    if args.flag("--verify-offload") {
        verify_offload(&setup, steps, &report, &text_path);
    }

    let save_dir: String = args.get("--save", String::new());
    if !save_dir.is_empty() {
        if setup.grid.mp_degree() != 1 {
            eprintln!("--save needs --mp 1 (model-parallel export is not supported)");
            std::process::exit(2);
        }
        let dir = std::path::Path::new(&save_dir);
        for r in &report.ranks {
            let snap = zero::core::RankSnapshot {
                rank: r.rank as u32,
                world: report.ranks.len() as u32,
                step: steps as u64,
                shard_start: r.shard_range.start as u64,
                shard_end: r.shard_range.end as u64,
                master: r.master.clone(),
                // Inference export: optimizer and scaler state stay behind.
                opt_m: Vec::new(),
                opt_v: Vec::new(),
                opt_t: steps as u64,
                scaler: None,
            };
            snap.save(dir).expect("write --save snapshot");
        }
        println!(
            "\nwrote {} parameter snapshots ({} params) to {save_dir}",
            report.ranks.len(),
            model.total_params()
        );
    }

    write_trace_if_requested(&args, &report);
}

/// Trains with every rank a spawned OS process on the Unix-socket fabric,
/// supervised for real process death: `--kill R@S` SIGKILLs a rank
/// mid-run and `--verify-recovery` proves the rollback+reshard resume is
/// bitwise identical to a clean thread-backend resume from the same
/// snapshot — the cross-backend recovery guarantee, from the CLI.
fn run_process_fabric(args: &Args, setup: TrainSetup, steps: usize) {
    if setup.grid.mp_degree() != 1 {
        eprintln!("--fabric process needs --mp 1");
        std::process::exit(2);
    }
    if !setup.zero.stage.partitions_optimizer() {
        eprintln!("--fabric process needs --stage 1, 2, or 3 (supervised resharding)");
        std::process::exit(2);
    }
    let run_root: String = args.get("--run-dir", String::new());
    let run_dir = if run_root.is_empty() {
        std::env::temp_dir().join(format!("zero-procworld-{}", std::process::id()))
    } else {
        std::path::PathBuf::from(run_root)
    };
    let snap_dir = run_dir.join("snapshots");
    std::fs::create_dir_all(&snap_dir).expect("create snapshot dir");

    let mut cfg = zero::core::SupervisorConfig::new(setup, steps, snap_dir.clone());
    cfg.snapshot_every = args.get("--snapshot-every", 5usize);
    let worker = zero::core::WorkerCommand::current_exe(vec!["--zero-worker".into()])
        .expect("resolve current executable");
    let mut opts = zero::core::ProcessWorldOptions::new(worker, run_dir.join("fabric"));

    let kill_arg: String = args.get("--kill", String::new());
    if !kill_arg.is_empty() {
        let Some((r, s)) = kill_arg.split_once('@') else {
            eprintln!("--kill wants R@S (rank @ completed-step count)");
            std::process::exit(2);
        };
        let rank = r.parse().unwrap_or_else(|_| {
            eprintln!("--kill: bad rank {r:?}");
            std::process::exit(2);
        });
        let after_step = s.parse().unwrap_or_else(|_| {
            eprintln!("--kill: bad step {s:?}");
            std::process::exit(2);
        });
        opts.kill = Some(zero::core::KillSpec { rank, after_step });
    }

    println!(
        "model: {} params | {} | fabric process, {} rank processes | batch {} | {} steps",
        setup.model.total_params(),
        setup.zero.stage.name(),
        setup.grid.dp_degree(),
        setup.global_batch,
        steps
    );
    let t0 = std::time::Instant::now();
    let report = zero::core::run_supervised_process(&cfg, &opts);
    let dt = t0.elapsed();

    for (i, loss) in report.losses.iter().enumerate() {
        if i < 3 || i + 3 >= report.losses.len() || (i + 1) % 10 == 0 {
            println!("step {:>4}  loss {:.4}", i + 1, loss);
        }
    }
    println!("eval loss: {:.4}", report.final_eval);
    for rec in &report.recoveries {
        println!(
            "recovery: ranks {:?} died, world {} -> {}, rolled back to step {} ({} steps lost, {} checkpoint bytes resharded)",
            rec.failed_ranks,
            rec.old_world,
            rec.new_world,
            rec.resumed_from_step,
            rec.steps_lost,
            rec.bytes_moved,
        );
        for (rank, msg) in &rec.failures {
            println!("  rank {rank}: {msg}");
        }
    }
    println!(
        "wall time: {:.2?} | final world {}",
        dt, report.final_world
    );

    let leaked = count_worker_procs();
    if leaked > 0 {
        eprintln!("leak check: {leaked} orphaned --zero-worker processes!");
        std::process::exit(1);
    }
    println!("leak check: no orphaned rank processes");

    if args.flag("--verify-recovery") {
        let Some(last) = report.recoveries.last() else {
            println!("verify-recovery: no recovery occurred; nothing to compare");
            return;
        };
        // Control arm on the *thread* backend, from the same snapshot the
        // process-world rollback used: the comparison is simultaneously a
        // recovery-correctness and a cross-backend-determinism check.
        let control_setup = TrainSetup {
            grid: Grid::new(last.new_world, 1),
            ..setup
        };
        let snap = zero::core::supervisor::snapshot_dir_for(&snap_dir, last.resumed_from_step);
        // The world that *wrote* the snapshot is recorded in its shards; a
        // later recovery's `old_world` can be smaller than that (the dir is
        // only rewritten when the snapshot step advances), so trust the disk.
        let written_world = zero::core::RankSnapshot::load(&snap, 0)
            .expect("read control snapshot shard 0")
            .world as usize;
        let (control, control_eval) =
            zero::core::resume_from_snapshot(&control_setup, steps, &snap, written_world);
        let tail = &report.losses[last.resumed_from_step as usize..];
        let losses_match = tail.len() == control.len()
            && tail
                .iter()
                .zip(&control)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        if losses_match && report.final_eval.to_bits() == control_eval.to_bits() {
            println!(
                "verify-recovery: PASS — {} resumed steps + eval bitwise-identical to a clean thread-backend resume",
                control.len()
            );
        } else {
            eprintln!(
                "verify-recovery: FAIL — resumed losses diverge from the clean control arm\n  process tail: {tail:?}\n  control:      {control:?}\n  eval {} vs {}",
                report.final_eval, control_eval
            );
            std::process::exit(1);
        }
    }
}

/// `--verify-offload`: the headline demo as a self-checking command.
/// Reruns the exact configuration with the tier disabled and requires
/// (a) bitwise-identical per-step losses, skipped-step pattern, and
/// validation losses — offload moves residency, never values — and
/// (b) when a `--device-budget` is set, that the unconstrained baseline's
/// peak device bytes EXCEED the budget the offloaded run provably stayed
/// under (the tracker panics past it, so finishing is the proof): a model
/// whose state does not fit the device, trained anyway, loss untouched.
fn verify_offload(
    setup: &TrainSetup,
    steps: usize,
    offloaded: &zero::core::TrainReport,
    text_path: &str,
) {
    let base_setup = TrainSetup {
        zero: ZeroConfig { tier: zero::core::TierConfig::off(), ..setup.zero },
        ..*setup
    };
    let eval_every = (steps / 5).max(1);
    let baseline = if text_path.is_empty() {
        run_training(&base_setup, steps, eval_every)
    } else {
        let text = std::fs::read_to_string(text_path).expect("read --text file");
        let corpus = zero::model::ByteCorpus::from_text(&text);
        zero::core::run_training_on(&base_setup, steps, eval_every, corpus.tokens())
    };

    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    let mut ok = true;
    if bits(&offloaded.losses) != bits(&baseline.losses)
        || offloaded.skipped != baseline.skipped
        || bits(&offloaded.val_losses) != bits(&baseline.val_losses)
    {
        eprintln!(
            "verify-offload: FAIL — losses diverge from the unconstrained baseline\n  \
             offloaded: {:?}\n  baseline:  {:?}",
            offloaded.losses, baseline.losses
        );
        ok = false;
    }
    let peak = |r: &zero::core::TrainReport| {
        r.ranks.iter().map(|k| k.peak_device_bytes).max().unwrap_or(0)
    };
    let (off_peak, base_peak) = (peak(offloaded), peak(&baseline));
    let budget = setup.zero.tier.device_budget;
    if budget != u64::MAX {
        if base_peak <= budget {
            eprintln!(
                "verify-offload: FAIL — budget {budget} B is not binding: the unconstrained \
                 baseline already peaks at {base_peak} B; set --device-budget below that"
            );
            ok = false;
        }
        if off_peak > budget {
            // Belt and braces: the armed tracker would have panicked first.
            eprintln!(
                "verify-offload: FAIL — offloaded peak {off_peak} B exceeds budget {budget} B"
            );
            ok = false;
        }
    }
    if !ok {
        std::process::exit(1);
    }
    println!(
        "verify-offload: PASS — {} losses + {} eval losses bitwise-identical to the \
         unconstrained run; peak device bytes {off_peak} (offloaded) vs {base_peak} \
         (baseline){}",
        offloaded.losses.len(),
        offloaded.val_losses.len(),
        if budget == u64::MAX {
            String::new()
        } else {
            format!("; budget {budget} B binding on the baseline, proven on the offloaded run")
        }
    );
}

/// Counts surviving rank processes by their `--zero-worker` marker arg —
/// the CLI-level orphan check backing the fabric's reaping guarantee.
fn count_worker_procs() -> usize {
    let own = std::process::id().to_string();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return 0;
    };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.chars().all(|c| c.is_ascii_digit()) && *name != *own
        })
        .filter(|e| {
            std::fs::read(e.path().join("cmdline"))
                .map(|c| {
                    c.split(|b| *b == 0)
                        .any(|arg| arg == b"--zero-worker")
                })
                .unwrap_or(false)
        })
        .count()
}

fn write_trace_if_requested(args: &Args, report: &zero::core::TrainReport) {
    let trace_path: String = args.get("--trace", String::new());
    if !trace_path.is_empty() {
        let timelines: Vec<_> = report.ranks.iter().map(|r| r.timeline.clone()).collect();
        let json = zero::trace::chrome_trace(&timelines);
        // The export must round-trip: a trace nobody can load is worse
        // than no trace.
        if let Err(e) = serde_json::from_str(&json) {
            eprintln!("internal error: emitted trace does not parse: {e}");
            std::process::exit(1);
        }
        std::fs::write(&trace_path, &json).expect("write --trace file");
        let events = timelines
            .iter()
            .map(|t| t.spans.len() + t.instants.len() + t.counters.len())
            .sum::<usize>();
        println!(
            "\nwrote {} trace events ({} ranks) to {trace_path}",
            events,
            timelines.len()
        );
    }
}
