//! # zero
//!
//! A comprehensive Rust reproduction of **"ZeRO: Memory Optimizations
//! Toward Training Trillion Parameter Models"** (Rajbhandari, Rasley,
//! Ruwase, He — SC 2020).
//!
//! The facade re-exports the workspace crates:
//!
//! * [`tensor`] — dense f32/f16 tensors and transformer kernels with exact
//!   backward passes (the cuBLAS/cuDNN substitute).
//! * [`comm`] — ranks-as-threads communicator with NCCL-style ring
//!   collectives and per-rank traffic metering (the NCCL substitute).
//! * [`model`] — a GPT-2-like transformer exposed per-unit, with
//!   Megatron-style tensor parallelism.
//! * [`optim`] — mixed-precision Adam (K = 12), SGD, dynamic loss scaling.
//! * [`core`] — ZeRO-DP stages 1–3 and ZeRO-R (P_a, P_a+cpu, CB, MD), the
//!   DDP baseline, and the multi-rank trainer.
//! * [`serve`] — shard-hosted batched inference serving: stage-3 layer
//!   streaming plus a continuous-batching scheduler
//!   (`zero-train --save ckpt` → `zero-serve --snapshots ckpt`).
//! * [`sim`] — the analytical memory model and cluster-scale throughput
//!   simulator that regenerate the paper's tables and figures.
//! * [`trace`] — per-rank span tracing: step timelines, overlap queries,
//!   and Chrome trace-event export (`zero-train --trace out.json`).
//!
//! ## Quickstart
//!
//! ```
//! use zero::core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
//! use zero::comm::Grid;
//! use zero::model::ModelConfig;
//!
//! let setup = TrainSetup {
//!     model: ModelConfig { vocab: 64, seq: 16, hidden: 32, layers: 2, heads: 4 },
//!     zero: ZeroConfig { stage: ZeroStage::Two, ..ZeroConfig::default() },
//!     grid: Grid::new(4, 1), // 4-way data parallelism
//!     global_batch: 8,
//!     seed: 42,
//! };
//! let report = run_training(&setup, 5, 0);
//! assert_eq!(report.losses.len(), 5);
//! ```

pub use zero_comm as comm;
pub use zero_core as core;
pub use zero_model as model;
pub use zero_optim as optim;
pub use zero_serve as serve;
pub use zero_sim as sim;
pub use zero_tensor as tensor;
pub use zero_trace as trace;
