//! Scaling study on the *functional* engine: sweep the DP degree and
//! measure — not model — per-rank model-state memory and communication
//! volume, reproducing Table 1's 1/N_d law and §7's volume analysis with
//! real allocations and real ring collectives (threads as GPUs).
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use zero::comm::{CollectiveKind, Grid};
use zero::core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero::model::ModelConfig;

fn main() {
    let model = ModelConfig {
        vocab: 64,
        seq: 16,
        hidden: 32,
        layers: 3,
        heads: 4,
    };
    let psi = model.total_params() as u64;
    let steps = 2;
    println!("functional scaling study: Ψ = {psi} parameters, {steps} steps per point\n");

    for stage in [ZeroStage::Two, ZeroStage::Three] {
        println!("--- {} ---", stage.name());
        println!(
            "{:>4} | {:>14} {:>10} | {:>16} {:>9}",
            "Nd", "states B/rank", "vs 16Ψ", "comm elems/step", "vs 2Ψ"
        );
        for dp in [1usize, 2, 4, 8] {
            let setup = TrainSetup {
                model,
                zero: ZeroConfig {
                    stage,
                    fp16: true,
                    initial_loss_scale: 1.0,
                    checkpoint_activations: true,
                    ..ZeroConfig::default()
                },
                grid: Grid::new(dp, 1),
                global_batch: 8,
                seed: 1,
            };
            let report = run_training(&setup, steps, 0);
            let states = report.max_model_state_bytes();
            let traffic = &report.ranks[0].traffic;
            let bytes = traffic.bytes(CollectiveKind::AllReduce)
                + traffic.bytes(CollectiveKind::ReduceScatter)
                + traffic.bytes(CollectiveKind::AllGather);
            let elems_per_step = bytes as f64 / 2.0 / steps as f64;
            println!(
                "{:>4} | {:>14} {:>9.2}x | {:>16.0} {:>8.2}x",
                dp,
                states,
                16.0 * psi as f64 / states as f64,
                elems_per_step,
                elems_per_step / (2.0 * psi as f64)
            );
        }
        println!();
    }
    println!("Reading: memory per rank falls toward 16Ψ/N_d (Table 1) while the");
    println!("communication column stays ≈ 2Ψ·(N−1)/N for stage 2 and ≤ 3Ψ·(N−1)/N");
    println!("for stage 3 — exactly §7's claim, measured on real ring collectives.");
}
