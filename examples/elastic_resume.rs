//! Elastic resume: train on 2 "GPUs", checkpoint (each rank saves only
//! its 1/N_d shard), reshard the checkpoint, and resume on 4 "GPUs" —
//! ZeRO's sharded state makes the cluster size a restart-time choice.
//!
//! Then the involuntary version: a supervised run where a rank is *killed*
//! mid-step by an injected fault, and the supervisor rolls the survivors
//! back to the last consistent snapshot, reshards it onto the smaller
//! world, and finishes the job — no human in the loop.
//!
//! ```text
//! cargo run --release --example elastic_resume
//! ```

use zero::comm::{launch, CollectiveKind, FaultPlan, Grid};
use zero::core::{
    reshard, run_supervised, RankEngine, RankSnapshot, SupervisorConfig, TrainSetup, ZeroConfig,
    ZeroStage,
};
use zero::model::{init_full_params, Gpt, ModelConfig, SyntheticCorpus};

fn main() {
    let cfg = ModelConfig {
        vocab: 64,
        seq: 16,
        hidden: 32,
        layers: 2,
        heads: 4,
    };
    let global_batch = 8;
    let corpus = SyntheticCorpus::generate(cfg.vocab, 20_000, 99);
    let corpus = &corpus;
    let dir = std::env::temp_dir().join("zero-elastic-demo");
    let dir_ref = &dir;

    // ---- Phase 1: 2 ranks, 10 steps, save sharded checkpoint ----
    println!("phase 1: training on 2 ranks…");
    let losses1 = launch(2, move |comm| {
        let gpt = Gpt::new(cfg);
        let params = init_full_params(&cfg, 7);
        let zcfg = ZeroConfig {
            stage: ZeroStage::Two,
            ..ZeroConfig::default()
        };
        let mut engine = RankEngine::new(gpt, &params, zcfg, Grid::new(2, 1), comm);
        let mut losses = Vec::new();
        for step in 0..10 {
            let (ids, tg) = corpus.rank_batch(step, global_batch, cfg.seq, 2, engine.dp_rank());
            losses.push(engine.train_step(&ids, &tg, global_batch / 2).loss);
        }
        engine.save_snapshot().save(dir_ref).expect("save shard");
        losses
    });
    println!(
        "  loss {:.3} → {:.3}; wrote 2 shard files to {}",
        losses1[0][0],
        losses1[0].last().unwrap(),
        dir.display()
    );

    // ---- Reshard 2 → 4 (an offline operation on the checkpoint) ----
    let snaps: Vec<RankSnapshot> = (0..2)
        .map(|r| RankSnapshot::load(&dir, r).expect("load shard"))
        .collect();
    let bigger = reshard(&snaps, 4);
    println!(
        "resharded 2 → 4: shard sizes {:?}",
        bigger.iter().map(|s| s.master.len()).collect::<Vec<_>>()
    );
    let bigger = &bigger;

    // ---- Phase 2: resume on 4 ranks ----
    println!("phase 2: resuming on 4 ranks…");
    let losses2 = launch(4, move |comm| {
        let rank = comm.rank();
        let gpt = Gpt::new(cfg);
        let params = init_full_params(&cfg, 7);
        let zcfg = ZeroConfig {
            stage: ZeroStage::Two,
            ..ZeroConfig::default()
        };
        let mut engine = RankEngine::new(gpt, &params, zcfg, Grid::new(4, 1), comm);
        engine.restore_snapshot(&bigger[rank]);
        let mut losses = Vec::new();
        for step in 10..20 {
            let (ids, tg) = corpus.rank_batch(step, global_batch, cfg.seq, 4, engine.dp_rank());
            losses.push(engine.train_step(&ids, &tg, global_batch / 4).loss);
        }
        losses
    });
    println!(
        "  loss {:.3} → {:.3} (continues where phase 1 left off)",
        losses2[0][0],
        losses2[0].last().unwrap()
    );
    assert!(
        losses2[0][0] < losses1[0][0],
        "resumed run must start from trained state, not from scratch"
    );
    std::fs::remove_dir_all(&dir).ok();
    println!("\nEach rank only ever wrote/read its own 1/N_d state shard — the");
    println!("N_d files together hold exactly one copy of the training state.");

    // ---- Phase 3: the involuntary shrink — survive a mid-step crash ----
    println!("\nphase 3: supervised run, killing rank 2 of 4 mid-step…");
    let sup_dir = std::env::temp_dir().join("zero-elastic-demo-supervised");
    std::fs::remove_dir_all(&sup_dir).ok();
    let setup = TrainSetup {
        model: cfg,
        zero: ZeroConfig { stage: ZeroStage::Two, fp16: false, ..ZeroConfig::default() },
        grid: Grid::new(4, 1),
        global_batch: 12,
        seed: 7,
    };
    let mut sup = SupervisorConfig::new(setup, 16, sup_dir.clone());
    sup.snapshot_every = 4;
    // Crash rank 2 in its 8th overflow-check all-reduce: mid-step, after
    // gradients are reduced, before the optimizer update lands.
    sup.faults = FaultPlan::new().with_crash_at_kind(2, CollectiveKind::AllReduce, 7);
    let report = run_supervised(&sup);

    for rec in &report.recoveries {
        println!(
            "  rank(s) {:?} died; rolled {} → {} ranks back to step {} \
             ({} steps of work lost, {} checkpoint bytes resharded)",
            rec.failed_ranks,
            rec.old_world,
            rec.new_world,
            rec.resumed_from_step,
            rec.steps_lost,
            rec.bytes_moved,
        );
    }
    println!(
        "  finished all {} steps on {} survivors; final eval loss {:.3}",
        report.losses.len(),
        report.final_world,
        report.final_eval,
    );
    assert_eq!(report.final_world, 3, "exactly one rank should have died");
    assert_eq!(report.losses.len(), 16, "the job must still run to completion");
    std::fs::remove_dir_all(&sup_dir).ok();
}
