//! Quickstart: train a small transformer with every ZeRO stage and watch
//! the per-rank model-state memory shrink while the loss trajectory stays
//! identical — the paper's pitch in thirty lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use zero::comm::Grid;
use zero::core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero::model::ModelConfig;

fn main() {
    let model = ModelConfig {
        vocab: 64,
        seq: 16,
        hidden: 32,
        layers: 2,
        heads: 4,
    };
    let psi = model.total_params();
    println!("model: {psi} parameters, 4-way data parallelism, 10 steps\n");
    println!(
        "{:>18} | {:>12} {:>14} {:>12}",
        "stage", "final loss", "states/rank", "vs DDP"
    );

    let mut ddp_bytes = 0u64;
    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        let setup = TrainSetup {
            model,
            zero: ZeroConfig {
                stage,
                ..ZeroConfig::default()
            },
            grid: Grid::new(4, 1),
            global_batch: 8,
            seed: 42,
        };
        let report = run_training(&setup, 10, 0);
        let bytes = report.max_model_state_bytes();
        if stage == ZeroStage::Ddp {
            ddp_bytes = bytes;
        }
        println!(
            "{:>18} | {:>12.4} {:>11} B {:>11.2}x",
            stage.name(),
            report.losses.last().unwrap(),
            bytes,
            ddp_bytes as f64 / bytes as f64
        );
    }
    println!(
        "\nSame losses, up to {}x less model-state memory per rank — that is ZeRO.",
        16 * 4 / 16
    );
    println!("(With N_d = 4 the stage-3 bound is 16Ψ/N_d: a 4x reduction; it grows with N_d.)");
}
