//! Memory planner: "will my model fit?" — the §5.4/Table 1 arithmetic as
//! a practical tool.
//!
//! Give it a parameter count (in billions), a GPU count, and optionally a
//! model-parallel degree, and it prints the per-GPU memory for every
//! ZeRO stage together with the verdict against a 32 GB V100.
//!
//! ```text
//! cargo run --release --example memory_planner -- 100 400 16
//! cargo run --release --example memory_planner -- 1000 1024      # 1T!
//! ```

use zero::core::ZeroStage;
use zero::sim::{ClusterSpec, MemoryModel, SimWorkload, ZeroRFlags};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let size_b: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100.0);
    let gpus: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(400);
    let mp: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(16);
    let batch: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(16);

    let cluster = ClusterSpec::dgx2_v100();
    let mem = MemoryModel::default();
    let nd = (gpus / mp).max(1);
    let psi = size_b * 1e9;
    let w = SimWorkload::with_params(8192, 1024, batch, psi);
    let flags = ZeroRFlags::with_pa_cpu();

    println!("Planning: {size_b}B parameters on {gpus} GPUs (MP {mp} × DP {nd}), batch {batch}/GPU");
    println!("Device: 32 GB V100; activations with checkpointing + P_a + CPU offload.\n");
    println!(
        "{:>18} | {:>10} {:>11} {:>9} | fits?",
        "stage", "states GB", "+resid GB", "per GPU"
    );
    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        let states = mem.model_state_bytes(psi / mp as f64, stage, nd as f64);
        let total = mem.total_bytes(&w, stage, nd as f64, mp as f64, &flags);
        let fits = mem.fits(&cluster, &w, stage, nd as f64, mp as f64, &flags);
        println!(
            "{:>18} | {:>10.1} {:>11.1} {:>9.1} | {}",
            stage.name(),
            states / 1e9,
            (total - states) / 1e9,
            total / 1e9,
            if fits { "yes" } else { "NO — out of memory" }
        );
    }

    // And the headline question: what WOULD fit here?
    println!("\nLargest model that fits at each stage (layers swept at h = 8192):");
    for stage in [ZeroStage::Ddp, ZeroStage::One, ZeroStage::Two, ZeroStage::Three] {
        let max =
            mem.max_model_params(&cluster, 8192, 1024, batch, stage, nd as f64, mp as f64, &flags);
        println!("{:>18} | {:>8.1}B", stage.name(), max / 1e9);
    }
    println!("\n(Compare Table 1/Table 2 of the paper; with 1024 GPUs and stage 3,");
    println!(" the trillion-parameter bound of §9 appears.)");
}
