//! End-to-end: train a character-level LM with ZeRO-2 across 4 ranks,
//! then sample from the trained weights — the "democratization" story of
//! §10.4: plain data-parallel ergonomics, ZeRO memory behaviour, and a
//! model you can actually use afterwards.
//!
//! ```text
//! cargo run --release --example text_generation -- 150
//! ```

use zero::comm::Grid;
use zero::core::{run_training, TrainSetup, ZeroConfig, ZeroStage};
use zero::model::{Generator, Gpt, ModelConfig, Sampling, SyntheticCorpus};

fn main() {
    let steps = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100usize);
    let model = ModelConfig {
        vocab: 32,
        seq: 24,
        hidden: 64,
        layers: 2,
        heads: 4,
    };
    let setup = TrainSetup {
        model,
        zero: ZeroConfig {
            stage: ZeroStage::Two,
            fp16: true,
            initial_loss_scale: 128.0,
            ..ZeroConfig::default()
        },
        grid: Grid::new(4, 1),
        global_batch: 16,
        seed: 77,
    };
    println!(
        "training a {}-parameter char-LM with ZeRO-2 on 4 ranks, {steps} steps…",
        model.total_params()
    );
    let report = run_training(&setup, steps, 0);
    println!(
        "loss: {:.3} → {:.3}",
        report.losses.first().unwrap(),
        report.losses.last().unwrap()
    );

    // Reassemble the trained fp32 master parameters and run generation
    // single-process (inference does not need ZeRO).
    let params = report.gather_master_mp1();
    let gpt = Gpt::new(model);
    let generator = Generator::new(&gpt, &params);
    let corpus = SyntheticCorpus::generate(model.vocab, 1000, setup.seed ^ 0x5EED);
    let prompt: Vec<u32> = corpus.tokens()[..model.seq].to_vec();

    print!("seed tokens:        ");
    for &t in &prompt[model.seq - 12..] {
        print!("{t:>3}");
    }
    println!();
    print!("greedy continuation:");
    // The prompt comes from the corpus, so in-vocab by construction.
    for t in generator
        .generate(&prompt, 12, Sampling::Greedy)
        .expect("corpus prompt is in-vocab")
    {
        print!("{t:>3}");
    }
    println!();
    print!("sampled (T=0.8, k=8):");
    let sampled = generator
        .generate(
            &prompt,
            12,
            Sampling::Temperature {
                temperature: 0.8,
                top_k: 8,
                seed: 7,
            },
        )
        .expect("corpus prompt is in-vocab");
    for t in sampled {
        print!("{t:>3}");
    }
    println!();
    println!("\n(The corpus is a sparse Markov chain — a trained model locks onto its");
    println!("preferred transitions; an untrained one would emit near-uniform noise.)");
}
