#!/usr/bin/env bash
# CI entry point: build, test, lint, then the long-running fault-injection
# stress matrix (tests marked #[ignore], e.g. randomized_fault_matrix_stress).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> zero-verify (schedule + tiling + lint + overlap + tracecheck)"
cargo run -q --release -p zero-verify -- --pass schedule,tiling,lint,overlap,tracecheck

echo "==> zero-verify --pass compression (qwZ/hpZ/qgZ sweep, proved inter-node byte ratio)"
# Sweeps stages 2-3 x N in {2,4,8} x G in {2,4} x every lever combination,
# recomputes every compressed op's wire bytes independently, and gates the
# analytic stage-3 inter-node reduction at >= 3.5x with all levers on.
cargo run -q --release -p zero-verify -- --pass compression

echo "==> zero-verify --pass modelcheck (exhaustive protocol interleavings, explicit state budget)"
# Prints explored-state counts per protocol; exhausting the budget is a
# hard failure (coverage incomplete), not a silent pass.
cargo run -q --release -p zero-verify -- --pass modelcheck --budget 500000

echo "==> cargo test -q"
cargo test -q

echo "==> overlap conformance (bitwise equivalence + exact traffic, sync vs overlapped)"
cargo test -q --release --test overlap_equivalence

echo "==> trace conformance (span/byte reconciliation vs plan + traffic counters)"
cargo test -q --release --test trace_conformance

echo "==> zero-train --trace smoke (emitted Chrome trace must parse)"
trace_out="$(mktemp -d)/smoke-trace.json"
cargo run -q --release --bin zero-train -- \
    --stage 3 --dp 2 --steps 2 --batch 4 --overlap --trace "$trace_out"
test -s "$trace_out" || { echo "trace file missing or empty"; exit 1; }
rm -rf "$(dirname "$trace_out")"

echo "==> process fabric (socket transport parity + process-world recovery)"
# Cross-backend contract: same collectives, bitwise-identical results and
# per-kind traffic on Unix-socket ranks vs in-process threads; wire
# decoder survives fuzzing; SIGKILL recovery matches a clean resume.
cargo test -q --release -p zero-comm --test wire_fuzz
cargo test -q --release -p zero-comm --test process_fabric
cargo test -q --release --test process_world

echo "==> kill -9 smoke (real process death, bitwise-verified recovery)"
procworld_dir="$(mktemp -d)"
cargo run -q --release --bin zero-train -- \
    --fabric process --stage 2 --dp 4 --layers 2 --hidden 16 --heads 2 \
    --seq 8 --vocab 32 --batch 12 --steps 20 --fp32 \
    --run-dir "$procworld_dir" --kill 2@7 --verify-recovery
rm -rf "$procworld_dir"
# The trainer's own leak check ran on exit; belt-and-suspenders here.
# The [-] class keeps the pattern from matching this script's own shell.
if pgrep -f -- '[-]-zero-worker' > /dev/null 2>&1; then
    echo "leaked --zero-worker rank processes detected"; exit 1
fi

echo "==> zero-serve smoke (train -> snapshot -> shard-hosted serving)"
serve_ckpt="$(mktemp -d)"
cargo run -q --release --bin zero-train -- \
    --stage 3 --dp 4 --steps 4 --batch 4 --save "$serve_ckpt"
cargo run -q --release --bin zero-serve -- --snapshots "$serve_ckpt" --ranks 2 \
    > /dev/null || { echo "snapshot-backed serving failed"; exit 1; }
rm -rf "$serve_ckpt"
# >=8 concurrent requests incl. malformed ones that must get typed
# rejections; trace/traffic must reconcile byte-exactly with the plan.
cargo run -q --release --bin zero-serve -- --smoke

echo "==> bench_serve --smoke (batched vs serial serving, bitwise outputs)"
serve_json="$(mktemp)"
cargo run -q --release -p zero-bench --bin bench_serve -- --smoke --out "$serve_json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$serve_json" \
    || { echo "bench_serve smoke JSON does not parse"; exit 1; }
rm -f "$serve_json"

echo "==> bench_step --smoke (overlap bench path, no results churn)"
cargo run -q --release -p zero-bench --bin bench_step -- --smoke

echo "==> bench_step --check-against (wall-clock regression gate, 10% tolerance)"
# Replays the smoke-restricted configs at the committed baseline's link
# latency and step count; >10% per-step slowdown on any matching row fails.
cargo run -q --release -p zero-bench --bin bench_step -- --smoke \
    --check-against results/BENCH_step.json

echo "==> bench_matmul --smoke (packed-GEMM bit-exactness gate)"
cargo run -q --release -p zero-bench --bin bench_matmul -- --smoke

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "==> cargo test -- --ignored (fault-matrix stress)"
cargo test -q -- --ignored

echo "==> CI green"
