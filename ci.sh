#!/usr/bin/env bash
# CI entry point: build, test, lint, then the long-running fault-injection
# stress matrix (tests marked #[ignore], e.g. randomized_fault_matrix_stress).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> zero-verify (static schedule check + tiling proof + lint)"
cargo run -q --release -p zero-verify

echo "==> cargo test -q"
cargo test -q

echo "==> overlap conformance (bitwise equivalence + exact traffic, sync vs overlapped)"
cargo test -q --release --test overlap_equivalence

echo "==> trace conformance (span/byte reconciliation vs plan + traffic counters)"
cargo test -q --release --test trace_conformance

echo "==> zero-train --trace smoke (emitted Chrome trace must parse)"
trace_out="$(mktemp -d)/smoke-trace.json"
cargo run -q --release --bin zero-train -- \
    --stage 3 --dp 2 --steps 2 --batch 4 --overlap --trace "$trace_out"
test -s "$trace_out" || { echo "trace file missing or empty"; exit 1; }
rm -rf "$(dirname "$trace_out")"

echo "==> bench_step --smoke (overlap bench path, no results churn)"
cargo run -q --release -p zero-bench --bin bench_step -- --smoke

echo "==> bench_matmul --smoke (packed-GEMM bit-exactness gate)"
cargo run -q --release -p zero-bench --bin bench_matmul -- --smoke

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "==> cargo test -- --ignored (fault-matrix stress)"
cargo test -q -- --ignored

echo "==> CI green"
