#!/usr/bin/env bash
# CI entry point: build, test, lint, then the long-running fault-injection
# stress matrix (tests marked #[ignore], e.g. randomized_fault_matrix_stress).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> zero-verify (schedule + tiling + lint + overlap + tracecheck)"
cargo run -q --release -p zero-verify -- --pass schedule,tiling,lint,overlap,tracecheck

echo "==> zero-verify --pass compression (qwZ/hpZ/qgZ sweep, proved inter-node byte ratio)"
# Sweeps stages 2-3 x N in {2,4,8} x G in {2,4} x every lever combination,
# recomputes every compressed op's wire bytes independently, and gates the
# analytic stage-3 inter-node reduction at >= 3.5x with all levers on.
cargo run -q --release -p zero-verify -- --pass compression

echo "==> zero-verify --pass offload (tier prefetch windows, byte telescoping, bitwise collective stream)"
# Sweeps stages 1-3 x N x sync/overlap x precision: every tier movement's
# prefetch window is well-formed, fetches pair byte-exactly with their
# anchor collectives, spill volumes telescope against the partition, and
# offloaded plans keep a collective stream bitwise equal to tier-off.
cargo run -q --release -p zero-verify -- --pass offload

echo "==> zero-verify --pass modelcheck (exhaustive protocol interleavings, explicit state budget)"
# Prints explored-state counts per protocol; exhausting the budget is a
# hard failure (coverage incomplete), not a silent pass.
cargo run -q --release -p zero-verify -- --pass modelcheck --budget 500000

echo "==> cargo test -q"
cargo test -q

echo "==> overlap conformance (bitwise equivalence + exact traffic, sync vs overlapped)"
cargo test -q --release --test overlap_equivalence

echo "==> trace conformance (span/byte reconciliation vs plan + traffic counters)"
cargo test -q --release --test trace_conformance

echo "==> offload conformance (bitwise equivalence + exact tier-byte reconciliation, tier on vs off)"
cargo test -q --release --test offload_equivalence

echo "==> zero-train --verify-offload smoke (train beyond the device budget, proved)"
# 64 KiB/rank sits between the offloaded peak and the unconstrained peak
# at this model size: the budget binds, the tracker proves peak <= budget,
# and the offload-off rerun must produce bitwise-identical losses.
cargo run -q --release --bin zero-train -- \
    --stage 3 --dp 2 --layers 2 --hidden 16 --heads 2 --seq 8 --vocab 32 \
    --batch 4 --steps 5 --device-budget 65536 --verify-offload

echo "==> zero-train --trace smoke (emitted Chrome trace must parse)"
trace_out="$(mktemp -d)/smoke-trace.json"
cargo run -q --release --bin zero-train -- \
    --stage 3 --dp 2 --steps 2 --batch 4 --overlap --trace "$trace_out"
test -s "$trace_out" || { echo "trace file missing or empty"; exit 1; }
rm -rf "$(dirname "$trace_out")"

echo "==> process fabric (socket transport parity + process-world recovery)"
# Cross-backend contract: same collectives, bitwise-identical results and
# per-kind traffic on Unix-socket ranks vs in-process threads; wire
# decoder survives fuzzing; SIGKILL recovery matches a clean resume.
cargo test -q --release -p zero-comm --test wire_fuzz
cargo test -q --release -p zero-comm --test process_fabric
cargo test -q --release --test process_world

echo "==> kill -9 smoke (real process death, bitwise-verified recovery)"
procworld_dir="$(mktemp -d)"
cargo run -q --release --bin zero-train -- \
    --fabric process --stage 2 --dp 4 --layers 2 --hidden 16 --heads 2 \
    --seq 8 --vocab 32 --batch 12 --steps 20 --fp32 \
    --run-dir "$procworld_dir" --kill 2@7 --verify-recovery
rm -rf "$procworld_dir"
# The trainer's own leak check ran on exit; belt-and-suspenders here.
# The [-] class keeps the pattern from matching this script's own shell.
if pgrep -f -- '[-]-zero-worker' > /dev/null 2>&1; then
    echo "leaked --zero-worker rank processes detected"; exit 1
fi

echo "==> zero-serve smoke (train -> snapshot -> shard-hosted serving)"
serve_ckpt="$(mktemp -d)"
cargo run -q --release --bin zero-train -- \
    --stage 3 --dp 4 --steps 4 --batch 4 --save "$serve_ckpt"
cargo run -q --release --bin zero-serve -- --snapshots "$serve_ckpt" --ranks 2 \
    > /dev/null || { echo "snapshot-backed serving failed"; exit 1; }
rm -rf "$serve_ckpt"
# >=8 concurrent requests incl. malformed ones that must get typed
# rejections; trace/traffic must reconcile byte-exactly with the plan.
cargo run -q --release --bin zero-serve -- --smoke

echo "==> saturation suite (open-loop load: FIFO fairness, deterministic shedding, paged-vs-slab bitwise, prefix-reuse bytes)"
cargo test -q --release --test saturation

echo "==> bench_serve --smoke (batched vs serial serving, bitwise outputs)"
serve_json="$(mktemp)"
cargo run -q --release -p zero-bench --bin bench_serve -- --smoke --out "$serve_json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$serve_json" \
    || { echo "bench_serve smoke JSON does not parse"; exit 1; }
rm -f "$serve_json"

echo "==> bench_serve --arrivals (open-loop determinism gate vs committed baseline)"
# Replays the poisson:0.5 schedule and exact-compares every deterministic
# field (admitted/shed counts, tokens, batch steps, step percentiles,
# prefix hits, KV bytes) against the committed open_loop baseline row.
cargo run -q --release -p zero-bench --bin bench_serve -- \
    --arrivals poisson:0.5 --check-against results/BENCH_serve.json

echo "==> bench_step --smoke (overlap bench path, no results churn)"
cargo run -q --release -p zero-bench --bin bench_step -- --smoke

echo "==> bench_step --check-against (wall-clock regression gate, 10% tolerance)"
# Replays the smoke-restricted configs at the committed baseline's link
# latency and step count; >10% per-step slowdown on any matching row fails.
cargo run -q --release -p zero-bench --bin bench_step -- --smoke \
    --check-against results/BENCH_step.json

echo "==> bench_matmul --smoke (packed-GEMM bit-exactness gate)"
cargo run -q --release -p zero-bench --bin bench_matmul -- --smoke

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "==> cargo test -- --ignored (fault-matrix stress)"
cargo test -q -- --ignored

echo "==> CI green"
